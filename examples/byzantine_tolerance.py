"""Example: how far Byzantine tolerance can be pushed (Sections 4 and 5).

Strict Byzantine quorum systems hit hard ceilings: b <= (n-1)/3 for
dissemination systems and b <= (n-1)/4 for masking systems, with load at
least sqrt((b+1)/n) and sqrt((2b+1)/n).  The probabilistic constructions
break both.  This example sweeps the Byzantine threshold b for a fixed
universe and reports, for each b:

* whether a strict construction exists at all, and its quorum size;
* the probabilistic construction calibrated for epsilon <= 1e-3, its quorum
  size and load;
* the empirical consistency of the actual read/write protocol under that
  many colluding faulty servers.

Run with::

    python examples/byzantine_tolerance.py
"""

from __future__ import annotations

import random

from repro import (
    ProbabilisticDisseminationSystem,
    ThresholdDisseminationQuorumSystem,
    strict_load_lower_bound,
    strict_resilience_bound,
)
from repro.exceptions import ConfigurationError
from repro.protocol import DisseminationRegister
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation import Cluster, FailurePlan

N = 120
EPSILON_TARGET = 1e-3
BYZANTINE_SWEEP = [5, 10, 20, 39, 45, 60, 75]
TRIALS = 150


def strict_row(b: int) -> str:
    try:
        system = ThresholdDisseminationQuorumSystem(N, b)
        return f"quorum {system.quorum_size:3d}, load {system.load():.2f}"
    except ConfigurationError:
        return "impossible (b > (n-1)/3)"


def measure_protocol(system: ProbabilisticDisseminationSystem, b: int) -> float:
    """Empirical fraction of fresh reads under b colluding Byzantine servers."""
    scheme = SignatureScheme(b"sweep-key")
    fresh = 0
    for seed in range(TRIALS):
        rng = random.Random(seed)
        plan = FailurePlan.colluding_forgers(
            N, b, "FORGED", Timestamp.forged_maximum(), rng=rng
        )
        cluster = Cluster(N, failure_plan=plan, seed=seed)
        register = DisseminationRegister(system, cluster, signatures=scheme, rng=rng)
        write = register.write("honest")
        outcome = register.read()
        if outcome.timestamp == write.timestamp and outcome.value == "honest":
            fresh += 1
    return fresh / TRIALS


def main() -> None:
    strict_ceiling = strict_resilience_bound(N, "dissemination")
    print(f"universe size n = {N}; strict dissemination systems tolerate at most b = {strict_ceiling}")
    print(f"{'b':>4s}  {'strict construction':28s}  {'probabilistic construction':34s}  {'measured fresh reads':>20s}")
    for b in BYZANTINE_SWEEP:
        strict_text = strict_row(b)
        try:
            system = ProbabilisticDisseminationSystem.for_epsilon(N, b, EPSILON_TARGET)
            prob_text = (
                f"quorum {system.quorum_size:3d}, load {system.load():.2f}, "
                f"eps {system.epsilon:.0e}"
            )
            measured = f"{measure_protocol(system, b):.3f}"
            bound_note = (
                " (beats strict load bound)"
                if system.load() < strict_load_lower_bound(N, b, "dissemination")
                else ""
            )
        except ConfigurationError:
            prob_text = "no construction at this epsilon"
            measured = "-"
            bound_note = ""
        print(f"{b:4d}  {strict_text:28s}  {prob_text:34s}  {measured:>20s}{bound_note}")

    print(
        "\nAbove b = (n-1)/3 no strict dissemination system exists at all, while the "
        "probabilistic construction keeps working (with growing quorums) for any "
        "constant fraction of Byzantine servers, and its measured consistency stays "
        "at 1 - epsilon."
    )


if __name__ == "__main__":
    main()
