"""Example: a multi-process cluster serving the replicated register.

The other service examples run every replica inside one event loop.  This
one crosses real process boundaries: ``Deployment.builder().processes(...)``
deploys each shard's ``TcpServiceServer`` in its own spawned process
(readiness handshake, health probes, escalating teardown), and the clients
talk to them over localhost sockets on the negotiated binary wire codec.

The smoke itself is the operational contract of the PODC '97 protocols:

* a **mixed read/write load** — concurrent readers and two writers spread
  over 4 register keys on 2 shards, with three colluding Byzantine forgers
  per shard answering reads.  The masking threshold ``k = 8 > b = 3``
  makes zero fabricated-accepted reads a theorem, and the example counts
  them to prove it held;
* **lock contention** — three clients cycling over one quorum-backed lock,
  with a live count of simultaneous holders: more than one at any instant
  would be a double grant.  The smoke deliberately runs a quorum size
  with **ε = 0 exactly** (24-of-36: any two quorums share ≥ 12 servers,
  ≥ ``k`` of them correct), so mutual exclusion is structural here too —
  a CI gate must not flake on the paper's ε allowance;
* **teardown** — after the ``async with`` block, every shard server
  process must be gone (asserted), whether the run succeeded or threw.

Run with::

    python examples/cluster_service.py

Pass ``--trace-sample 1.0`` to trace every quorum operation end to end
(quorum sampled, per-RPC spans, selection verdict), and ``--trace-out
traces.jsonl`` to dump the sampled traces as JSON lines after teardown.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random

from repro import ProbabilisticMaskingSystem
from repro.api import Deployment
from repro.protocol.timestamps import Timestamp
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import ScenarioSpec, WorkloadSpec

SYSTEM = ProbabilisticMaskingSystem(36, 24, 3)  # k = 8 > b = 3, epsilon = 0

SCENARIO = ScenarioSpec(
    system=SYSTEM,
    failure_model=FailureModel.colluding_forgers(
        3, "FORGED", Timestamp.forged_maximum()
    ),
    workload=WorkloadSpec(writes=1),
)

KEYS = ["k0", "k1", "k2", "k3"]
READERS = 6
READS_PER_READER = 10
WRITES_PER_WRITER = 8


async def mixed_load(deployment: Deployment) -> None:
    print("--- mixed read/write load under colluding forgers ---")
    fabricated = 0
    fresh = 0
    empty = 0

    async def writer(writer_id: int) -> None:
        client = deployment.connect(writer_id=writer_id)
        for version in range(WRITES_PER_WRITER):
            key = KEYS[(writer_id + version) % len(KEYS)]
            await client.write(key, (f"w{writer_id}", version))

    async def reader(index: int) -> None:
        nonlocal fabricated, fresh, empty
        client = deployment.connect()
        rng = random.Random(1000 + index)
        for _ in range(READS_PER_READER):
            outcome = await client.read(rng.choice(KEYS))
            if outcome.value == "FORGED":
                fabricated += 1
            elif outcome.value is None:
                empty += 1
            else:
                fresh += 1

    await asyncio.gather(
        writer(1), writer(2), *(reader(index) for index in range(READERS))
    )
    total = READERS * READS_PER_READER
    print(f"{total} reads against {2 * WRITES_PER_WRITER} concurrent writes: "
          f"{fresh} real values, {empty} not-yet-written, "
          f"{fabricated} fabricated accepted")
    assert fabricated == 0, "a forged value crossed the masking threshold!"


async def lock_contention(deployment: Deployment) -> None:
    print("--- three contenders, one quorum-backed lock ---")
    holders = 0
    most_at_once = 0
    grants = 0

    async def contender(client_id: int) -> None:
        nonlocal holders, most_at_once, grants
        lock = deployment.lock_client("leader", client_id=client_id)
        for _ in range(3):
            await lock.acquire()
            holders += 1
            most_at_once = max(most_at_once, holders)
            grants += 1
            await asyncio.sleep(0.002)  # hold it long enough to collide
            holders -= 1
            await lock.release()

    await asyncio.gather(*(contender(client_id) for client_id in (1, 2, 3)))
    print(f"{grants} grants, at most {most_at_once} simultaneous holder(s)")
    assert most_at_once == 1, "double grant: two clients held the lock at once!"


async def main(trace_sample: float = 0.0, trace_out: str = None) -> None:
    deployment = (
        Deployment.builder(SCENARIO)
        .processes(2)
        .codec("binary")
        .shards(2)
        .deadline(2.0)  # wall-clock: generous, so scheduler noise cannot
        .seed(42)       # starve a quorum read below its threshold
        .trace_sample(trace_sample)
        .build()
    )
    print(f"deploying {deployment!r}")
    async with deployment:
        cluster = deployment.sharded
        print(f"2 shard server processes up, pids {cluster.pids}, "
              f"probes {await cluster.probe()}")
        await mixed_load(deployment)
        await lock_contention(deployment)
    assert deployment.sharded.processes_alive == 0
    print("teardown complete: no shard server process left running")
    if trace_sample > 0.0:
        traces = deployment.traces()
        print(f"collected {len(traces)} quorum traces at rate {trace_sample}")
        if trace_out is not None:
            with open(trace_out, "w", encoding="utf-8") as handle:
                for trace in traces:
                    handle.write(json.dumps(trace, sort_keys=True) + "\n")
            print(f"wrote them to {trace_out} (one JSON object per line)")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of quorum operations to trace end to end (default: 0)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="dump sampled traces to FILE as JSON lines (implies "
        "--trace-sample 1.0 when no rate is given)",
    )
    args = parser.parse_args()
    if args.trace_out is not None and args.trace_sample <= 0.0:
        args.trace_sample = 1.0
    return args


if __name__ == "__main__":
    cli = parse_args()
    asyncio.run(main(trace_sample=cli.trace_sample, trace_out=cli.trace_out))
