"""Example: regenerate every table and figure of the paper in one run.

A thin wrapper around :mod:`repro.experiments.runner` that prints Tables 1-4
and Figures 1-3 exactly as the benchmark harness does, so that a reader can
compare the regenerated rows against the published ones (the side-by-side
record lives in EXPERIMENTS.md).

Run with::

    python examples/reproduce_paper.py            # everything
    python examples/reproduce_paper.py table2     # a single artefact
"""

from __future__ import annotations

import sys

from repro.experiments.runner import EXPERIMENT_NAMES, run_experiment


def main() -> int:
    target = sys.argv[1] if len(sys.argv) > 1 else "all"
    if target not in EXPERIMENT_NAMES:
        print(f"unknown experiment {target!r}; choose from: {', '.join(EXPERIMENT_NAMES)}")
        return 2
    for report in run_experiment(target, points=41):
        print(report)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
