"""Quickstart: build, inspect and use a probabilistic quorum system.

This walkthrough covers the library's core objects in the order the paper
introduces them:

1. construct the ε-intersecting system ``R(n, ℓ√n)`` and inspect its three
   quality measures (load, fault tolerance, failure probability);
2. compare it against the strict majority and grid baselines;
3. replicate a variable with the Section 3.1 access protocol on a simulated
   cluster and watch the consistency guarantee hold (and degrade gracefully
   when the construction is made deliberately loose);
4. repeat in a Byzantine environment with the dissemination and masking
   constructions.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    GridQuorumSystem,
    MajorityQuorumSystem,
    ProbabilisticDisseminationSystem,
    ProbabilisticMaskingSystem,
    UniformEpsilonIntersectingSystem,
)
from repro.protocol import DisseminationRegister, MaskingRegister, ProbabilisticRegister
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation import Cluster, FailurePlan


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def step_1_construct_and_measure() -> UniformEpsilonIntersectingSystem:
    section("1. The epsilon-intersecting construction R(n, l*sqrt(n))")
    n = 100
    system = UniformEpsilonIntersectingSystem.for_epsilon(n, epsilon=1e-3)
    print(f"universe size          n  = {system.n}")
    print(f"quorum size            q  = {system.quorum_size}   (l = {system.ell:.2f})")
    print(f"exact epsilon              = {system.epsilon:.2e}")
    print(f"paper bound e^(-l^2)       = {system.epsilon_bound():.2e}")
    print(f"load                       = {system.load():.3f}   (~ 1/sqrt(n))")
    print(f"fault tolerance            = {system.fault_tolerance()}   (~ n)")
    for p in (0.3, 0.5, 0.7):
        print(f"failure probability p={p}  = {system.failure_probability(p):.2e}")
    return system


def step_2_compare_with_strict_baselines(system: UniformEpsilonIntersectingSystem) -> None:
    section("2. Strict baselines: majority threshold and Maekawa grid")
    majority = MajorityQuorumSystem(system.n)
    grid = GridQuorumSystem(system.n)
    rows = [
        ("probabilistic R(n,q)", system.quorum_size, system.load(), system.fault_tolerance()),
        ("strict majority", majority.quorum_size, majority.load(), majority.fault_tolerance()),
        ("strict grid", grid.min_quorum_size(), grid.load(), grid.fault_tolerance()),
    ]
    print(f"{'system':24s} {'quorum':>8s} {'load':>8s} {'fault tol':>10s}")
    for name, size, load, fault_tolerance in rows:
        print(f"{name:24s} {size:8d} {load:8.3f} {fault_tolerance:10d}")
    print(
        "\nThe probabilistic construction keeps grid-like quorum sizes while "
        "its fault tolerance is Theta(n), escaping the strict trade-off."
    )


def step_3_replicate_a_variable() -> None:
    section("3. The Section 3.1 access protocol on a simulated cluster")
    n = 100
    system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
    cluster = Cluster(n, failure_plan=FailurePlan.random_crashes(n, 15, rng=random.Random(1)))
    register = ProbabilisticRegister(system, cluster, name="config", rng=random.Random(2))

    register.write({"version": 1, "leader": "server-7"})
    register.write({"version": 2, "leader": "server-9"})
    outcome = register.read()
    print(f"read value            = {outcome.value}")
    print(f"read timestamp        = {outcome.timestamp}")
    print(f"servers reporting it  = {len(outcome.reporting_servers)} of {len(outcome.quorum)}")
    print(f"fresh?                = {register.read_is_fresh(outcome)}")

    # A deliberately loose construction makes the epsilon visible.
    loose = UniformEpsilonIntersectingSystem(n, 6)
    print(f"\nloose construction: q=6, epsilon = {loose.epsilon:.2f}")
    misses = 0
    trials = 300
    for seed in range(trials):
        c = Cluster(n, seed=seed)
        r = ProbabilisticRegister(loose, c, rng=random.Random(seed))
        write = r.write("v")
        if r.read().timestamp != write.timestamp:
            misses += 1
    print(f"measured miss rate over {trials} write/read pairs = {misses / trials:.3f}")


def step_4_byzantine_environments() -> None:
    section("4. Byzantine environments: dissemination and masking constructions")
    n, b = 100, 15
    rng = random.Random(3)

    dissemination = ProbabilisticDisseminationSystem.for_epsilon(n, b, 1e-3)
    print(
        f"dissemination system: q={dissemination.quorum_size}, b={b}, "
        f"epsilon={dissemination.epsilon:.2e} (strict systems max out at b={(n - 1) // 3})"
    )
    plan = FailurePlan.colluding_forgers(n, b, "FORGED", Timestamp.forged_maximum(), rng=rng)
    cluster = Cluster(n, failure_plan=plan, seed=3)
    signed = DisseminationRegister(
        dissemination, cluster, signatures=SignatureScheme(b"writer-key"), rng=rng
    )
    signed.write("signed-payment-record")
    outcome = signed.read()
    print(f"read through {b} forging servers -> {outcome.value!r} (forgeries rejected)")

    masking = ProbabilisticMaskingSystem.for_epsilon(n, 10, 1e-3)
    print(
        f"\nmasking system: q={masking.quorum_size}, k={masking.read_threshold}, "
        f"b=10, epsilon={masking.epsilon:.2e}"
    )
    plan = FailurePlan.colluding_forgers(n, 10, "FORGED", Timestamp.forged_maximum(), rng=rng)
    cluster = Cluster(n, failure_plan=plan, seed=4)
    voted = MaskingRegister(masking, cluster, rng=rng)
    voted.write("unsigned-sensor-reading")
    outcome = voted.read()
    print(
        f"read through 10 colluding forgers -> {outcome.value!r} "
        f"({outcome.votes} matching votes, threshold {outcome.threshold})"
    )


def main() -> None:
    system = step_1_construct_and_measure()
    step_2_compare_with_strict_baselines(system)
    step_3_replicate_a_variable()
    step_4_byzantine_environments()
    print("\nDone.  See examples/voting_election.py and examples/mobile_location.py")
    print("for the end-to-end applications from Section 1.1 of the paper.")


if __name__ == "__main__":
    main()
