"""Example: the replicated register as a live asyncio service.

Everything else in this repo measures the paper's protocols with offline
Monte-Carlo trials.  This example deploys them through the ``repro.api``
facade: one builder wires up replica nodes, transports, dispatchers and
quorum clients, and hands back register and lock handles that run the
exact code paths the conformance suite pins down.

Four acts (in-process transport, the default):

1. a single client against a healthy masking deployment — write, read,
   inspect where the value landed;
2. a crash-heavy deployment — watch the client's probe fallback route
   around dead servers;
3. two clients contending for a quorum-backed distributed lock —
   REQUEST / GRANT / RELEASE over the same replicated register;
4. the full soak of the ``serve`` experiment — colluding Byzantine forgers
   at the system's declared tolerance, dropped messages, live crash churn —
   with the safety verdict that no fabricated value was ever accepted.

With ``--transport tcp`` the same protocol runs over *real localhost
sockets*: act one crosses the wire frame by frame, and the closing load
spreads a multi-register workload over a sharded TCP deployment —
per-shard throughput, wall-clock deadlines, and the same
zero-fabrication verdict.

Run with::

    python examples/async_service.py
    python examples/async_service.py --transport tcp
"""

from __future__ import annotations

import argparse
import asyncio
import random

from repro import ProbabilisticMaskingSystem
from repro.api import Deployment
from repro.experiments.serve import render_serve, serve_load_spec
from repro.protocol.timestamps import Timestamp
from repro.service import run_service_load
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import ScenarioSpec, WorkloadSpec

SYSTEM = ProbabilisticMaskingSystem(100, 30, 3)  # k = 5 > b = 3

SCENARIO = ScenarioSpec(
    system=SYSTEM,
    failure_model=FailureModel.none(),
    workload=WorkloadSpec(writes=1),
)


async def act_one_healthy() -> None:
    print("=== 1. One client, healthy deployment " + "=" * 30)
    deployment = (
        Deployment.builder(SCENARIO)
        .conditions(latency=0.0005, jitter=0.0002)
        .deadline(0.05)
        .seed(1)
        .build()
    )
    async with deployment:
        client = deployment.connect()
        write = await client.write("x", "hello, PODC")
        print(f"write touched a quorum of {len(write.quorum)}; "
              f"{len(write.acknowledged)} servers acknowledged")
        outcome = await client.read("x")
        register = client.register_for("x")
        print(f"read -> {outcome.value!r} with {outcome.votes} vouching votes "
              f"(threshold k={outcome.threshold}); label: {register.classify_read(outcome)}")
        nodes = deployment.sharded.shards[0].nodes
        holders = sum(1 for node in nodes if node.stored("x") is not None)
        print(f"{holders} of {SYSTEM.n} replicas hold the value\n")


async def act_two_crashes() -> None:
    print("=== 2. Probe-based quorum repair under crashes " + "=" * 21)
    deployment = Deployment.builder(SCENARIO).deadline(0.005).seed(2).build()
    async with deployment:
        client = deployment.connect()
        await client.write("x", "durable")

        nodes = deployment.sharded.shards[0].nodes
        rng = random.Random(7)
        for victim in rng.sample(range(SYSTEM.n), 40):
            nodes[victim].crash()
        print("crashed 40 of 100 servers mid-flight")

        outcome = await client.read("x")
        register = client.register_for("x")
        print(f"read -> {outcome.value!r}; label: {register.classify_read(outcome)}; "
              f"{client.probe_fallbacks} probe fallback(s) re-assembled a live quorum\n")


async def act_three_lock() -> None:
    print("=== 3. A quorum-backed distributed lock " + "=" * 28)
    deployment = Deployment.builder(SCENARIO).deadline(0.05).seed(3).build()
    async with deployment:
        alice = deployment.lock_client("leader", client_id=1)
        bob = deployment.lock_client("leader", client_id=2)

        grant = await alice.acquire()
        print(f"client 1 acquired 'leader' at {grant.timestamp!r} "
              f"after {alice.requests} request round(s)")
        attempt = await bob.request()
        print(f"client 2's request was refused: quorum read surfaced "
              f"holder {attempt.holder_seen}")
        await alice.release()
        grant = await bob.acquire()
        print(f"client 1 released; client 2 then acquired at {grant.timestamp!r}")
        await bob.release()
        print("every grant rode the same replicated register — mutual "
              "exclusion holds up to the quorums' intersection probability\n")


def act_four_soak() -> None:
    print("=== 4. The serve soak: forgers + drops + live churn " + "=" * 16)
    spec = serve_load_spec(clients=150, reads_per_client=4, writes=15, seed=9)
    b = spec.scenario.failure_model.count
    k = spec.scenario.system.read_threshold
    print(f"{b} colluding forgers answer every read with a maximal forged "
          f"timestamp; the read threshold k={k} out-votes them\n")
    report = run_service_load(spec)
    print(render_serve(report))


async def act_one_tcp() -> None:
    print("=== 1 (tcp). One client over real localhost sockets " + "=" * 16)
    deployment = (
        Deployment.builder(SCENARIO).transport("tcp").deadline(1.0).seed(1).build()
    )
    async with deployment:
        server = deployment.sharded.shards[0].server
        host, port = server.address
        print(f"replica group of {SYSTEM.n} nodes listening on {host}:{port}")
        client = deployment.connect()
        write = await client.write("x", "hello over TCP")
        print(f"write crossed the wire to a quorum of {len(write.quorum)}; "
              f"{len(write.acknowledged)} acknowledgements came back")
        outcome = await client.read("x")
        register = client.register_for("x")
        print(f"read -> {outcome.value!r} with {outcome.votes} vouching votes; "
              f"label: {register.classify_read(outcome)}")
        transport = deployment.sharded.shards[0].transport
        print(f"transport counters: {transport.calls} rpcs, "
              f"{transport.timed_out} timed out\n")


def act_two_tcp_sharded_load() -> None:
    print("=== 2 (tcp). Sharded multi-register load over sockets " + "=" * 14)
    spec = serve_load_spec(
        clients=60,
        reads_per_client=4,
        writes=16,
        seed=9,
        transport="tcp",
        shards=4,
        keys=8,
        key_skew=0.8,
    )
    print(f"4 shards x 8 zipf-skewed keys, {spec.clients} clients, "
          f"forgers + drops + churn, wall-clock deadlines\n")
    report = run_service_load(spec)
    print(render_serve(report))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--transport",
        default="inproc",
        choices=("inproc", "tcp"),
        help="run the acts over simulated in-process messaging (default) "
        "or real localhost TCP sockets",
    )
    args = parser.parse_args()
    if args.transport == "tcp":
        asyncio.run(act_one_tcp())
        act_two_tcp_sharded_load()
        print("\n(simulated-time guarantees - deterministic seeds, exact "
              "deadline accounting - hold in-process; over TCP the deadlines "
              "are wall-clock and only the protocol's guarantees persist: "
              "zero fabricated reads accepted)")
        return
    asyncio.run(act_one_healthy())
    asyncio.run(act_two_crashes())
    asyncio.run(act_three_lock())
    act_four_soak()
    # The masking read is what kept the forgery out; show the contrast.
    print("\n(for contrast: a forged pair carries "
          f"{Timestamp.forged_maximum()!r}, outranking every honest write — "
          "only the >=k vote rule, not the timestamp order, rejects it)")


if __name__ == "__main__":
    main()
