"""End-to-end example: mobile-device location tracking (Section 1.1).

A fleet of phones moves between cells; each movement updates a replicated
location variable spread over location stores with an ε-intersecting quorum
system.  Callers look devices up with quorum reads.  The application
tolerates *stale* answers (the old cell forwards the caller) but not *no*
answer — exactly the availability-over-freshness trade-off the paper argues
probabilistic quorums fit.

The example measures, for the same workload:

* the fraction of lookups that were already current;
* the fraction that needed forwarding, and how many hops;
* how both improve when lazy gossip diffusion runs between movements;
* what happens when a third of the location stores crash mid-day.

Run with::

    python examples/mobile_location.py
"""

from __future__ import annotations

import random

from repro import UniformEpsilonIntersectingSystem
from repro.apps import LocationService
from repro.simulation import Cluster, FailurePlan

N_STORES = 80
N_DEVICES = 25
MOVES_PER_DEVICE = 12
LOOKUPS_PER_MOVE = 3
EPSILON_TARGET = 1e-3
CELLS = [f"cell-{i}" for i in range(30)]


def run_day(gossip_rounds: int, crash_midday: bool, seed: int) -> dict:
    """Simulate one day of movement and lookups; return summary statistics."""
    rng = random.Random(seed)
    system = UniformEpsilonIntersectingSystem.for_epsilon(N_STORES, EPSILON_TARGET)
    cluster = Cluster(N_STORES, failure_plan=FailurePlan.none(), seed=seed)
    service = LocationService(
        system, cluster, gossip_fanout=3 if gossip_rounds else 0, rng=rng
    )

    devices = [f"phone-{i:03d}" for i in range(N_DEVICES)]
    for device in devices:
        service.update_location(device, rng.choice(CELLS))

    current_answers = 0
    forwarded_answers = 0
    total_hops = 0
    lost_answers = 0
    total_lookups = 0

    for step in range(MOVES_PER_DEVICE):
        if crash_midday and step == MOVES_PER_DEVICE // 2:
            for server in rng.sample(range(N_STORES), N_STORES // 3):
                cluster.crash(server)
        for device in devices:
            service.update_location(device, rng.choice(CELLS))
        if gossip_rounds:
            service.run_gossip(gossip_rounds)
        for _ in range(LOOKUPS_PER_MOVE):
            device = rng.choice(devices)
            answer = service.locate(device)
            total_lookups += 1
            if not answer.found:
                lost_answers += 1
            elif answer.is_current:
                current_answers += 1
            else:
                forwarded_answers += 1
                total_hops += answer.forwarding_hops

    return {
        "lookups": total_lookups,
        "current": current_answers,
        "forwarded": forwarded_answers,
        "lost": lost_answers,
        "mean_hops": total_hops / forwarded_answers if forwarded_answers else 0.0,
        "stale_rate": service.stale_answer_rate,
        "unanswered_rate": service.unanswered_rate,
    }


def describe(label: str, stats: dict) -> None:
    print(f"\n--- {label} ---")
    print(f"lookups performed        : {stats['lookups']}")
    print(f"answered with current cell: {stats['current']}")
    print(f"answered but forwarded    : {stats['forwarded']} (mean hops {stats['mean_hops']:.2f})")
    print(f"no information at all     : {stats['lost']}")
    print(f"stale-answer rate         : {stats['stale_rate']:.4f}")
    print(f"unanswered rate           : {stats['unanswered_rate']:.4f}")


def main() -> None:
    print(
        f"{N_DEVICES} devices over {N_STORES} location stores; quorum system "
        f"sized for epsilon <= {EPSILON_TARGET}"
    )
    baseline = run_day(gossip_rounds=0, crash_midday=False, seed=7)
    describe("quorum accesses only (no gossip, no crashes)", baseline)

    gossiping = run_day(gossip_rounds=2, crash_midday=False, seed=7)
    describe("with 2 rounds of lazy gossip after each movement", gossiping)

    crashing = run_day(gossip_rounds=2, crash_midday=True, seed=7)
    describe("with gossip and a third of the stores crashing mid-day", crashing)

    print(
        "\nEven with a third of the stores down the lookups keep finding the "
        "devices: the construction's fault tolerance is n - q + 1, i.e. all but "
        "a sqrt(n)-sized remnant of the stores may fail."
    )


if __name__ == "__main__":
    main()
