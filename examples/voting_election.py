"""End-to-end example: the Costa-Rica-style electronic voting system.

Section 1.1 of the paper describes the application that motivated
probabilistic quorums: voter IDs must be "locked" country-wide when
presented at any of ~1000 voting stations, so that large-scale repeat voting
is impossible, while the election must keep making progress even when many
stations are down and some have been tampered with.

This example simulates a small election:

* ``n`` replica servers hold the lock state (think: the voting stations'
  shared back-end replicas);
* some servers are crashed (benign failures) and some are Byzantine
  (bribed officials) that collude to fabricate lock records;
* honest voters vote once; a pool of fraudsters repeatedly tries to reuse
  their IDs at different stations.

The output reports the audit: how many ballots were accepted, how many
repeat attempts were rejected, and how many slipped through (the ε events).

Run with::

    python examples/voting_election.py
"""

from __future__ import annotations

import random

from repro import ProbabilisticMaskingSystem
from repro.apps import VotingService
from repro.protocol.timestamps import Timestamp
from repro.simulation import Cluster, FailurePlan

N_SERVERS = 120
N_STATIONS = 40
N_HONEST_VOTERS = 300
N_FRAUDSTERS = 15
REPEAT_ATTEMPTS_PER_FRAUDSTER = 8
BYZANTINE_SERVERS = 12
CRASHED_SERVERS = 10
EPSILON_TARGET = 1e-3


def build_service(rng: random.Random) -> VotingService:
    """Assemble the lock service over a masking quorum system.

    Masking quorums are used because the lock records are not self-verifying
    in this configuration: a reader believes a lock only if at least ``k``
    servers of its quorum vouch for it, so colluding Byzantine servers cannot
    fabricate locks (to disenfranchise voters) unless the read quorum hits at
    least ``k`` of them.
    """
    system = ProbabilisticMaskingSystem.for_epsilon(N_SERVERS, BYZANTINE_SERVERS, EPSILON_TARGET)
    byzantine_plan = FailurePlan.colluding_forgers(
        N_SERVERS,
        BYZANTINE_SERVERS,
        {"station": -1, "voter": "fabricated-lock"},
        Timestamp.forged_maximum(),
        rng=rng,
    )
    # Crash a further batch of servers, disjoint from the Byzantine ones.
    crashable = sorted(set(range(N_SERVERS)) - byzantine_plan.byzantine_servers)
    crashed = frozenset(rng.sample(crashable, CRASHED_SERVERS))
    plan = FailurePlan(crashed=crashed, byzantine=dict(byzantine_plan.byzantine))
    cluster = Cluster(N_SERVERS, failure_plan=plan, seed=rng.randrange(2**32))
    print(
        f"cluster: {N_SERVERS} servers, {len(crashed)} crashed, "
        f"{BYZANTINE_SERVERS} Byzantine (colluding forgers)"
    )
    print(
        f"masking system: quorum size {system.quorum_size}, read threshold "
        f"{system.read_threshold}, epsilon <= {system.epsilon:.1e}"
    )
    return VotingService(system, cluster, rng=rng)


def run_election(service: VotingService, rng: random.Random) -> None:
    """Simulate election day."""
    # Honest voters: each votes exactly once at a random station.
    rejected_honest = 0
    for index in range(N_HONEST_VOTERS):
        outcome = service.cast_vote(f"citizen-{index:04d}", rng.randrange(N_STATIONS))
        if not outcome.accepted:
            rejected_honest += 1

    # Fraudsters: each votes once, then repeatedly tries other stations.
    admitted_repeats = 0
    for index in range(N_FRAUDSTERS):
        voter_id = f"fraudster-{index:02d}"
        service.cast_vote(voter_id, rng.randrange(N_STATIONS))
        for _ in range(REPEAT_ATTEMPTS_PER_FRAUDSTER):
            outcome = service.cast_vote(voter_id, rng.randrange(N_STATIONS))
            if outcome.accepted:
                admitted_repeats += 1

    audit = service.audit()
    print("\n--- election audit ---")
    print(f"ballots presented            : {audit.ballots_presented}")
    print(f"ballots accepted             : {audit.ballots_accepted}")
    print(f"distinct voters accepted     : {audit.distinct_voters_accepted}")
    print(f"repeat attempts rejected     : {audit.duplicates_rejected}")
    print(f"repeat attempts admitted     : {audit.duplicates_admitted}")
    print(f"repeat admission rate        : {audit.repeat_admission_rate:.4f}")
    print(f"honest voters wrongly blocked: {rejected_honest}")
    print(f"double voters detected       : {sorted(service.double_voters())}")
    print(
        "\nEach repeat attempt slips through only when its read quorum misses the "
        "entire lock-write quorum — probability <= epsilon — so a fraudster making "
        f"{REPEAT_ATTEMPTS_PER_FRAUDSTER} attempts gets them *all* admitted with "
        f"probability <= epsilon^{REPEAT_ATTEMPTS_PER_FRAUDSTER} (astronomically small)."
    )


def main() -> None:
    rng = random.Random(2026)
    service = build_service(rng)
    run_election(service, rng)


if __name__ == "__main__":
    main()
