"""Benchmark: regenerate Figure 3 (failure probability, masking systems).

Workload: the Figure 1 sweep in the Byzantine arbitrary-data setting with
b = √n — the probabilistic (b,ε)-masking construction ``Rk(n, q)`` (sized
for ε ≤ 10⁻³ with threshold ``k = q²/2n``) against the strict masking
threshold system with quorums of ⌈(n+2b+1)/2⌉.

Shape expectations: masking quorums are the largest of the three settings,
so the probabilistic curve sits (weakly) above its Figure 1 counterpart, but
the strict masking quorums exceed (n+2b)/2 servers, so the availability gap
remains decisive and the strict lower bound is still beaten above p = 1/2.
"""

from __future__ import annotations

from repro.experiments.figures import (
    default_probability_grid,
    figure1_curves,
    figure3_curves,
)
from repro.experiments.report import render_figure

GRID = default_probability_grid(41)


def _series(figure, prefix):
    for label in figure.labels():
        if label.startswith(prefix):
            return figure.series[label]
    raise AssertionError(f"no series with prefix {prefix!r}")


def test_figure3_failure_probability(benchmark, report_sink):
    figure = benchmark(figure3_curves, ps=GRID)

    prob_300 = _series(figure, "probabilistic masking Rk(n=300")
    thresh_300 = _series(figure, "strict masking threshold (n=300")
    bound = _series(figure, "strict lower bound")

    for index, p in enumerate(GRID):
        if 0.2 <= p <= 0.7:
            assert prob_300[index].failure_probability <= thresh_300[index].failure_probability + 1e-12
        if 0.5 <= p <= 0.65:
            assert prob_300[index].failure_probability < bound[index].failure_probability

    # Masking quorums are larger than the plain epsilon-intersecting ones, so
    # availability is (weakly) worse than Figure 1 at every p — but still far
    # better than the strict masking threshold baseline at p = 1/2.
    figure1 = figure1_curves(ps=GRID)
    plain_300 = _series(figure1, "probabilistic R(n=300")
    for index in range(len(GRID)):
        assert (
            prob_300[index].failure_probability
            >= plain_300[index].failure_probability - 1e-12
        )
    index_half = GRID.index(0.5)
    assert thresh_300[index_half].failure_probability > 0.9
    assert prob_300[index_half].failure_probability < 1e-6

    report_sink(render_figure(figure))
