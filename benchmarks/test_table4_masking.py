"""Benchmark: regenerate Table 4 ((b,ε)-masking vs. strict baselines).

Workload: for every universe size, set ``b = ⌊(√n - 1)/2⌋``, calibrate the
smallest ``Rk(n, q)`` (threshold ``k = q²/2n``) whose exact masking error is
≤ 10⁻³, and compare it against the strict masking threshold system
(quorums of ``⌈(n+2b+1)/2⌉``) and the masking grid.

Shape expectations: masking needs noticeably larger quorums than the plain
ε-intersecting construction (ℓ grows from ~2.5 to ~4-5) but still far
smaller than the strict threshold quorums for n ≥ 100; fault tolerance
remains Θ(n); and the calibrated sizes land within a few servers of the
paper's (which used a slightly different threshold optimisation).
"""

from __future__ import annotations

from repro.experiments.report import render_table4
from repro.experiments.tables import PAPER_EPSILON, table2_rows, table4_rows


def test_table4_masking(benchmark, report_sink):
    rows = benchmark(table4_rows)

    plain_rows = {row.n: row for row in table2_rows()}
    for row in rows:
        assert row.epsilon <= PAPER_EPSILON
        # Masking costs more than plain epsilon-intersection...
        assert row.quorum_size > plain_rows[row.n].quorum_size
        # ...but still beats the strict threshold construction for n >= 100.
        if row.n >= 100:
            assert row.quorum_size < row.threshold_quorum_size
        assert row.fault_tolerance > row.grid_fault_tolerance
        assert row.fault_tolerance > row.b
        # Paper-vs-measured: within a few servers of the published sizing.
        assert abs(row.quorum_size - row.paper_quorum_size) <= 6

    report_sink(render_table4(rows))
