"""Ablation: probe complexity of finding a live quorum under crashes.

The load/availability analysis assumes the client knows which servers are
alive; in practice it probes.  Section 2.1 of the paper points at the
Peleg-Wool probe-complexity line of work and notes it applies directly to
the probabilistic constructions.  This ablation measures, for the uniform
construction ``R(n, q)`` and for the strict grid and majority baselines, how
many probes an adaptive client needs to assemble a live quorum as the crash
probability grows.

Shape expectations: for ``R(n, q)`` the expected probe count follows the
closed form ``q (n+1)/(a+1)`` (``a`` = number of live servers), i.e. it
stays close to ``q`` until the crash probability approaches ``1 - q/n``;
the grid needs few probes when healthy but starts failing outright (no live
quorum) at much smaller crash probabilities, mirroring its √n fault
tolerance.
"""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.probe import (
    GreedyProbeStrategy,
    UniformProbeStrategy,
    expected_probes_uniform,
    oracle_from_alive_set,
)

N = 100
CRASH_PROBABILITIES = [0.0, 0.2, 0.4, 0.6, 0.8]
TRIALS = 150


def run_probe_sweep():
    system = UniformEpsilonIntersectingSystem.for_epsilon(N, 1e-3)
    uniform_probe = UniformProbeStrategy(N, system.quorum_size)
    grid = GridQuorumSystem(N)
    grid_probe = GreedyProbeStrategy(grid)
    rng = random.Random(31)

    rows = []
    for p in CRASH_PROBABILITIES:
        uniform_probes = []
        uniform_found = 0
        grid_probes = []
        grid_found = 0
        for _ in range(TRIALS):
            alive = {server for server in range(N) if rng.random() >= p}
            oracle = oracle_from_alive_set(alive)
            result = uniform_probe.probe(oracle, rng)
            uniform_probes.append(result.probes_used)
            uniform_found += result.found
            grid_result = grid_probe.probe(oracle)
            grid_probes.append(grid_result.probes_used)
            grid_found += grid_result.found
        rows.append(
            {
                "p": p,
                "uniform_mean_probes": sum(uniform_probes) / TRIALS,
                "uniform_success": uniform_found / TRIALS,
                "uniform_expected": expected_probes_uniform(
                    N, system.quorum_size, max(system.quorum_size, round(N * (1 - p)))
                ),
                "grid_mean_probes": sum(grid_probes) / TRIALS,
                "grid_success": grid_found / TRIALS,
            }
        )
    return {"quorum_size": system.quorum_size, "rows": rows}


@pytest.mark.slow
def test_ablation_probe_complexity(benchmark, report_sink):
    outcome = benchmark.pedantic(run_probe_sweep, rounds=1, iterations=1)
    rows = outcome["rows"]

    lines = [
        f"Ablation: probe complexity under crashes (n={N}, q={outcome['quorum_size']})",
        "     p   R(n,q) probes (mean/expected)  success   grid probes  grid success",
    ]
    for row in rows:
        lines.append(
            f"  {row['p']:.1f}   {row['uniform_mean_probes']:10.1f} / {row['uniform_expected']:6.1f}"
            f"      {row['uniform_success']:7.2f}   {row['grid_mean_probes']:11.1f}"
            f"   {row['grid_success']:12.2f}"
        )
    report_sink("\n".join(lines))

    # Healthy cluster: both need roughly one quorum's worth of probes and
    # always succeed.
    healthy = rows[0]
    assert healthy["uniform_success"] == 1.0
    assert healthy["uniform_mean_probes"] <= outcome["quorum_size"] + 1
    assert healthy["grid_success"] == 1.0

    # Probe counts grow with the crash probability but match the closed form
    # for the uniform construction while quorums still exist.
    for row in rows:
        if row["uniform_success"] > 0.95:
            assert abs(row["uniform_mean_probes"] - row["uniform_expected"]) <= max(
                3.0, 0.15 * row["uniform_expected"]
            )

    # The uniform construction keeps finding quorums at p = 0.6 (its fault
    # tolerance is Theta(n)) while the grid has mostly collapsed by then.
    by_p = {row["p"]: row for row in rows}
    assert by_p[0.6]["uniform_success"] > 0.95
    assert by_p[0.6]["grid_success"] < 0.5
