"""Benchmark: regenerate Table 1 (bounds on load and resilience).

Table 1 of the paper summarises the known lower bounds on the load and the
upper bounds on the resilience of strict, b-dissemination and b-masking
quorum systems.  The benchmark evaluates them for every universe size used
in Section 6 and checks the expected ordering (masking > dissemination >
strict load bounds; dissemination resilience ceiling above masking's).
"""

from __future__ import annotations

from repro.experiments.report import render_table1
from repro.experiments.tables import (
    PAPER_UNIVERSE_SIZES,
    paper_byzantine_threshold,
    table1_entries,
)


def regenerate_table1():
    results = {}
    for n in PAPER_UNIVERSE_SIZES:
        b = paper_byzantine_threshold(n)
        results[(n, b)] = table1_entries(n, b)
    return results


def test_table1_bounds(benchmark, report_sink):
    results = benchmark(regenerate_table1)

    for (n, b), entries in results.items():
        by_kind = {entry.kind: entry for entry in entries}
        assert (
            by_kind["strict"].load_lower_bound
            < by_kind["dissemination"].load_lower_bound
            < by_kind["masking"].load_lower_bound
        )
        assert by_kind["dissemination"].max_resilience == (n - 1) // 3
        assert by_kind["masking"].max_resilience == (n - 1) // 4

    sample_n = 100
    sample_b = paper_byzantine_threshold(sample_n)
    report_sink(render_table1(results[(sample_n, sample_b)], sample_n, sample_b))
