"""Benchmark: regenerate Table 2 (ε-intersecting vs. threshold vs. grid).

Workload: for every universe size in {25, 100, 225, 400, 625, 900}, calibrate
the smallest ``R(n, q)`` with exact ε ≤ 10⁻³ and compare its quorum size and
fault tolerance against the strict majority-threshold and grid baselines.

Shape expectations from the paper: probabilistic quorums grow like Θ(√n)
(so they are far smaller than the ~n/2 threshold quorums), their fault
tolerance is Θ(n) (far above the grid's √n), and the calibrated quorum size
lands within a couple of servers of the paper's published ℓ√n.
"""

from __future__ import annotations

from repro.experiments.report import render_table2
from repro.experiments.tables import PAPER_EPSILON, table2_rows


def test_table2_epsilon_intersecting(benchmark, report_sink):
    rows = benchmark(table2_rows)

    for row in rows:
        assert row.epsilon <= PAPER_EPSILON
        # who wins: the probabilistic construction has much smaller quorums
        # than the threshold system and much better fault tolerance than both.
        assert row.quorum_size < row.threshold_quorum_size
        assert row.fault_tolerance > row.threshold_fault_tolerance
        assert row.fault_tolerance > row.grid_fault_tolerance
        # by roughly what factor: quorums are ~ell*sqrt(n) with ell ~ 2-2.6.
        assert 1.5 <= row.ell <= 3.0
        # paper-vs-measured: within two servers of the published sizing.
        assert abs(row.quorum_size - row.paper_quorum_size) <= 2

    # The threshold-vs-probabilistic quorum size gap widens with n (factor ~6 at n=900).
    largest = rows[-1]
    assert largest.threshold_quorum_size / largest.quorum_size > 4

    report_sink(render_table2(rows))
