"""Ablation: the effect of the quorum-size parameter ℓ on ε and load.

DESIGN.md calls out the central design choice of the paper's construction:
the quorum size ``q = ℓ√n`` trades load (``ℓ/√n``) against the consistency
guarantee (``ε ≈ e^{-ℓ²}``).  This ablation sweeps ℓ for a fixed universe
and reports, for each value, the exact ε, the closed-form bound, the load
and the fault tolerance — making the trade-off the tables exploit explicit.

Shape expectations: ε decays roughly like ``e^{-ℓ²}`` (so each +0.5 in ℓ
buys orders of magnitude), while load only grows linearly in ℓ and fault
tolerance degrades linearly.
"""

from __future__ import annotations

import math

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem

N = 400
ELLS = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]


def sweep_ell():
    rows = []
    for ell in ELLS:
        system = UniformEpsilonIntersectingSystem.from_ell(N, ell)
        rows.append(
            {
                "ell": ell,
                "q": system.quorum_size,
                "epsilon": system.epsilon,
                "bound": system.epsilon_bound(),
                "load": system.load(),
                "fault_tolerance": system.fault_tolerance(),
            }
        )
    return rows


def test_ablation_ell_tradeoff(benchmark, report_sink):
    rows = benchmark(sweep_ell)

    lines = [f"Ablation: ell sweep for R(n={N}, ell*sqrt(n))",
             "   ell     q      epsilon        e^-ell^2      load   fault tol"]
    for row in rows:
        lines.append(
            f"  {row['ell']:4.1f}  {row['q']:4d}   {row['epsilon']:.3e}   "
            f"{row['bound']:.3e}   {row['load']:.3f}   {row['fault_tolerance']:5d}"
        )
    report_sink("\n".join(lines))

    epsilons = [row["epsilon"] for row in rows]
    loads = [row["load"] for row in rows]
    fts = [row["fault_tolerance"] for row in rows]
    # epsilon strictly decreasing, load strictly increasing, fault tolerance decreasing.
    assert all(a > b for a, b in zip(epsilons, epsilons[1:]))
    assert all(a < b for a, b in zip(loads, loads[1:]))
    assert all(a >= b for a, b in zip(fts, fts[1:]))
    # The closed-form bound is always valid and within a couple of orders of
    # magnitude of the exact value in this regime.
    for row in rows:
        assert row["epsilon"] <= row["bound"] + 1e-12
    # Each +1 step of ell buys at least one order of magnitude of epsilon by
    # ell = 2 (the e^{-ell^2} decay).
    assert epsilons[ELLS.index(3.0)] < epsilons[ELLS.index(2.0)] / 10
    # Load grows only linearly: doubling ell doubles the load.
    assert loads[ELLS.index(4.0)] == rows[ELLS.index(4.0)]["q"] / N
    assert abs(loads[ELLS.index(4.0)] / loads[ELLS.index(2.0)] - 2.0) < 0.1
