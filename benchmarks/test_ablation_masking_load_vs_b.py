"""Ablation: masking load as a function of the Byzantine threshold b (§5.5).

Section 5.5 argues that the probabilistic masking construction's load
``O(ℓ b / n)`` beats the strict masking lower bound ``Ω(√((2b+1)/n))``
precisely when ``b = ω(√n)``, and illustrates it with ``b = √n`` and
``ℓ = n^{1/5}`` giving load ``O(n^{-0.3})`` against the strict
``Ω(n^{-0.25})``.  This ablation sweeps b for a fixed universe and reports,
for each b, the calibrated probabilistic construction's load, the strict
masking lower bound, and the strict threshold masking system's actual load
(when it exists).

Shape expectations: below roughly √n the probabilistic construction's load
is flat (dominated by the ε requirement, quorums of size ~ℓ√n); above √n it
grows roughly linearly in b but stays below the strict √((2b+1)/n) bound
— and beyond (n−1)/4 the strict construction does not exist at all while
the probabilistic one keeps going.
"""

from __future__ import annotations

import math

from repro.core.bounds import strict_load_lower_bound
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError
from repro.quorum.byzantine import ThresholdMaskingQuorumSystem
from repro.simulation.client import measure_system_load

N = 900
EPSILON = 1e-3
#: Quorum accesses per construction for the empirical (batch-engine) load check.
EMPIRICAL_ACCESSES = 20_000
# b up to one quarter of the universe: beyond that the paper's threshold
# k = q²/2n stops separating the two expectations for any admissible q <= n-b
# (l = q/b must exceed 2), so the construction needs a different k.
B_SWEEP = [5, 10, 15, 30, 60, 90, 150, 225]


def sweep_b():
    rows = []
    for b in B_SWEEP:
        system = ProbabilisticMaskingSystem.for_epsilon(N, b, EPSILON)
        try:
            strict_load = ThresholdMaskingQuorumSystem(N, b).load()
        except ConfigurationError:
            strict_load = None
        # Cross-check the analytical q/n with the batch engine's empirical
        # measurement (the vectorised access stream through the strategy).
        measured = measure_system_load(
            system, accesses=EMPIRICAL_ACCESSES, seed=b, engine="batch"
        )
        rows.append(
            {
                "b": b,
                "q": system.quorum_size,
                "load": system.load(),
                "measured_load": measured.max_load,
                "strict_bound": strict_load_lower_bound(N, b, "masking"),
                "strict_threshold_load": strict_load,
                "epsilon": system.epsilon,
            }
        )
    return rows


def test_ablation_masking_load_vs_b(benchmark, report_sink):
    rows = benchmark.pedantic(sweep_b, rounds=1, iterations=1)

    lines = [
        f"Ablation: masking load vs b (n={N}, epsilon <= {EPSILON})",
        "     b     q     load   measured   strict lower bound   strict threshold load",
    ]
    for row in rows:
        strict_text = (
            "   (no strict system)"
            if row["strict_threshold_load"] is None
            else f"{row['strict_threshold_load']:20.3f}"
        )
        lines.append(
            f"  {row['b']:4d}  {row['q']:4d}   {row['load']:.3f}   {row['measured_load']:.3f}   "
            f"{row['strict_bound']:18.3f}   {strict_text}"
        )
    report_sink("\n".join(lines))

    sqrt_n = math.isqrt(N)
    for row in rows:
        assert row["epsilon"] <= EPSILON
        # The batch-measured empirical load tracks the analytical q/n.
        assert abs(row["measured_load"] - row["load"]) <= 0.02
        # For b well above sqrt(n) the construction beats the strict masking
        # load lower bound (Section 5.5's headline), and a fortiori the actual
        # strict threshold construction where it exists.
        if row["b"] >= 2 * sqrt_n:
            assert row["load"] < row["strict_bound"]
        if row["strict_threshold_load"] is not None and row["b"] >= sqrt_n:
            assert row["load"] < row["strict_threshold_load"]
    # The strict construction stops existing beyond (n-1)/4; ours keeps going.
    ceiling = (N - 1) // 4
    assert any(row["b"] > ceiling and row["strict_threshold_load"] is None for row in rows)
    assert all(row["load"] <= 1.0 for row in rows)
    # Load grows with b once b dominates the epsilon requirement.
    assert rows[-1]["load"] > rows[0]["load"]
