"""Benchmark: regenerate Figure 2 (failure probability, dissemination systems).

Workload: the Figure 1 sweep repeated in the Byzantine self-verifying-data
setting with b = √n — the probabilistic (b,ε)-dissemination construction
(sized for ε ≤ 10⁻³) against the strict dissemination threshold system with
quorums of ⌈(n+b+1)/2⌉.

Shape expectations: the strict quorums are even larger than in Figure 1, so
the availability gap is wider; the probabilistic construction still beats
the strict-system lower bound for p above 1/2.
"""

from __future__ import annotations

from repro.experiments.figures import default_probability_grid, figure2_curves
from repro.experiments.report import render_figure

GRID = default_probability_grid(41)


def _series(figure, prefix):
    for label in figure.labels():
        if label.startswith(prefix):
            return figure.series[label]
    raise AssertionError(f"no series with prefix {prefix!r}")


def test_figure2_failure_probability(benchmark, report_sink):
    figure = benchmark(figure2_curves, ps=GRID)

    prob_300 = _series(figure, "probabilistic dissemination R(n=300")
    thresh_300 = _series(figure, "strict dissemination threshold (n=300")
    prob_100 = _series(figure, "probabilistic dissemination R(n=100")
    thresh_100 = _series(figure, "strict dissemination threshold (n=100")
    bound = _series(figure, "strict lower bound")

    for index, p in enumerate(GRID):
        if 0.2 <= p <= 0.7:
            assert prob_300[index].failure_probability <= thresh_300[index].failure_probability + 1e-12
            assert prob_100[index].failure_probability <= thresh_100[index].failure_probability + 1e-12
        if 0.5 <= p <= 0.7:
            assert prob_300[index].failure_probability < bound[index].failure_probability

    # At p = 1/2 the strict dissemination threshold system is already failing
    # most of the time (its quorums exceed (n+b)/2 servers), while the
    # probabilistic construction is still essentially always available.
    index_half = GRID.index(0.5)
    assert thresh_300[index_half].failure_probability > 0.5
    assert prob_300[index_half].failure_probability < 1e-8

    report_sink(render_figure(figure))
