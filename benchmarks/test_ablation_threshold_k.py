"""Ablation: the masking read threshold k (Section 5.3's design choice).

The paper chooses ``k = q²/(2n)`` and notes the choice is "somewhat
arbitrary" — any k strictly between ``E[|Q ∩ B|] = qb/n`` and
``E[|Q ∩ Q' \\ B|] = (n-b)q²/n²`` works, and balancing the two error terms
yields marginally better constants.  This ablation sweeps k across that
window for a fixed ``Rk(n, q)`` and reports the two error components and
the total exact error, confirming that:

* outside the window the error degenerates (one of the two terms blows up);
* the paper's q²/2n sits comfortably inside the window;
* the best k in the sweep is no more than a small factor better than q²/2n.
"""

from __future__ import annotations

import math

from repro.analysis.intersection import (
    masking_error_decomposition,
    masking_expectations,
)

N = 400
B = 20
Q = 80  # ell = q/b = 4


def sweep_threshold():
    e_faulty, e_correct = masking_expectations(N, Q, B)
    paper_k = Q * Q / (2.0 * N)
    candidates = sorted(
        set(
            [max(1.0, e_faulty * 0.5), e_faulty, (e_faulty + e_correct) / 2, paper_k,
             e_correct, e_correct * 1.2]
            + [e_faulty + i * (e_correct - e_faulty) / 8 for i in range(1, 8)]
        )
    )
    rows = []
    for k in candidates:
        decomposition = masking_error_decomposition(N, Q, B, k)
        rows.append(
            {
                "k": k,
                "p_faulty": decomposition.p_too_many_faulty,
                "p_stale": decomposition.p_too_few_correct,
                "error": decomposition.exact_error,
            }
        )
    return {"rows": rows, "paper_k": paper_k, "window": (e_faulty, e_correct)}


def test_ablation_masking_threshold(benchmark, report_sink):
    result = benchmark(sweep_threshold)
    rows = result["rows"]
    paper_k = result["paper_k"]
    e_faulty, e_correct = result["window"]

    lines = [
        f"Ablation: masking threshold k for Rk(n={N}, q={Q}), b={B}",
        f"  window: E|Q∩B| = {e_faulty:.2f}  <  k  <  E|Q∩Q'\\B| = {e_correct:.2f}; "
        f"paper's k = q²/2n = {paper_k:.2f}",
        "      k     P(>=k faulty)   P(<k fresh)   total error",
    ]
    for row in rows:
        lines.append(
            f"  {row['k']:6.2f}   {row['p_faulty']:.3e}     {row['p_stale']:.3e}   {row['error']:.3e}"
        )
    report_sink("\n".join(lines))

    # The paper's threshold lies strictly inside the admissible window.
    assert e_faulty < paper_k < e_correct

    by_k = {row["k"]: row for row in rows}
    paper_error = by_k[paper_k]["error"]
    best_error = min(row["error"] for row in rows)
    # The paper's choice is within a factor ~50 of the best k in the sweep
    # (the point of the remark: the choice is not critical).
    assert paper_error <= max(best_error * 50, best_error + 1e-9)

    # Degenerate choices are clearly worse: k at/below E[X] admits forgeries,
    # k at/above E[Y] rejects fresh values.
    low_k = min(by_k)
    high_k = max(by_k)
    assert by_k[low_k]["p_faulty"] > by_k[paper_k]["p_faulty"]
    assert by_k[high_k]["p_stale"] > by_k[paper_k]["p_stale"]
    assert by_k[high_k]["error"] > paper_error
