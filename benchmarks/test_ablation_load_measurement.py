"""Ablation: analytical load vs. empirically measured load.

The load (Definition 2.4 / 3.3) is an analytical quantity — the access
probability of the busiest server under the access strategy.  This ablation
drives a workload of quorum accesses through the strategies of the three
probabilistic constructions and of the strict baselines, counts how often
each server is actually touched, and compares the busiest server's empirical
access rate against the closed-form load.

Shape expectations: for the symmetric constructions the busiest server's
empirical rate converges to the analytical q/n; the strict threshold
baseline's load is several times higher; the grid sits in between; a skewed
(non-uniform) strategy on the same set system measurably concentrates load,
which is why the paper insists on the specified strategy being enforced.
"""

from __future__ import annotations

import random

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.core.strategy import ExplicitStrategy, UniformSubsetStrategy
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.threshold import MajorityQuorumSystem
from repro.simulation.client import WorkloadClient, measure_system_load

N = 100
ACCESSES = 6000


def measure_all():
    results = {}

    plain = UniformEpsilonIntersectingSystem.for_epsilon(N, 1e-3)
    results["probabilistic R(n,q)"] = (plain.load(), measure_system_load(plain, ACCESSES, seed=1))

    masking = ProbabilisticMaskingSystem.for_epsilon(N, 4, 1e-3)
    results["probabilistic Rk(n,q)"] = (
        masking.load(),
        measure_system_load(masking, ACCESSES, seed=2),
    )

    majority = MajorityQuorumSystem(N)
    # The majority system's optimal strategy is uniform over all subsets of
    # size ⌈(n+1)/2⌉, which UniformSubsetStrategy samples directly.
    majority_strategy = UniformSubsetStrategy(N, majority.quorum_size)
    results["strict threshold"] = (
        majority.load(),
        WorkloadClient(N, majority_strategy, random.Random(3)).run(ACCESSES),
    )

    grid = GridQuorumSystem(N)
    grid_strategy = ExplicitStrategy(list(grid.enumerate_quorums()))
    results["strict grid"] = (
        grid.load(),
        WorkloadClient(N, grid_strategy, random.Random(4)).run(ACCESSES),
    )

    # A skewed strategy over the same uniform set system: always reuse a
    # handful of fixed quorums.  The paper's remark after Theorem 3.2 warns
    # that deviating from the specified strategy voids the guarantees; here it
    # also concentrates the load.
    hot_quorums = [plain.sample_quorum(random.Random(5)) for _ in range(3)]
    skewed = ExplicitStrategy(hot_quorums, weights=[0.6, 0.3, 0.1])
    results["skewed strategy"] = (
        plain.load(),
        WorkloadClient(N, skewed, random.Random(6)).run(ACCESSES),
    )
    return results


def test_ablation_load_measurement(benchmark, report_sink):
    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    lines = [
        f"Ablation: analytical vs measured load (n={N}, {ACCESSES} accesses)",
        "  system                  analytical load   measured busiest-server rate",
    ]
    for name, (analytical, measurement) in results.items():
        lines.append(f"  {name:22s}  {analytical:15.3f}   {measurement.max_load:10.3f}")
    report_sink("\n".join(lines))

    plain_analytical, plain_measured = results["probabilistic R(n,q)"]
    assert plain_measured.max_load == pytest_approx(plain_analytical, 0.05)

    threshold_analytical, threshold_measured = results["strict threshold"]
    assert threshold_measured.max_load > 2 * plain_measured.max_load
    assert threshold_measured.max_load == pytest_approx(threshold_analytical, 0.06)

    grid_analytical, grid_measured = results["strict grid"]
    assert grid_measured.max_load == pytest_approx(grid_analytical, 0.05)

    _, skewed_measured = results["skewed strategy"]
    # The skewed strategy hammers its hot quorums' servers far beyond q/n.
    assert skewed_measured.max_load > 3 * plain_analytical


def pytest_approx(value, tolerance):
    import pytest

    return pytest.approx(value, abs=tolerance)
