"""Benchmark: regenerate Table 3 ((b,ε)-dissemination vs. strict baselines).

Workload: for every universe size, set ``b = ⌊(√n - 1)/2⌋`` (the largest b
for which every construction in the paper's table exists), calibrate the
smallest ``R(n, q)`` whose exact worst-case ``P(Q ∩ Q' ⊆ B)`` is ≤ 10⁻³,
and compare it against the strict dissemination threshold system
(quorums of ``⌈(n+b+1)/2⌉``) and the dissemination grid.

Shape expectations: the probabilistic quorums stay Θ(√n) while the strict
threshold quorums exceed n/2; fault tolerance is Θ(n) vs. √n for the grid;
and our exact calibration reproduces the paper's published quorum sizes
exactly for this table.
"""

from __future__ import annotations

from repro.experiments.report import render_table3
from repro.experiments.tables import PAPER_EPSILON, table3_rows


def test_table3_dissemination(benchmark, report_sink):
    rows = benchmark(table3_rows)

    for row in rows:
        assert row.epsilon <= PAPER_EPSILON
        assert row.quorum_size < row.threshold_quorum_size
        assert row.fault_tolerance > row.threshold_fault_tolerance
        assert row.fault_tolerance > row.grid_fault_tolerance
        # The probabilistic construction also tolerates b Byzantine servers
        # while keeping crash fault tolerance above b.
        assert row.fault_tolerance > row.b
        # Exact match with the paper's published quorum sizes.
        assert row.quorum_size == row.paper_quorum_size

    report_sink(render_table3(rows))
