"""Benchmark: regenerate Figure 1 (failure probability, benign failures).

Workload: sweep the per-server crash probability p over [0, 1] and evaluate
the exact failure probability of (i) the ε-intersecting construction sized
for ε ≤ 10⁻³ at n = 100 and n = 300, (ii) the strict threshold construction
with quorums of ⌈(n+1)/2⌉, and (iii) the lower bound achievable by any
strict quorum system on ≤ 300 servers (majority below p = 1/2, singleton
above).

Shape expectations from the paper: the probabilistic construction decisively
beats the strict threshold construction at moderate p, and for
1/2 ≤ p ≤ 1 − ℓ/√n it even beats the strict lower bound (every strict
system has Fp ≥ p there), with the advantage growing with n.
"""

from __future__ import annotations

from repro.experiments.figures import default_probability_grid, figure1_curves
from repro.experiments.report import render_figure

GRID = default_probability_grid(41)


def _series(figure, prefix):
    for label in figure.labels():
        if label.startswith(prefix):
            return figure.series[label]
    raise AssertionError(f"no series with prefix {prefix!r}")


def test_figure1_failure_probability(benchmark, report_sink):
    figure = benchmark(figure1_curves, ps=GRID)

    prob_300 = _series(figure, "probabilistic R(n=300")
    thresh_300 = _series(figure, "strict threshold (n=300")
    bound = _series(figure, "strict lower bound")

    for index, p in enumerate(GRID):
        # who wins: the probabilistic construction never does worse than the
        # threshold baseline until both saturate near p = 1.
        if 0.2 <= p <= 0.7:
            assert prob_300[index].failure_probability <= thresh_300[index].failure_probability + 1e-12
        # beats every strict system above p = 1/2 (until ~1 - ell/sqrt(n)).
        if 0.5 <= p <= 0.75:
            assert prob_300[index].failure_probability < bound[index].failure_probability

    # by roughly what factor: at p = 0.5 the gap vs. the threshold system is
    # many orders of magnitude for n = 300.
    index_half = GRID.index(0.5)
    assert prob_300[index_half].failure_probability < 1e-6
    assert thresh_300[index_half].failure_probability > 1e-2

    report_sink(render_figure(figure))
