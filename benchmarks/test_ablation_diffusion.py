"""Ablation: lazy diffusion's effect on read staleness (Section 1.1).

The paper argues that coupling a probabilistic quorum system with a gossip
diffusion mechanism drives the probability of inconsistency "further toward
zero when updates are sufficiently dispersed in time".  This ablation runs
the full protocol stack with a deliberately loose construction (so that
staleness is measurable at all) and varies the number of gossip rounds
executed between consecutive writes.

Shape expectations: the fraction of fresh reads increases monotonically (up
to Monte-Carlo noise) with the number of gossip rounds, approaching 1 once a
handful of rounds is enough to reach most correct servers; the zero-round
column reproduces the raw quorum-only behaviour.
"""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.monte_carlo import estimate_staleness_distribution

N = 36
QUORUM_SIZE = 5  # deliberately loose: epsilon ~ 0.43, so staleness is visible
GOSSIP_ROUNDS = [0, 1, 2, 4, 8]
TRIALS = 120


def sweep_gossip_rounds():
    system = UniformEpsilonIntersectingSystem(N, QUORUM_SIZE)
    results = {}
    for rounds in GOSSIP_ROUNDS:
        report = estimate_staleness_distribution(
            lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng),
            n=N,
            writes=4,
            gossip_rounds_between_writes=rounds,
            gossip_fanout=3,
            trials=TRIALS,
            seed=29,
        )
        results[rounds] = report
    return {"epsilon": system.epsilon, "reports": results}


@pytest.mark.slow
def test_ablation_diffusion(benchmark, report_sink):
    outcome = benchmark.pedantic(sweep_gossip_rounds, rounds=1, iterations=1)
    reports = outcome["reports"]

    lines = [
        f"Ablation: gossip rounds between writes (R(n={N}, q={QUORUM_SIZE}), "
        f"epsilon = {outcome['epsilon']:.3f})",
        "  rounds   fresh fraction   mean staleness lag",
    ]
    for rounds in GOSSIP_ROUNDS:
        report = reports[rounds]
        lines.append(
            f"  {rounds:6d}   {report.fresh_fraction:14.3f}   {report.mean_lag:18.3f}"
        )
    report_sink("\n".join(lines))

    # Gossip helps: the fully-gossiped run is clearly fresher than the raw run,
    # and the mean staleness lag shrinks accordingly.
    assert reports[8].fresh_fraction > reports[0].fresh_fraction + 0.1
    assert reports[8].mean_lag < reports[0].mean_lag
    # With 8 rounds of fanout-3 gossip on 36 servers, nearly every read is fresh.
    assert reports[8].fresh_fraction > 0.9
    # Weak monotonicity (up to Monte-Carlo noise) across the sweep.
    fresh = [reports[r].fresh_fraction for r in GOSSIP_ROUNDS]
    assert all(later >= earlier - 0.08 for earlier, later in zip(fresh, fresh[1:]))
