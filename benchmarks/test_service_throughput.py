"""Benchmark: live service throughput and Byzantine safety under load.

Two workloads exercise the asyncio service layer (`repro.service`):

* **throughput** — 1,000 concurrent in-process clients reading a masking
  register on a loss-free transport.  The acceptance floor is 2,000 ops/s:
  the point is not raw speed but that the genuinely concurrent stack (fan-
  out RPCs, per-RPC deadlines, deterministic selection, shared
  classification) sustains real traffic rather than only scoring offline
  trials.
* **fault-injection soak** — the `serve` experiment's configuration:
  colluding forgers at the system's declared tolerance (``b = 3`` below
  the read threshold ``k = 5``), 1% message drops, latency + jitter, and
  rolling live crash/recovery churn.  Safety expectation: *zero*
  ``fabricated`` outcomes (classified via the shared
  ``repro.protocol.classification`` labels) — with ``k > b`` a fabricated
  accept would be a stack bug, not bad luck.
"""

from __future__ import annotations

from repro.core.masking import ProbabilisticMaskingSystem
from repro.experiments.serve import render_serve, serve_load_spec
from repro.service.load import ServiceLoadSpec, run_service_load
from repro.simulation.scenario import ScenarioSpec

#: Acceptance floor for the 1k-client in-process throughput run.
MIN_OPS_PER_SECOND = 2_000.0


def test_masking_register_throughput_1k_clients(report_sink):
    spec = ServiceLoadSpec(
        scenario=ScenarioSpec(system=ProbabilisticMaskingSystem(25, 10, 3)),
        clients=1_000,
        reads_per_client=3,
        writes=50,
        rpc_timeout=1.0,
        seed=11,
    )
    report = run_service_load(spec)

    assert report.reads_completed == 3_000
    assert report.writes_completed == 50
    assert report.throughput >= MIN_OPS_PER_SECOND, (
        f"masking service sustained only {report.throughput:,.0f} ops/s "
        f"with 1k concurrent clients (floor: {MIN_OPS_PER_SECOND:,.0f})"
    )
    # Healthy deployment: nothing fabricated, nothing stale; the only
    # non-fresh reads are those racing the very first write.
    assert report.violations == 0
    assert report.outcomes["stale"] == 0
    assert report.outcomes["fresh"] + report.outcomes["empty"] == 3_000

    report_sink(report.render())


def test_fault_injection_soak_accepts_no_fabricated_reads(report_sink):
    spec = serve_load_spec(clients=150, reads_per_client=4, writes=15, seed=23)
    # The scenario's threshold strictly exceeds the forger count, making the
    # zero-fabrication assertion structural rather than statistical.
    assert spec.scenario.system.read_threshold > spec.scenario.failure_model.count
    report = run_service_load(spec)

    assert report.reads_completed == 600
    assert report.violations == 0, (
        f"{report.violations} fabricated reads were accepted under "
        f"{spec.scenario.failure_model.describe()}"
    )
    # The soak must actually have exercised the failure paths it claims to:
    # dropped messages, timed-out RPCs, live churn and probe-based repair.
    assert report.rpc_dropped > 0
    assert report.rpc_timeouts > 0
    assert report.injected_crashes > 0
    assert report.probe_fallbacks > 0
    # Liveness under all of that: the masking read still mostly succeeds.
    assert report.fresh_fraction > 0.9

    report_sink(render_serve(report))
