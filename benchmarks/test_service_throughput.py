"""Benchmark: live service throughput and Byzantine safety under load.

Five workloads exercise the asyncio service layer (`repro.service`):

* **batched throughput** — 1,000 concurrent in-process clients reading a
  masking register on a loss-free transport through the coalescing fast
  path (`repro.service.dispatch`).  Acceptance floor: **12,000 ops/s**, i.e.
  ≥3× the PR 3 per-RPC baseline (~4.3k ops/s), with identical safety
  accounting.
* **per-RPC throughput** — the same workload on the original
  coroutine-per-RPC path, which stays the semantic oracle of the fast path.
  Floor: 2,000 ops/s (the PR 3 bar).
* **TCP throughput** — 200 concurrent clients over *real localhost
  sockets* (`repro.service.net`: length-prefixed frames, per-connection
  writer tasks, the op-level `TcpDispatcher`).  Acceptance floor:
  **2,000 ops/s** — the ISSUE 5 bar for the wire path.
* **sharded TCP throughput** — the same wire path spread over 4 shards ×
  16 zipf-skewed register keys, on the negotiated *binary* codec.  On a
  multi-core machine the workload runs the full multi-process harness
  (`repro.service.cluster`: one server process per shard + worker
  processes) against the **2× pre-codec floor of 4,572 ops/s**; on a
  single-core box process-per-shard serving is pure context-switch tax
  (there is no parallelism for it to buy), so the floored measurement
  uses the in-loop wire path and gates on the single-core floor of
  2,500 ops/s, while the cluster number is still recorded by the next
  workload.
* **cluster TCP throughput** — a fixed `ClusterDeployment` configuration
  (4 server processes, 1 load worker, binary codec) recorded on every
  machine so the process-orchestration overhead stays comparable across
  the trajectory; its floor gates only on multi-core machines.
* **anti-entropy churn** — the same churn-heavy TCP workload run twice,
  anti-entropy off and on: piggybacked read-repair + background gossip
  must cut the probe-fallback rounds by at least **5×** at equal workload
  (the PR 9 bar; reduction and zero-fabrication always gate, wall-clock
  never does).
* **fault-injection soak** — the `serve` experiment's configuration in
  *both* dispatch modes: colluding forgers at the system's declared
  tolerance (``b = 3`` below the read threshold ``k = 5``), 1% message
  drops, latency + jitter, and rolling live crash/recovery churn.  Safety
  expectation: *zero* ``fabricated`` outcomes — with ``k > b`` a fabricated
  accept would be a stack bug, not bad luck.

Timing floors are asserted only outside CI (the ``CI`` environment
variable): CI machines are too noisy to gate merges on wall-clock, so there
the timing goes to the ``BENCH_service.json`` artifact (warn-only compare
against the committed baseline) while the safety assertions stay blocking
everywhere.

A handful of ``stale`` reads is allowed on the healthy runs: with
``R_k(25, 10, b=3)`` two strategy-drawn quorums fail to intersect in ``k``
responsive storers with the system's (small but nonzero) probability ε, and
such a read legitimately returns an older write — that is the paper's ε
allowance, not a defect.
"""

from __future__ import annotations

import contextlib
import gc
import os

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.experiments.serve import render_serve, serve_load_spec
from repro.service.load import FaultInjectionSpec, ServiceLoadSpec, run_service_load
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

#: Acceptance floor for the batched-dispatch 1k-client in-process run:
#: three times the PR 3 per-RPC baseline.
MIN_BATCHED_OPS_PER_SECOND = 12_000.0

#: Acceptance floor for the per-RPC oracle path (the PR 3 bar).
MIN_PER_RPC_OPS_PER_SECOND = 2_000.0

#: Acceptance floor for the TCP path at 200 localhost clients (ISSUE 5).
MIN_TCP_OPS_PER_SECOND = 2_000.0

#: Acceptance floor for the sharded binary-codec deployment: twice the
#: pre-codec JSON baseline (2,286 ops/s, ISSUE 7).  Gated when the machine
#: can actually run the multi-process harness in parallel.
MIN_TCP_SHARDED_OPS_PER_SECOND = 4_572.0

#: The sharded floor on a single-core box, where the bench runs the
#: in-loop binary wire path instead (process-per-shard serving cannot buy
#: parallelism there, only context switches): 25% above the JSON-era TCP
#: floor, with margin for this class of machine's 2× wall-clock swings.
MIN_TCP_SHARDED_SINGLE_CORE_OPS_PER_SECOND = 2_500.0

#: Cores visible to the bench — recorded on every entry so trajectories
#: stay comparable across machines.
CPU_COUNT = os.cpu_count() or 1

#: Worker processes for the sharded bench: scale to the machine, cap at
#: the shard count; 0 (single core) keeps the load in-loop.
BENCH_PROCESSES = min(4, CPU_COUNT) if CPU_COUNT > 1 else 0

#: Stale reads tolerated across 3k healthy reads (the ε allowance; the
#: measured count at the pinned seed is ≤ 2, so 5 keeps flake margin while
#: still catching a real intersection regression).
MAX_STALE_READS = 5

#: Wall-clock floors gate only outside CI; safety always gates.
STRICT_TIMING = os.environ.get("CI", "").lower() not in ("true", "1")


def throughput_spec(dispatch: str) -> ServiceLoadSpec:
    return ServiceLoadSpec(
        scenario=ScenarioSpec(system=ProbabilisticMaskingSystem(25, 10, 3)),
        clients=1_000,
        reads_per_client=3,
        writes=50,
        rpc_timeout=1.0,
        dispatch=dispatch,
        seed=11,
    )


@contextlib.contextmanager
def quiescent_gc():
    """Keep the surrounding suite's heap out of the measurement.

    After ~900 earlier tests the interpreter carries a large long-lived
    heap (hypothesis caches, pytest state); the allocation-heavy load runs
    then trigger full collections that traverse all of it, deflating the
    wall-clock numbers by ~30% versus an isolated run.  Freezing moves the
    pre-existing objects to the permanent generation for the duration, so
    the floors measure the service stack, not the suite's history.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def run_throughput(dispatch: str, floor: float):
    """Run the 1k-client workload; retries absorb scheduler noise.

    Safety is checked on *every* attempt; the floor is asserted against the
    best attempt (standard best-of-N practice for wall-clock floors).
    """
    with quiescent_gc():
        report = run_service_load(throughput_spec(dispatch))
        check_healthy_run(report)
        for _ in range(2):
            if not (STRICT_TIMING and report.throughput < floor):
                break
            retry = run_service_load(throughput_spec(dispatch))
            check_healthy_run(retry)
            if retry.throughput > report.throughput:
                report = retry
    return report


def machine_fields(spec) -> dict:
    """Schema fields recorded on *every* service bench entry so the
    ``BENCH_service.json`` trajectory stays comparable across machines."""
    return {
        "codec": spec.codec,
        "processes": spec.processes,
        "cpu_count": CPU_COUNT,
    }


def throughput_payload(report, floor: float) -> dict:
    return {
        **machine_fields(report.spec),
        "dispatch": report.spec.dispatch,
        "clients": report.spec.clients,
        "ops_completed": report.operations,
        "ops_per_second": round(report.throughput, 1),
        "floor_ops_per_second": floor,
        "elapsed_seconds": round(report.elapsed, 4),
        "read_latency_seconds": {
            "p50": report.read_latency(0.50),
            "p90": report.read_latency(0.90),
            "p99": report.read_latency(0.99),
        },
        "rpc_calls": report.rpc_calls,
        "dispatch_flushes": report.dispatch_flushes,
        "fabricated_accepted_reads": report.violations,
    }


def check_healthy_run(report) -> None:
    """The safety assertions shared by both dispatch modes (always gate)."""
    assert report.reads_completed == 3_000
    assert report.writes_completed == 50
    assert report.violations == 0
    # Healthy deployment: nothing fabricated; non-fresh reads are either
    # racing the very first write (empty) or the ε-allowed stale event.
    assert report.outcomes["stale"] <= MAX_STALE_READS
    assert (
        report.outcomes["fresh"] + report.outcomes["empty"] + report.outcomes["stale"]
        == 3_000
    )


def test_batched_dispatch_throughput_1k_clients(report_sink, bench_record):
    report = run_throughput("batched", MIN_BATCHED_OPS_PER_SECOND)
    # Coalescing must actually coalesce: far fewer delivery events than RPCs.
    assert 0 < report.dispatch_flushes < report.rpc_calls / 10
    bench_record(
        "service_throughput_batched",
        throughput_payload(report, MIN_BATCHED_OPS_PER_SECOND),
    )
    if STRICT_TIMING:
        assert report.throughput >= MIN_BATCHED_OPS_PER_SECOND, (
            f"batched dispatch sustained only {report.throughput:,.0f} ops/s "
            f"with 1k concurrent clients (floor: {MIN_BATCHED_OPS_PER_SECOND:,.0f})"
        )
    report_sink(report.render())


def test_per_rpc_throughput_still_works(report_sink, bench_record):
    report = run_throughput("per-rpc", MIN_PER_RPC_OPS_PER_SECOND)
    assert report.dispatch_flushes == 0
    bench_record(
        "service_throughput_per_rpc",
        throughput_payload(report, MIN_PER_RPC_OPS_PER_SECOND),
    )
    if STRICT_TIMING:
        assert report.throughput >= MIN_PER_RPC_OPS_PER_SECOND, (
            f"per-RPC service sustained only {report.throughput:,.0f} ops/s "
            f"with 1k concurrent clients (floor: {MIN_PER_RPC_OPS_PER_SECOND:,.0f})"
        )
    report_sink(report.render())


def tcp_spec(
    shards: int = 1,
    keys: int = 1,
    key_skew: float = 0.0,
    codec: str = "json",
    processes: int = 0,
) -> ServiceLoadSpec:
    """200 localhost clients over real sockets; healthy deployment.

    ``rpc_timeout`` is generous because TCP deadlines are wall-clock: the
    floor measures throughput, and spurious deadline expiries under
    scheduler noise would deflate it artificially.
    """
    return ServiceLoadSpec(
        scenario=ScenarioSpec(system=ProbabilisticMaskingSystem(25, 10, 3)),
        clients=200,
        reads_per_client=5,
        writes=max(20, keys),
        rpc_timeout=2.0,
        transport="tcp",
        shards=shards,
        keys=keys,
        key_skew=key_skew,
        codec=codec,
        processes=processes,
        seed=17,
    )


def check_tcp_run(report, reads: int = 1_000) -> None:
    """Safety gates of the wire path (always blocking, like the others)."""
    assert report.transport == "tcp"
    assert report.reads_completed == reads
    assert report.violations == 0
    assert sum(report.outcomes.values()) == reads


def test_tcp_transport_throughput_200_clients(report_sink, bench_record):
    with quiescent_gc():
        report = run_service_load(tcp_spec())
        check_tcp_run(report)
        for _ in range(2):
            if not (STRICT_TIMING and report.throughput < MIN_TCP_OPS_PER_SECOND):
                break
            retry = run_service_load(tcp_spec())
            check_tcp_run(retry)
            if retry.throughput > report.throughput:
                report = retry
    bench_record(
        "service_throughput_tcp",
        {
            **machine_fields(report.spec),
            "transport": "tcp",
            "clients": report.spec.clients,
            "shards": report.spec.shards,
            "ops_completed": report.operations,
            "ops_per_second": round(report.throughput, 1),
            "floor_ops_per_second": MIN_TCP_OPS_PER_SECOND,
            "elapsed_seconds": round(report.elapsed, 4),
            "read_latency_seconds": {
                "p50": report.read_latency(0.50),
                "p90": report.read_latency(0.90),
                "p99": report.read_latency(0.99),
            },
            "rpc_calls": report.rpc_calls,
            "fabricated_accepted_reads": report.violations,
        },
    )
    if STRICT_TIMING:
        assert report.throughput >= MIN_TCP_OPS_PER_SECOND, (
            f"the TCP path sustained only {report.throughput:,.0f} ops/s with "
            f"200 localhost clients (floor: {MIN_TCP_OPS_PER_SECOND:,.0f})"
        )
    report_sink(report.render())


def sharded_payload(report, floor: float) -> dict:
    return {
        **machine_fields(report.spec),
        "transport": "tcp",
        "clients": report.spec.clients,
        "shards": report.spec.shards,
        "keys": report.spec.keys,
        "key_skew": report.spec.key_skew,
        "ops_per_second": round(report.throughput, 1),
        "floor_ops_per_second": floor,
        "per_shard_ops_per_second": [
            round(t, 1) for t in report.per_shard_throughput
        ],
        # Hottest/coldest shard ops ratio; compare_bench.py warns (never
        # gates) when the spread exceeds its threshold.
        "shard_imbalance": round(report.shard_imbalance, 2),
        "elapsed_seconds": round(report.elapsed, 4),
        "rpc_calls": report.rpc_calls,
        "fabricated_accepted_reads": report.violations,
    }


def check_sharded_run(report) -> None:
    check_tcp_run(report)
    # Routing really spread the workload: every shard served operations.
    assert len(report.shard_ops) == 4
    assert sum(report.shard_ops) == report.operations
    assert all(ops > 0 for ops in report.shard_ops)


def test_sharded_tcp_deployment_throughput(report_sink, bench_record):
    """Sharded deployment on the binary codec, scaled to the machine.

    With more than one core the run exercises the full multi-process
    harness (`--processes`) against the 2× pre-codec floor; on a
    single-core box the same workload runs in-loop (a process per shard
    would only add context switches) against the single-core floor.
    Best-of-3 is the file's standard noise treatment for wall-clock
    floors; safety asserts on every attempt.
    """
    spec = tcp_spec(
        shards=4, keys=16, key_skew=0.8, codec="binary", processes=BENCH_PROCESSES
    )
    floor = (
        MIN_TCP_SHARDED_OPS_PER_SECOND
        if BENCH_PROCESSES
        else MIN_TCP_SHARDED_SINGLE_CORE_OPS_PER_SECOND
    )
    with quiescent_gc():
        report = run_service_load(spec)
        check_sharded_run(report)
        for _ in range(2):
            if not (STRICT_TIMING and report.throughput < floor):
                break
            retry = run_service_load(spec)
            check_sharded_run(retry)
            if retry.throughput > report.throughput:
                report = retry
    bench_record("service_throughput_tcp_sharded", sharded_payload(report, floor))
    if STRICT_TIMING:
        assert report.throughput >= floor, (
            f"the sharded binary-codec deployment sustained only "
            f"{report.throughput:,.0f} ops/s "
            f"(floor: {floor:,.0f}, processes={spec.processes}, "
            f"cores={CPU_COUNT})"
        )
    report_sink(report.render())


def test_cluster_deployment_throughput(report_sink, bench_record):
    """The fixed multi-process configuration, recorded on every machine.

    4 server processes + 1 load-worker process + binary codec: the cost
    of real process boundaries on this box.  The 2× floor gates only
    where the processes can run in parallel; single-core machines record
    the number for the trajectory (safety still asserts).
    """
    spec = tcp_spec(shards=4, keys=16, key_skew=0.8, codec="binary", processes=1)
    with quiescent_gc():
        report = run_service_load(spec)
        check_sharded_run(report)
        if STRICT_TIMING and CPU_COUNT > 1 and (
            report.throughput < MIN_TCP_SHARDED_OPS_PER_SECOND
        ):
            retry = run_service_load(spec)
            check_sharded_run(retry)
            if retry.throughput > report.throughput:
                report = retry
    if STRICT_TIMING and CPU_COUNT > 1:
        assert report.throughput >= MIN_TCP_SHARDED_OPS_PER_SECOND, (
            f"the cluster deployment sustained only {report.throughput:,.0f} "
            f"ops/s across {CPU_COUNT} cores "
            f"(floor: {MIN_TCP_SHARDED_OPS_PER_SECOND:,.0f})"
        )
    bench_record(
        "service_throughput_tcp_cluster",
        {
            **sharded_payload(report, MIN_TCP_SHARDED_OPS_PER_SECOND),
            # The floor gates only where the processes run in parallel;
            # compare_bench.py downgrades ungated floors to an info line.
            "floor_gated": CPU_COUNT > 1,
        },
    )
    report_sink(report.render())


#: The anti-entropy churn bench must show at least this factor fewer
#: probe-fallback rounds than the same workload without anti-entropy
#: (the PR 9 acceptance bar; the measured reduction at the pinned seed is
#: ~10x on both transports).
MIN_PROBE_FALLBACK_REDUCTION = 5.0


def churn_spec(anti_entropy) -> ServiceLoadSpec:
    """The churn-regime TCP workload, with or without anti-entropy.

    Crash-prone replicas (10% each) plus rolling live crash/recovery churn
    make partial quorums routine, so without repair nearly every read pays
    the probe-fallback round.  With anti-entropy armed the same workload
    piggybacks repairs and gossips in the background, and the lazy
    fallback skips the probe whenever the partial reply set already
    settles the read.
    """
    return ServiceLoadSpec(
        scenario=ScenarioSpec(
            system=UniformEpsilonIntersectingSystem(25, 8),
            failure_model=FailureModel.independent_crashes(0.1),
        ),
        clients=12,
        reads_per_client=8,
        writes=10,
        deadline=0.05,
        write_interval=0.001,
        transport="tcp",
        fault_injection=FaultInjectionSpec(crash_count=3, interval=0.002),
        anti_entropy=anti_entropy,
        seed=7,
    )


def check_churn_run(report) -> None:
    """Safety bars of the churn bench: complete, fresh, zero fabrication."""
    assert report.reads_completed == 96
    assert report.violations == 0
    assert report.injected_crashes > 0
    assert report.fresh_fraction > 0.9


def churn_side_payload(report) -> dict:
    return {
        "ops_per_second": round(report.throughput, 1),
        "read_latency_p99_seconds": report.read_latency(0.99),
        "probe_fallback_ops": report.probe_fallbacks,
        "repairs_piggybacked": report.repairs_piggybacked,
        "gossip_rounds": report.gossip_rounds,
        "fresh_read_fraction": round(report.fresh_fraction, 4),
        "fabricated_accepted_reads": report.violations,
    }


def test_anti_entropy_kills_the_probe_fallback_round_under_churn(
    report_sink, bench_record
):
    """The tentpole's perf claim, measured: same churn workload, anti-entropy
    off vs on, over real TCP sockets.

    The reduction bar always gates (it is a semantic property of lazy
    fallback plus repair, not a wall-clock floor); one retry absorbs the
    rare scheduling pattern where churn lands between the reads.
    """
    anti_entropy = AntiEntropySpec(
        fanout=2, rounds=1, interval=0.001, repair_budget=4
    )
    with quiescent_gc():
        baseline = run_service_load(churn_spec(None))
        check_churn_run(baseline)
        repaired = run_service_load(churn_spec(anti_entropy))
        check_churn_run(repaired)
        if baseline.probe_fallbacks < MIN_PROBE_FALLBACK_REDUCTION * max(
            repaired.probe_fallbacks, 1
        ):
            baseline = run_service_load(churn_spec(None))
            check_churn_run(baseline)
            repaired = run_service_load(churn_spec(anti_entropy))
            check_churn_run(repaired)
    assert baseline.probe_fallbacks > 0
    assert repaired.repairs_piggybacked > 0
    assert repaired.gossip_rounds > 0
    reduction = baseline.probe_fallbacks / max(repaired.probe_fallbacks, 1)
    assert reduction >= MIN_PROBE_FALLBACK_REDUCTION, (
        f"anti-entropy only cut probe fallbacks "
        f"{baseline.probe_fallbacks} -> {repaired.probe_fallbacks} "
        f"({reduction:.1f}x; bar: {MIN_PROBE_FALLBACK_REDUCTION:.0f}x)"
    )
    bench_record(
        "service_throughput_tcp_churn",
        {
            **machine_fields(repaired.spec),
            "transport": "tcp",
            "clients": repaired.spec.clients,
            "probe_fallback_reduction": round(reduction, 1),
            "anti_entropy_off": churn_side_payload(baseline),
            "anti_entropy_on": churn_side_payload(repaired),
            # The top-level throughput-like fields compare_bench tracks.
            "ops_per_second": round(repaired.throughput, 1),
            "fresh_read_fraction": round(repaired.fresh_fraction, 4),
        },
    )
    report_sink(
        f"churn probe fallbacks: {baseline.probe_fallbacks} without "
        f"anti-entropy -> {repaired.probe_fallbacks} with "
        f"({reduction:.1f}x reduction; "
        f"{repaired.repairs_piggybacked} repairs piggybacked, "
        f"{repaired.gossip_rounds} gossip rounds)"
    )


def run_soak(dispatch: str):
    spec = serve_load_spec(
        clients=150, reads_per_client=4, writes=15, seed=23, dispatch=dispatch
    )
    # The scenario's threshold strictly exceeds the forger count, making the
    # zero-fabrication assertion structural rather than statistical.
    assert spec.scenario.system.read_threshold > spec.scenario.failure_model.count
    return spec, run_service_load(spec)


def check_soak(spec, report) -> None:
    assert report.reads_completed == 600
    assert report.violations == 0, (
        f"{report.violations} fabricated reads were accepted under "
        f"{spec.scenario.failure_model.describe()} with dispatch={spec.dispatch}"
    )
    # The soak must actually have exercised the failure paths it claims to:
    # dropped messages, timed-out RPCs, live churn and probe-based repair.
    assert report.rpc_dropped > 0
    assert report.rpc_timeouts > 0
    assert report.injected_crashes > 0
    assert report.probe_fallbacks > 0
    # Liveness under all of that: the masking read still mostly succeeds.
    assert report.fresh_fraction > 0.9


def test_fault_injection_soak_accepts_no_fabricated_reads_batched(
    report_sink, bench_record
):
    spec, report = run_soak("batched")
    check_soak(spec, report)
    assert report.dispatch_flushes > 0
    bench_record(
        "service_soak_batched",
        {
            **machine_fields(spec),
            "dispatch": "batched",
            "ops_per_second": round(report.throughput, 1),
            "fabricated_accepted_reads": report.violations,
            "fresh_fraction": round(report.fresh_fraction, 4),
            "rpc_dropped": report.rpc_dropped,
            "rpc_timeouts": report.rpc_timeouts,
            "probe_fallbacks": report.probe_fallbacks,
            "injected_crashes": report.injected_crashes,
        },
    )
    report_sink(render_serve(report))


def test_fault_injection_soak_accepts_no_fabricated_reads_per_rpc(report_sink):
    spec, report = run_soak("per-rpc")
    check_soak(spec, report)
    report_sink(render_serve(report))
