"""Warn-only comparison of a fresh BENCH_service.json against a baseline.

Usage::

    python benchmarks/compare_bench.py CURRENT [BASELINE]

``CURRENT`` is the freshly regenerated trajectory file (the benchmark suite
rewrites the top-level ``BENCH_service.json`` in place); ``BASELINE``
defaults to the committed copy read via ``git show HEAD:BENCH_service.json``.
For every bench present in both files the throughput-like fields
(``ops_per_second``, ``batch_trials_per_second``, ``speedup``) are compared
and a regression beyond :data:`REGRESSION_TOLERANCE` prints a GitHub-
Actions ``::warning::`` line.

Besides the baseline comparison, every *current* entry that records its
own acceptance floor (``floor_ops_per_second``) is checked against it and
a violation prints its own ``::warning::`` line — a floor slipping below
its recorded bar must be loud in the artifact, never silently committed
(ISSUE 7: ``service_throughput_tcp`` once recorded 1,466.6 ops/s against a
2,000 floor without a trace in the logs).  Sharded entries recording a
``shard_imbalance`` ratio draw a warning above
:data:`SHARD_IMBALANCE_THRESHOLD` — informational only, never a gate.

The exit code is always 0: performance tracking is deliberately
*non-blocking* (CI machines are too noisy to gate merges on wall-clock).
Safety gates live in the test assertions, not here; outside CI the floors
are also asserted by the benchmarks themselves.
"""

from __future__ import annotations

import json
import subprocess
import sys
from typing import Optional

#: Relative throughput drop that triggers a warning (satellite spec: 20%).
REGRESSION_TOLERANCE = 0.20

#: Higher-is-better numeric fields compared per bench entry.
#: ``probe_fallback_reduction`` and ``fresh_read_fraction`` come from the
#: anti-entropy churn bench: the factor by which piggybacked repair +
#: gossip shrink the probe-fallback round, and the fraction of reads that
#: returned the latest write.
THROUGHPUT_FIELDS = (
    "ops_per_second",
    "batch_trials_per_second",
    "speedup",
    "probe_fallback_reduction",
    "fresh_read_fraction",
)

#: Hottest/coldest shard ops ratio beyond which a sharded entry draws a
#: warning.  Purely informational — imbalance tracks the key distribution
#: and machine scheduling, not a code regression — so it *never* gates
#: (the exit code stays 0 regardless).  The committed cluster baseline
#: sits around 2.7×, so 4× flags only a real routing skew.
SHARD_IMBALANCE_THRESHOLD = 4.0


def load_baseline(path: Optional[str]) -> dict:
    """The baseline document: an explicit file, or the committed copy."""
    if path is not None:
        with open(path) as source:
            return json.load(source)
    shown = subprocess.run(
        ["git", "show", "HEAD:BENCH_service.json"],
        capture_output=True,
        text=True,
        check=False,
    )
    if shown.returncode != 0:
        return {}
    return json.loads(shown.stdout)


def compare(current: dict, baseline: dict) -> list:
    """Return ``(bench, field, old, new, drop)`` tuples beyond tolerance.

    Entries whose ``instrumentation`` modes differ (``"off"`` when absent)
    are never compared: a traced run measures an instrumented code path,
    and its overhead against an untraced baseline is expected, not a
    regression.
    """
    regressions = []
    current_benches = current.get("benches", {})
    for name, old_payload in baseline.get("benches", {}).items():
        new_payload = current_benches.get(name)
        if not isinstance(new_payload, dict) or not isinstance(old_payload, dict):
            continue
        if old_payload.get("instrumentation", "off") != new_payload.get(
            "instrumentation", "off"
        ):
            print(
                f"{name}: skipped (instrumentation "
                f"{old_payload.get('instrumentation', 'off')!r} baseline vs "
                f"{new_payload.get('instrumentation', 'off')!r} current)"
            )
            continue
        for field in THROUGHPUT_FIELDS:
            old = old_payload.get(field)
            new = new_payload.get(field)
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
                continue
            if old <= 0:
                continue
            drop = (old - new) / old
            if drop > REGRESSION_TOLERANCE:
                regressions.append((name, field, old, new, drop))
    return regressions


def floor_violations(current: dict) -> list:
    """Return ``(bench, measured, floor, gated)`` for entries below their bar.

    ``gated`` mirrors the entry's own ``floor_gated`` field (default true):
    a bench may record an aspirational floor its machine cannot gate on —
    e.g. the cluster bench's multi-core floor measured on a single core —
    and those print as info lines, not warnings.
    """
    violations = []
    for name, payload in current.get("benches", {}).items():
        if not isinstance(payload, dict):
            continue
        measured = payload.get("ops_per_second")
        floor = payload.get("floor_ops_per_second")
        if not isinstance(measured, (int, float)) or not isinstance(floor, (int, float)):
            continue
        if measured < floor:
            violations.append((name, measured, floor, payload.get("floor_gated", True)))
    return violations


def imbalance_warnings(current: dict) -> list:
    """Return ``(bench, imbalance)`` for entries spread beyond the threshold.

    Entries opt in by recording ``shard_imbalance`` (hottest/coldest shard
    ops ratio; non-finite values — a cold shard served nothing — always
    warn).  Like everything else here this never gates.
    """
    flagged = []
    for name, payload in current.get("benches", {}).items():
        if not isinstance(payload, dict):
            continue
        imbalance = payload.get("shard_imbalance")
        if not isinstance(imbalance, (int, float)):
            continue
        if imbalance > SHARD_IMBALANCE_THRESHOLD:
            flagged.append((name, float(imbalance)))
    return flagged


def main(argv: list) -> int:
    if not argv:
        print("usage: compare_bench.py CURRENT [BASELINE]", file=sys.stderr)
        return 0
    try:
        with open(argv[0]) as source:
            current = json.load(source)
        baseline = load_baseline(argv[1] if len(argv) > 1 else None)
    except (OSError, ValueError) as error:
        print(f"::warning::benchmark compare skipped: {error}")
        return 0
    for name, measured, floor, gated in floor_violations(current):
        if gated:
            print(
                f"::warning::floor violation in {name}: measured "
                f"{measured:,.1f} ops/s against its recorded floor of "
                f"{floor:,.1f} — do not commit this baseline silently"
            )
        else:
            print(
                f"{name}: {measured:,.1f} ops/s below its {floor:,.1f} floor, "
                f"which this machine does not gate on (floor_gated=false)"
            )
    for name, imbalance in imbalance_warnings(current):
        print(
            f"::warning::shard imbalance in {name}: hottest shard served "
            f"{imbalance:.1f}x the coldest (threshold: "
            f"{SHARD_IMBALANCE_THRESHOLD:.1f}x) — check the key distribution"
        )
    if not baseline:
        print("no committed baseline found; nothing to compare")
        return 0
    regressions = compare(current, baseline)
    for name, field, old, new, drop in regressions:
        print(
            f"::warning::perf regression in {name}.{field}: "
            f"{old:,.1f} -> {new:,.1f} ({drop:.0%} worse than the committed baseline)"
        )
    if not regressions:
        print(
            f"benchmark trajectory within {REGRESSION_TOLERANCE:.0%} of the "
            f"committed baseline ({len(current.get('benches', {}))} benches)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
