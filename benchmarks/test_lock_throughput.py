"""Benchmark: lock-service throughput and coordination safety under faults.

Three workloads exercise the quorum-backed lock service
(:mod:`repro.apps.mutex`):

* **contended throughput** — 8 in-process contenders cycling over 2 shared
  lock names; grants/s, wait-time percentiles and the Jain fairness index
  go to ``BENCH_service.json``.  Lock throughput is tracked **warn-only**
  (the ``compare_bench.py`` trajectory), never asserted: wall-clock floors
  on a contended lock would gate merges on scheduler noise.
* **coordination soak, in-process** — the serve experiment's Byzantine
  scenario (colluding forgers below the masking threshold) plus rolling
  live crash churn.  Safety expectations, both *blocking*: **zero double
  grants** (two clients simultaneously believing they hold one lock) and
  **zero fabricated records** (a forged value surviving the register
  frontend into a credible lock read).  With verify-after-write a double
  grant needs two independent missed intersections (~ε²), and with
  ``k > b`` a fabricated credible record would be a stack bug — so both
  counters are pinned at zero outright, not bounded statistically.
* **coordination soak, TCP** — the same contract over real localhost
  sockets with wall-clock deadlines.

The two soaks are the blocking ``coordination-safety`` CI job (run with
``-k soak``); the throughput bench feeds the non-blocking perf artifact.
"""

from __future__ import annotations

import os

from repro.apps.mutex import LockLoadSpec, run_lock_load
from repro.experiments.serve import serve_scenario
from repro.service.load import FaultInjectionSpec


def machine_fields(spec) -> dict:
    """Schema fields every service bench entry records (codec, processes,
    cpu_count) so ``BENCH_service.json`` stays comparable across machines.
    Lock loads always run the in-loop JSON path; the ``getattr`` spelling
    keeps the schema stable if :class:`LockLoadSpec` ever grows the knobs."""
    return {
        "codec": getattr(spec, "codec", "json"),
        "processes": getattr(spec, "processes", 0),
        "cpu_count": os.cpu_count() or 1,
    }


def contended_spec(**overrides) -> LockLoadSpec:
    defaults = dict(
        scenario=serve_scenario(n=36, quorum_size=18, b=2, byzantine=True),
        clients=8,
        acquisitions_per_client=3,
        locks=2,
        deadline=0.05,
        seed=29,
    )
    defaults.update(overrides)
    return LockLoadSpec(**defaults)


def check_coordination_safety(report) -> None:
    """The blocking assertions shared by every lock workload."""
    assert report.double_grants == 0, (
        f"{report.double_grants} double grants: two clients simultaneously "
        f"held one lock under {report.spec.describe()}"
    )
    assert report.fabricated_records == 0, (
        f"{report.fabricated_records} fabricated records were accepted as "
        f"credible lock reads under {report.spec.describe()}"
    )
    # Liveness: the run must actually have granted work to measure.
    assert report.grants > 0
    assert report.releases == report.grants


def test_lock_throughput_contended(report_sink, bench_record):
    report = run_lock_load(contended_spec())
    check_coordination_safety(report)
    assert report.grants == 24
    assert report.starved_clients == 0
    bench_record(
        "lock_throughput_inproc",
        {
            **machine_fields(report.spec),
            "clients": report.spec.clients,
            "locks": report.spec.locks,
            "grants": report.grants,
            "ops_per_second": round(report.throughput, 1),
            "elapsed_seconds": round(report.elapsed, 4),
            "wait_time_seconds": {
                "p50": report.wait_time(0.50),
                "p90": report.wait_time(0.90),
                "p99": report.wait_time(0.99),
            },
            "jain_fairness": round(report.fairness, 4),
            "refused_requests": report.refused_requests,
            "verify_back_offs": report.back_offs,
            "double_grants": report.double_grants,
            "fabricated_records": report.fabricated_records,
        },
    )
    report_sink(report.render())


def soak_spec(transport: str) -> LockLoadSpec:
    # TCP deadlines are wall-clock, so a crashed replica stalls its quorum
    # RPC for the full deadline; the churn interval is correspondingly
    # slower there to keep the soak's wall time in check without thinning
    # the crash coverage (every run must still inject real churn).
    return contended_spec(
        clients=6,
        acquisitions_per_client=2,
        locks=1,
        transport=transport,
        deadline=0.05 if transport == "inproc" else 0.25,
        fault_injection=FaultInjectionSpec(
            crash_count=2, interval=0.002 if transport == "inproc" else 0.02
        ),
        seed=31,
    )


def run_soak(transport: str):
    spec = soak_spec(transport)
    # The masking threshold strictly exceeds the forger count, making the
    # zero-fabrication assertion structural rather than statistical.
    assert spec.scenario.system.read_threshold > spec.scenario.failure_model.count
    return run_lock_load(spec)


def test_coordination_soak_inproc(report_sink, bench_record):
    report = run_soak("inproc")
    check_coordination_safety(report)
    assert report.injected_crashes > 0
    assert report.starved_clients == 0
    bench_record(
        "lock_soak_inproc",
        {
            **machine_fields(report.spec),
            "transport": "inproc",
            "grants_per_second": round(report.throughput, 1),
            "double_grants": report.double_grants,
            "fabricated_records": report.fabricated_records,
            "verify_back_offs": report.back_offs,
            "injected_crashes": report.injected_crashes,
            "jain_fairness": round(report.fairness, 4),
        },
    )
    report_sink(report.render())


def test_coordination_soak_tcp(report_sink):
    report = run_soak("tcp")
    check_coordination_safety(report)
    assert report.injected_crashes > 0
    report_sink(report.render())
