"""Benchmark: empirical check of Theorems 3.2, 4.2 and 5.2.

Workload: for each of the three protocols, run several hundred independent
write/read trials through the full protocol + simulation stack (registers
over a simulated cluster) under the failure model the corresponding theorem
assumes, and measure the fraction of reads that return the last written
value.

Shape expectations: the measured miss rate stays below the analytical ε of
the underlying quorum system (plus Monte-Carlo noise), and fabricated values
are essentially never observed in the dissemination and masking settings.
"""

from __future__ import annotations

import random

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.protocol.dissemination_variable import DisseminationRegister
from repro.protocol.masking_variable import MaskingRegister
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.failures import FailurePlan
from repro.simulation.monte_carlo import estimate_read_consistency

N = 64
TRIALS = 250


def run_all_protocols():
    results = {}

    # Theorem 3.2: benign environment, epsilon-intersecting system.
    plain = UniformEpsilonIntersectingSystem.for_epsilon(N, 1e-2)
    results["plain"] = (
        plain.epsilon,
        estimate_read_consistency(
            lambda cluster, rng: ProbabilisticRegister(plain, cluster, rng=rng),
            n=N,
            plan_factory=lambda rng: FailurePlan.independent_crashes(N, 0.05, rng=rng),
            trials=TRIALS,
            seed=11,
        ),
    )

    # Theorem 4.2: b Byzantine servers, self-verifying data.
    b = 8
    dissemination = ProbabilisticDisseminationSystem.for_epsilon(N, b, 1e-2)
    scheme = SignatureScheme(b"benchmark-key")
    results["dissemination"] = (
        dissemination.epsilon,
        estimate_read_consistency(
            lambda cluster, rng: DisseminationRegister(
                dissemination, cluster, signatures=scheme, rng=rng
            ),
            n=N,
            plan_factory=lambda rng: FailurePlan.random_byzantine(N, b, rng=rng),
            trials=TRIALS,
            seed=13,
        ),
    )

    # Theorem 5.2: b colluding Byzantine servers, arbitrary data.
    masking = ProbabilisticMaskingSystem.for_epsilon(N, b, 1e-2)
    results["masking"] = (
        masking.epsilon,
        estimate_read_consistency(
            lambda cluster, rng: MaskingRegister(masking, cluster, rng=rng),
            n=N,
            plan_factory=lambda rng: FailurePlan.colluding_forgers(
                N, b, "FORGED", Timestamp.forged_maximum(), rng=rng
            ),
            trials=TRIALS,
            seed=17,
        ),
    )
    return results


def test_protocol_consistency(benchmark, report_sink):
    results = benchmark.pedantic(run_all_protocols, rounds=1, iterations=1)

    lines = ["Protocol consistency (measured vs analytical 1 - epsilon):"]
    for name, (epsilon, report) in results.items():
        lines.append(
            f"  {name:14s} analytical >= {1 - epsilon:.4f}   "
            f"measured fresh = {report.fresh_fraction:.4f}   "
            f"fabricated = {report.fabricated_fraction:.4f}"
        )
        # Allow Monte-Carlo noise plus the small crash-failure handicap of the
        # benign run (crashes are not part of Theorem 3.2's epsilon).
        assert report.fresh_fraction >= 1 - epsilon - 0.06
        assert report.fabricated_fraction <= 0.01
    report_sink("\n".join(lines))
