"""Benchmark: empirical check of Theorems 3.2, 4.2 and 5.2.

Workload: the three declarative theorem scenarios of
:func:`repro.experiments.consistency.theorem_scenarios` — benign
ε-intersecting under independent crashes, signed dissemination under silent
Byzantine servers, threshold masking under colluding forgers — each run as
hundreds (sequential oracle) / tens of thousands (batch engine) of
independent write/read trials, measuring the fraction of reads that return
the last written value.

Shape expectations: on both engines the measured miss rate stays below the
analytical ε of the underlying quorum system (plus Monte-Carlo noise),
fabricated values are essentially never observed in the dissemination and
masking settings, and the vectorised batch engine runs the masking scenario
at least 20× faster than the sequential protocol stack at equal trial
counts.
"""

from __future__ import annotations

import math
import time

from repro.experiments.consistency import (
    run_consistency_scenarios,
    theorem_scenarios,
)
from repro.simulation.monte_carlo import estimate_read_consistency

N = 64
B = 8
SEQUENTIAL_TRIALS = 250
BATCH_TRIALS = 20_000


def run_all_protocols(engine: str, trials: int):
    scenarios = theorem_scenarios(n=N, b=B)
    reports = run_consistency_scenarios(scenarios, trials=trials, seed=11, engine=engine)
    return {name: (scenarios[name].system.epsilon, reports[name]) for name in scenarios}


def _check_results(results, lines, engine):
    lines.append(f"Protocol consistency on engine={engine!r}:")
    for name, (epsilon, report) in sorted(results.items()):
        lines.append(
            f"  {name:14s} analytical >= {1 - epsilon:.4f}   "
            f"measured fresh = {report.fresh_fraction:.4f}   "
            f"fabricated = {report.fabricated_fraction:.4f}"
        )
        # Allow Monte-Carlo noise plus the small crash-failure handicap of the
        # benign run (crashes are not part of Theorem 3.2's epsilon).
        assert report.fresh_fraction >= 1 - epsilon - 0.06
        # Fabrication is bounded by epsilon; allow three binomial standard
        # deviations of noise on top (matters at the sequential trial count).
        noise = 3.0 * math.sqrt(epsilon * (1 - epsilon) / report.trials)
        assert report.fabricated_fraction <= epsilon + noise


def test_protocol_consistency(benchmark, report_sink):
    results = benchmark.pedantic(
        run_all_protocols, args=("sequential", SEQUENTIAL_TRIALS), rounds=1, iterations=1
    )
    lines = []
    _check_results(results, lines, "sequential")
    # The same three scenarios on the vectorised engine, at 80x the trials.
    _check_results(run_all_protocols("batch", BATCH_TRIALS), lines, "batch")
    report_sink("\n".join(lines))


def test_masking_batch_speedup(report_sink, bench_record):
    """The batch engine beats the sequential oracle >= 20x on the masking scenario."""
    spec = theorem_scenarios(n=N, b=B)["masking"]
    trials = 400

    start = time.perf_counter()
    sequential = estimate_read_consistency(spec, trials=trials, seed=3)
    sequential_s = time.perf_counter() - start

    # Best of three keeps the comparison robust against scheduler noise.
    batch_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = estimate_read_consistency(spec, trials=trials, seed=3, engine="batch")
        batch_s = min(batch_s, time.perf_counter() - start)

    speedup = sequential_s / batch_s
    report_sink(
        f"Masking consistency at {trials} trials: sequential {sequential_s:.3f}s, "
        f"batch {batch_s * 1000:.1f}ms ({speedup:.0f}x)"
    )
    bench_record(
        "consistency_masking_engines",
        {
            "trials": trials,
            "sequential_seconds": round(sequential_s, 4),
            "batch_seconds": round(batch_s, 4),
            "batch_trials_per_second": round(trials / batch_s, 1),
            "speedup": round(speedup, 1),
        },
    )
    assert batch.trials == sequential.trials == trials
    assert speedup >= 20.0
