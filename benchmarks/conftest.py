"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (or an ablation
called out in DESIGN.md) and prints the regenerated rows/series so they can
be compared against the published numbers (see EXPERIMENTS.md).  Run with::

    pytest benchmarks/ --benchmark-only -s

Performance-trajectory benchmarks additionally record their numbers into the
top-level ``BENCH_service.json`` through the :func:`bench_record` fixture.
The committed copy of that file is the perf baseline of record; CI
regenerates it, uploads it as an artifact and *warns* (never fails) when a
freshly measured entry regresses more than 20% against the committed one —
see ``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

#: The perf-trajectory file at the repository top level.
BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"


def pytest_configure(config):
    # Benchmarks print their regenerated tables; keep the output readable by
    # grouping benchmark results by name.
    config.option.benchmark_group_by = getattr(
        config.option, "benchmark_group_by", "group"
    )


@pytest.fixture
def report_sink(capsys):
    """Print a rendered report even when output capturing is enabled."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return emit


@pytest.fixture
def bench_record():
    """Merge one named measurement into the top-level ``BENCH_service.json``.

    ``bench_record(name, payload)`` reads the current file (tolerating a
    missing or corrupt one), replaces the ``name`` entry under ``"benches"``
    and rewrites the file with stable key order, so repeated runs produce
    minimal diffs against the committed baseline.

    Every entry is stamped with its ``instrumentation`` mode (``"off"``
    unless the payload says otherwise): a benchmark run with quorum tracing
    enabled measures a different code path, and ``compare_bench.py``
    refuses to compare entries across instrumentation modes rather than
    report the tracing overhead as a perf regression.
    """

    def record(name: str, payload: dict) -> None:
        payload = dict(payload)
        payload.setdefault("instrumentation", "off")
        document = {"schema": 1, "benches": {}}
        if BENCH_FILE.exists():
            try:
                loaded = json.loads(BENCH_FILE.read_text())
            except (OSError, ValueError):
                loaded = {}
            if isinstance(loaded.get("benches"), dict):
                document["benches"] = loaded["benches"]
        document["benches"][name] = payload
        document["benches"] = dict(sorted(document["benches"].items()))
        BENCH_FILE.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    return record
