"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (or an ablation
called out in DESIGN.md) and prints the regenerated rows/series so they can
be compared against the published numbers (see EXPERIMENTS.md).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print their regenerated tables; keep the output readable by
    # grouping benchmark results by name.
    config.option.benchmark_group_by = getattr(
        config.option, "benchmark_group_by", "group"
    )


@pytest.fixture
def report_sink(capsys):
    """Print a rendered report even when output capturing is enabled."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return emit
