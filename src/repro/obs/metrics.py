"""Counter / gauge / histogram primitives and a mergeable metrics registry.

Deliberately minimal and dependency-free: the service layers need exactly
three instrument kinds, JSON snapshots, and a merge operation that works
across shards, load-worker processes and shard-server processes (snapshots
cross process boundaries as plain dicts over the cluster's existing
readiness/result pipes — no collector daemon, no sockets of its own).

* :class:`Counter` — monotonically increasing integer.
* :class:`Gauge` — a point-in-time value; merges by **summing** (the
  registry's gauges are per-process resource figures — node counts, open
  connections — whose cluster-wide reading is the sum).
* :class:`Histogram` — fixed upper-bound buckets (cumulative on export, like
  the common exposition formats), plus sum and count.  Two histograms merge
  only when their bucket layouts agree, which they always do here because
  every site uses :data:`LATENCY_BUCKETS` unless it says otherwise.

The registry itself is label-carrying: ``MetricsRegistry(labels={"shard": 0,
"process": "worker-1"})`` stamps every snapshot, and
:func:`merge_snapshots` folds any number of snapshots into a cluster-wide
aggregate (labels are kept as the list of merged identities).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "merge_snapshots",
]

#: Default latency buckets (seconds): sub-millisecond RPCs through the
#: multi-second cluster deadlines, roughly log-spaced.  The final implicit
#: +inf bucket is the exported ``count``.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative — counters only go up)."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        self.value += amount

    def to_value(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_value(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram with sum and count.

    ``buckets`` are the finite upper bounds; an implicit +inf bucket catches
    everything beyond the last bound.  Export is cumulative per bucket.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        self.name = name
        self.buckets = bounds
        # One slot per finite bound plus the +inf overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples (end-of-run latency lists)."""
        for value in values:
            self.observe(value)

    def to_value(self) -> Dict[str, Any]:
        """Cumulative-bucket JSON form."""
        cumulative: List[int] = []
        running = 0
        for slot in self.counts[:-1]:
            running += slot
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "cumulative": cumulative,
            "sum": self.sum,
            "count": self.count,
        }

    def quantile(self, fraction: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket.

        Samples beyond the last finite bound report that bound (the
        histogram cannot resolve the overflow bucket's interior).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"quantile fractions lie in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = 0
        for bound, slot in zip(self.buckets, self.counts):
            running += slot
            if running >= target:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """A named collection of instruments with one JSON snapshot form."""

    def __init__(self, labels: Optional[Dict[str, Any]] = None) -> None:
        self.labels: Dict[str, Any] = dict(labels or {})
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def to_dict(self) -> Dict[str, Any]:
        """A picklable, JSON-ready snapshot of every instrument."""
        return {
            "labels": dict(self.labels),
            "counters": {
                name: c.to_value() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.to_value() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.to_value() for name, h in sorted(self._histograms.items())
            },
        }


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold registry snapshots into one aggregate.

    Counters and gauges sum; histograms sum element-wise (their bucket
    layouts must agree); the merged ``labels`` key lists every contributing
    identity.  An empty input merges to an empty snapshot.
    """
    merged: Dict[str, Any] = {
        "labels": [],
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for snapshot in snapshots:
        merged["labels"].append(snapshot.get("labels", {}))
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0.0) + value
        for name, histogram in snapshot.get("histograms", {}).items():
            existing = merged["histograms"].get(name)
            if existing is None:
                merged["histograms"][name] = {
                    "buckets": list(histogram["buckets"]),
                    "cumulative": list(histogram["cumulative"]),
                    "sum": histogram["sum"],
                    "count": histogram["count"],
                }
                continue
            if existing["buckets"] != list(histogram["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ across "
                    f"snapshots; refusing a meaningless merge"
                )
            existing["cumulative"] = [
                a + b
                for a, b in zip(existing["cumulative"], histogram["cumulative"])
            ]
            existing["sum"] += histogram["sum"]
            existing["count"] += histogram["count"]
    return merged
