"""Per-operation quorum traces and the sampling collector that gathers them.

A :class:`QuorumTrace` is the record of **one quorum operation** — a register
read or write (or the lock protocol's read/write rounds riding on them) —
from the moment the client samples a quorum to the moment the operation's
result is classified:

* which servers the quorum contained (and how it changed across probe-based
  repair retries);
* one :class:`RpcSpan` per RPC actually attempted, with its wall-clock
  window and **disposition**: ``ok``, ``dropped`` (the transport lost it),
  ``timeout`` (the deadline expired), ``silent`` (the server answered
  nothing — crashed or silent-Byzantine), ``unsent`` (the op resolved or the
  connection failed before the request left the client), ``repair`` (a
  fire-and-forget read-repair payload piggybacked on a delivery the
  operation already paid for);
* the selection-rule inputs and verdict (rule name, vote threshold, replies
  considered, chosen timestamp) filled in by the register frontend;
* the final outcome classification (``fresh`` / ``stale`` / ``empty`` /
  ``fabricated``) stamped by the load harness after the shared classifier
  runs.

Traces cross the process boundary by **id**: the wire codecs carry the
64-bit ``trace_id`` in a negotiated envelope extension
(:mod:`repro.service.wire`), so a server process can attribute the requests
it handles to the client-side trace without shipping the record itself.

The :class:`Tracer` is the sampling collector.  Its RNG stream is private
(derived from the seed it is given, never shared with workload or transport
RNGs), which is what makes the zero-divergence guarantee possible: enabling
tracing must not perturb a single draw of the seeded workload.  At rates
0.0 and 1.0 no draw happens at all.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["DISPOSITIONS", "RpcSpan", "QuorumTrace", "Tracer"]

#: Every way an RPC attempt can end, as recorded in a span.  ``repair`` marks
#: a fire-and-forget read-repair payload piggybacked onto a delivery the
#: operation already paid for (anti-entropy; no reply is awaited).
DISPOSITIONS = ("ok", "dropped", "timeout", "silent", "unsent", "error", "repair")

#: XOR'd into the tracer's seed so its private stream never collides with a
#: harness RNG seeded from the same root.
_TRACER_SEED_SALT = 0x7ACE5EED


class RpcSpan:
    """One RPC attempt inside a quorum operation."""

    __slots__ = ("server_id", "method", "started_at", "ended_at", "disposition")

    def __init__(
        self,
        server_id: int,
        method: str,
        started_at: float,
        ended_at: float,
        disposition: str,
    ) -> None:
        self.server_id = server_id
        self.method = method
        self.started_at = started_at
        self.ended_at = ended_at
        self.disposition = disposition

    @property
    def elapsed(self) -> float:
        """The span's wall-clock (monotonic) duration in seconds."""
        return self.ended_at - self.started_at

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by ``--trace-out`` JSON-lines dumps)."""
        return {
            "server": self.server_id,
            "method": self.method,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "elapsed": self.elapsed,
            "disposition": self.disposition,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"RpcSpan(server={self.server_id}, method={self.method!r}, "
            f"disposition={self.disposition!r}, elapsed={self.elapsed:.6f})"
        )


class QuorumTrace:
    """The full record of one traced quorum operation."""

    __slots__ = (
        "trace_id",
        "op",
        "client_id",
        "variable",
        "shard",
        "quorum",
        "spans",
        "selection",
        "classification",
        "context",
        "status",
        "retried",
        "probes_used",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        trace_id: int,
        op: str,
        client_id: Optional[int] = None,
        variable: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.op = op
        self.client_id = client_id
        self.variable = variable
        self.shard = shard
        self.quorum: Tuple[int, ...] = ()
        self.spans: List[RpcSpan] = []
        #: Selection-rule inputs and verdict, stamped by the register
        #: frontend: ``{"rule", "threshold", "replies", "timestamp", ...}``.
        self.selection: Optional[Dict[str, Any]] = None
        #: The harness's final outcome label (``fresh``/``stale``/...).
        self.classification: Optional[str] = None
        #: Free-form caller annotation (the lock protocol tags its rounds
        #: with ``{"lock": ..., "step": ...}``).
        self.context: Optional[Dict[str, Any]] = None
        self.status = "pending"
        self.retried = 0
        self.probes_used = 0
        self.started_at = time.monotonic()
        self.finished_at: Optional[float] = None

    def record(
        self,
        server_id: int,
        method: str,
        started_at: float,
        ended_at: float,
        disposition: str,
    ) -> None:
        """Append one RPC span (called from the dispatch/transport layers)."""
        self.spans.append(
            RpcSpan(server_id, method, started_at, ended_at, disposition)
        )

    def finish(self, status: str = "ok") -> None:
        """Close the trace with a terminal status (``ok``/``unavailable``)."""
        self.status = status
        self.finished_at = time.monotonic()

    @property
    def elapsed(self) -> Optional[float]:
        """End-to-end duration, or ``None`` while the op is still open."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def span_dispositions(self) -> Dict[str, int]:
        """Span count per disposition (``{"ok": 17, "dropped": 1}``)."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.disposition] = counts.get(span.disposition, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: one line of a ``--trace-out`` dump."""
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "client_id": self.client_id,
            "variable": self.variable,
            "shard": self.shard,
            "quorum": list(self.quorum),
            "spans": [span.to_dict() for span in self.spans],
            "selection": self.selection,
            "classification": self.classification,
            "context": self.context,
            "status": self.status,
            "retried": self.retried,
            "probes_used": self.probes_used,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed": self.elapsed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"QuorumTrace(id={self.trace_id}, op={self.op!r}, "
            f"variable={self.variable!r}, spans={len(self.spans)}, "
            f"status={self.status!r}, classification={self.classification!r})"
        )


class Tracer:
    """Sampling collector of :class:`QuorumTrace` records.

    Parameters
    ----------
    sample_rate:
        Fraction of operations traced, in ``[0, 1]``.  0 disables tracing
        (``begin`` always returns ``None``); 1 traces everything.  Both
        endpoints skip the sampling draw entirely.
    seed:
        Seed of the tracer's **private** sampling RNG.  It is salted so the
        stream differs from harness RNGs seeded with the same root, and it
        is never shared: turning sampling on cannot perturb the workload's
        own randomness.
    id_base:
        Added to every allocated trace id.  Cluster load workers pass
        disjoint bases so ids stay unique across processes.
    max_traces:
        Retention cap; beyond it traces are still *recorded by callers*
        (spans, status) but not kept, and ``overflowed`` counts them.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        id_base: int = 0,
        max_traces: int = 1_000_000,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"the trace sample rate must lie in [0, 1], got {sample_rate}"
            )
        if max_traces < 0:
            raise ValueError(f"max_traces must be non-negative, got {max_traces}")
        self.sample_rate = float(sample_rate)
        self._rng = random.Random(int(seed) ^ _TRACER_SEED_SALT)
        self._next_id = 0
        self.id_base = int(id_base)
        self.max_traces = int(max_traces)
        self.traces: List[QuorumTrace] = []
        self.started = 0
        self.sampled_out = 0
        self.overflowed = 0

    def begin(
        self,
        op: str,
        client_id: Optional[int] = None,
        variable: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Optional[QuorumTrace]:
        """Start a trace for one operation, or ``None`` when sampled out."""
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0 and self._rng.random() >= rate:
            self.sampled_out += 1
            return None
        trace_id = self.id_base + self._next_id
        self._next_id += 1
        self.started += 1
        return QuorumTrace(
            trace_id, op, client_id=client_id, variable=variable, shard=shard
        )

    def finish(self, trace: QuorumTrace, status: str = "ok") -> None:
        """Close ``trace`` and retain it (subject to the retention cap)."""
        trace.finish(status)
        if len(self.traces) < self.max_traces:
            self.traces.append(trace)
        else:
            self.overflowed += 1

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Every retained trace in JSON-ready form."""
        return [trace.to_dict() for trace in self.traces]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Tracer(rate={self.sample_rate}, collected={len(self.traces)}, "
            f"sampled_out={self.sampled_out})"
        )
