"""Online ε-monitor: observed error rate vs the scenario's predicted ε.

The paper's guarantee is probabilistic: an ε-intersecting quorum system
admits, with probability at most ε per access, a read quorum that misses
the latest write — observable as a **stale** read, or (past a masking
threshold failure) a **fabricated** accepted value.  The Monte-Carlo
engines and the conformance grid check this offline; the
:class:`EpsilonMonitor` is the *runtime* analogue: it watches the stream of
classified read outcomes while traffic flows, maintains a sliding-window
error-rate estimate, and emits a structured alert record the moment the
observed rate exceeds ``ε + slack``.

Semantics, and one caveat worth spelling out:

* an *error* is a read classified ``stale`` or ``fabricated`` — the two
  labels ε bounds.  ``empty`` (read before any write settled) and
  concurrent-write relabelling are not errors, exactly as in the
  conformance suite;
* the window estimator only speaks after ``min_samples`` observations, so a
  single unlucky early read cannot fire an alert the math permits;
* alerts are rate-limited to one per window-length of observations while
  the rate stays in violation (the stream is re-armed as soon as the rate
  drops back under the bound);
* **Lemma 5.7 caveat**: under a Byzantine adversary the masking system's
  effective error probability is *not* the benign ε — it is governed by the
  probability that a quorum's honest intersection falls below the vouching
  threshold ``k`` (the paper's Lemma 5.7 accounting).  The monitor compares
  against whatever ε the scenario's system object reports; for Byzantine
  scenarios that figure is the system's declared ε-intersection bound, so
  treat a firing monitor as *evidence to investigate*, not a proof the
  lemma failed.  (The load harnesses deploy thresholds ``k > b`` where
  fabrication is impossible, so there a fabricated-driven alert is always
  a real bug.)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["ERROR_LABELS", "EpsilonMonitor"]

#: Read classifications that count against ε.
ERROR_LABELS = frozenset({"stale", "fabricated"})


class EpsilonMonitor:
    """Sliding-window estimator of the stale/fabricated-accepted fraction.

    Parameters
    ----------
    epsilon:
        The predicted per-access error bound (``spec.system.epsilon``).
    slack:
        Tolerance added to ε before alerting — the same role the
        conformance suite's ``EPSILON_SLACK`` plays offline.
    window:
        Observations the sliding estimate spans.
    min_samples:
        Observations required before the estimator may alert at all.
    """

    def __init__(
        self,
        epsilon: float,
        slack: float = 0.05,
        window: int = 200,
        min_samples: int = 50,
    ) -> None:
        if epsilon < 0.0 or epsilon > 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        if slack < 0.0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        if window < 1:
            raise ValueError(f"the window must hold at least one sample, got {window}")
        if min_samples < 1 or min_samples > window:
            raise ValueError(
                f"min_samples must lie in [1, window={window}], got {min_samples}"
            )
        self.epsilon = float(epsilon)
        self.slack = float(slack)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self._flags: Deque[int] = deque(maxlen=self.window)
        self._window_errors = 0
        self.observed = 0
        self.errors = 0
        self.alerts: List[Dict[str, Any]] = []
        self._last_alert_at: Optional[int] = None

    @classmethod
    def for_scenario(
        cls,
        scenario: Any,
        slack: float = 0.05,
        window: int = 200,
        min_samples: int = 50,
    ) -> "EpsilonMonitor":
        """A monitor primed with the scenario's system-declared ε."""
        return cls(
            float(scenario.system.epsilon),
            slack=slack,
            window=window,
            min_samples=min_samples,
        )

    @property
    def bound(self) -> float:
        """The alerting bound, ``ε + slack``."""
        return self.epsilon + self.slack

    @property
    def window_rate(self) -> float:
        """The current sliding-window error fraction (0.0 when empty)."""
        if not self._flags:
            return 0.0
        return self._window_errors / len(self._flags)

    @property
    def total_rate(self) -> float:
        """The whole-run error fraction (0.0 before any observation)."""
        if self.observed == 0:
            return 0.0
        return self.errors / self.observed

    def observe(self, label: str) -> Optional[Dict[str, Any]]:
        """Feed one classified read; return the alert record if one fired."""
        error = 1 if label in ERROR_LABELS else 0
        if len(self._flags) == self._flags.maxlen:
            self._window_errors -= self._flags[0]
        self._flags.append(error)
        self._window_errors += error
        self.observed += 1
        self.errors += error
        samples = len(self._flags)
        if samples < self.min_samples:
            return None
        rate = self._window_errors / samples
        if rate <= self.bound:
            # Back under the bound: re-arm so the next excursion alerts
            # immediately instead of waiting out the rate limit.
            self._last_alert_at = None
            return None
        if (
            self._last_alert_at is not None
            and self.observed - self._last_alert_at < self.window
        ):
            return None
        self._last_alert_at = self.observed
        alert = {
            "kind": "epsilon-exceeded",
            "observed_rate": rate,
            "epsilon": self.epsilon,
            "slack": self.slack,
            "bound": self.bound,
            "window": samples,
            "window_errors": self._window_errors,
            "observed": self.observed,
            "errors": self.errors,
        }
        self.alerts.append(alert)
        return alert

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the monitor's state."""
        return {
            "epsilon": self.epsilon,
            "slack": self.slack,
            "window": self.window,
            "min_samples": self.min_samples,
            "observed": self.observed,
            "errors": self.errors,
            "window_rate": self.window_rate,
            "total_rate": self.total_rate,
            "alerts": list(self.alerts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"EpsilonMonitor(epsilon={self.epsilon}, slack={self.slack}, "
            f"observed={self.observed}, errors={self.errors}, "
            f"alerts={len(self.alerts)})"
        )
