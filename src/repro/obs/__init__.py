"""Observability for the live service layers: tracing, metrics, ε-monitoring.

Three dependency-free pieces, threaded through every deployment mode:

* :mod:`repro.obs.trace` — per-operation :class:`~repro.obs.trace.QuorumTrace`
  records (sampled quorum, per-node RPC spans with their disposition, the
  selection-rule verdict, the final read classification), collected by a
  sampling :class:`~repro.obs.trace.Tracer`;
* :mod:`repro.obs.metrics` — counter / gauge / fixed-bucket histogram
  primitives and a :class:`~repro.obs.metrics.MetricsRegistry` whose JSON
  snapshots merge across shards, workers and server processes;
* :mod:`repro.obs.monitor` — an online sliding-window
  :class:`~repro.obs.monitor.EpsilonMonitor` comparing the observed
  stale/fabricated-accepted fraction against the scenario's predicted ε.

The contract every instrumentation site honours is **zero-cost-when-off**:
harnesses pass ``tracer=None`` (the default everywhere) and the hot paths
never construct a trace, never draw from a sampling RNG, and never touch a
registry.  When sampling *is* on, the tracer draws from its own private RNG
stream, so a traced run and an untraced run of the same seeded workload
classify every read identically (CI asserts exactly that).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.monitor import EpsilonMonitor
from repro.obs.trace import RpcSpan, QuorumTrace, Tracer

__all__ = [
    "Counter",
    "EpsilonMonitor",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuorumTrace",
    "RpcSpan",
    "Tracer",
    "merge_snapshots",
]
