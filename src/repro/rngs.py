"""Random-stream utilities shared by the sequential and batched Monte-Carlo paths.

Every vectorised estimator processes its trials in fixed-size chunks so
peak memory stays bounded regardless of the trial count.  Each chunk gets
its own independent substream spawned from one ``numpy.random.SeedSequence``
root, which makes a run fully determined by ``(seed, chunk_size)`` — the
reproducibility contract the batch engines advertise.  Keeping the scheme
in one place means a future change to the seeding policy cannot silently
de-synchronise the estimators.

The sequential protocol stack draws through :func:`fresh_rng` instead of
bare ``random.Random()`` constructors: by default it is equivalent to an
unseeded ``random.Random``, but :func:`seed_sequential` installs a shared
root from which every subsequently requested stream is derived
deterministically, so a whole sequential run (registers, locks, workload
clients) is reproducible from a single seed — the sequential counterpart of
the batch engines' ``SeedSequence`` tree.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Optional, Tuple

import numpy as np

#: Root stream installed by :func:`seed_sequential` (``None`` = OS entropy).
_sequential_root: Optional[random.Random] = None


def seed_sequential(seed: Optional[int]) -> None:
    """Install (or with ``None`` clear) the root of all sequential RNG streams.

    After ``seed_sequential(s)`` the ``k``-th stream handed out by
    :func:`fresh_rng` is a deterministic function of ``(s, k)``, so any
    sequential experiment that takes its randomness through
    :func:`fresh_rng` replays exactly.
    """
    global _sequential_root
    _sequential_root = None if seed is None else random.Random(seed)


def fresh_rng(seed: Optional[int] = None) -> random.Random:
    """The central constructor for sequential ``random.Random`` streams.

    An explicit ``seed`` always wins; otherwise the stream is derived from
    the :func:`seed_sequential` root when one is installed, and falls back
    to OS entropy (plain ``random.Random()``) when it is not.
    """
    if seed is not None:
        return random.Random(seed)
    if _sequential_root is not None:
        return random.Random(_sequential_root.randrange(2**63))
    return random.Random()


def chunked_substreams(
    seed: Optional[int], total: int, chunk_size: int
) -> Iterator[Tuple[np.random.Generator, int]]:
    """Yield ``(generator, chunk_trials)`` pairs covering ``total`` trials.

    Chunks are ``chunk_size`` trials each (the last one smaller), and the
    ``k``-th chunk's generator is seeded from the ``k``-th spawn of
    ``SeedSequence(seed)``.  ``seed=None`` draws fresh OS entropy, matching
    NumPy's own convention.
    """
    if total < 0:
        raise ValueError(f"trial count must be non-negative, got {total}")
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    n_chunks = math.ceil(total / chunk_size)
    if n_chunks == 0:
        return
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    done = 0
    for child in children:
        size = min(chunk_size, total - done)
        done += size
        yield np.random.default_rng(child), size
