"""Random-stream utilities shared by the batched Monte-Carlo paths.

Every vectorised estimator processes its trials in fixed-size chunks so
peak memory stays bounded regardless of the trial count.  Each chunk gets
its own independent substream spawned from one ``numpy.random.SeedSequence``
root, which makes a run fully determined by ``(seed, chunk_size)`` — the
reproducibility contract the batch engines advertise.  Keeping the scheme
in one place means a future change to the seeding policy cannot silently
de-synchronise the estimators.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Tuple

import numpy as np


def chunked_substreams(
    seed: Optional[int], total: int, chunk_size: int
) -> Iterator[Tuple[np.random.Generator, int]]:
    """Yield ``(generator, chunk_trials)`` pairs covering ``total`` trials.

    Chunks are ``chunk_size`` trials each (the last one smaller), and the
    ``k``-th chunk's generator is seeded from the ``k``-th spawn of
    ``SeedSequence(seed)``.  ``seed=None`` draws fresh OS entropy, matching
    NumPy's own convention.
    """
    if total < 0:
        raise ValueError(f"trial count must be non-negative, got {total}")
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    n_chunks = math.ceil(total / chunk_size)
    if n_chunks == 0:
        return
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    done = 0
    for child in children:
        size = min(chunk_size, total - done)
        done += size
        yield np.random.default_rng(child), size
