"""Mobile-device location tracking over an ε-intersecting quorum system.

Section 1.1 of the paper: a mobile device's current cell is recorded in a
replicated variable spread over several *location stores*; the device
updates it with a quorum protocol as it moves, and callers read it with a
quorum protocol.  "The ability of callers to access this information, even
at the risk of it being stale, is the primary requirement": a caller that
receives a stale cell can be *forwarded* by that cell toward the device's
current whereabouts, but a caller that receives nothing is stuck.

:class:`LocationService` models exactly that trade-off:

* each device is a single writer to its own location variable
  (:class:`~repro.protocol.variable.ProbabilisticRegister` per device);
* each written record carries the device's movement-sequence number, so a
  stale answer can be *chased*: the service follows the trail of forwarding
  pointers (each cell knows where the device went next) and reports how many
  hops were needed — zero hops means the answer was current;
* an optional gossip :class:`~repro.simulation.diffusion.DiffusionEngine`
  spreads updates between moves, which drives the stale-answer rate toward
  zero (the Section 1.1 diffusion remark).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ConfigurationError, ProtocolError
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.cluster import Cluster
from repro.simulation.diffusion import DiffusionEngine


@dataclass(frozen=True)
class LocationAnswer:
    """Answer to a location query.

    Attributes
    ----------
    device_id:
        The queried device.
    cell:
        The cell finally reported to the caller (``None`` if the query found
        no information at all — the failure mode the application cannot
        tolerate).
    is_current:
        Whether the *first* quorum read already returned the device's latest
        cell.
    forwarding_hops:
        How many forwarding pointers had to be chased (0 when current).
    found:
        Whether the caller obtained any location at all.
    """

    device_id: str
    cell: Optional[str]
    is_current: bool
    forwarding_hops: int
    found: bool


class LocationService:
    """Quorum-replicated location registry for mobile devices.

    Parameters
    ----------
    system:
        The (typically ε-intersecting) quorum system used by both updates
        and queries.
    cluster:
        The location-store cluster.
    gossip_fanout:
        When positive, a diffusion engine with this fanout is available via
        :meth:`run_gossip` to propagate updates lazily.
    rng:
        Random source for quorum sampling.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        cluster: Cluster,
        gossip_fanout: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if system.n != cluster.n:
            raise ConfigurationError(
                f"quorum system is over {system.n} servers but the cluster has {cluster.n}"
            )
        self.system = system
        self.cluster = cluster
        self.rng = rng or random.Random()
        self._registers: Dict[str, ProbabilisticRegister] = {}
        self._trajectories: Dict[str, List[str]] = {}
        self._diffusion = (
            DiffusionEngine(cluster, fanout=gossip_fanout, rng=self.rng)
            if gossip_fanout > 0
            else None
        )
        self.queries_answered = 0
        self.queries_stale = 0
        self.queries_unanswered = 0

    # -- registers ---------------------------------------------------------------

    @staticmethod
    def _variable(device_id: str) -> str:
        return f"location:{device_id}"

    def _register_for(self, device_id: str) -> ProbabilisticRegister:
        if device_id not in self._registers:
            self._registers[device_id] = ProbabilisticRegister(
                self.system,
                self.cluster,
                name=self._variable(device_id),
                writer_id=len(self._registers) + 1,
                rng=self.rng,
            )
        return self._registers[device_id]

    # -- updates -----------------------------------------------------------------

    def update_location(self, device_id: str, cell: str) -> None:
        """Record that ``device_id`` has moved to ``cell`` (the device is the writer)."""
        if not device_id or not cell:
            raise ProtocolError("device ids and cells must be non-empty strings")
        register = self._register_for(device_id)
        trajectory = self._trajectories.setdefault(device_id, [])
        sequence = len(trajectory)
        register.write({"cell": cell, "sequence": sequence})
        trajectory.append(cell)

    def current_cell(self, device_id: str) -> Optional[str]:
        """The device's true current cell (ground truth for tests/metrics)."""
        trajectory = self._trajectories.get(device_id)
        return trajectory[-1] if trajectory else None

    def run_gossip(self, rounds: int = 1) -> int:
        """Run lazy diffusion rounds over all location variables."""
        if self._diffusion is None:
            raise ConfigurationError(
                "gossip is disabled; construct the service with gossip_fanout > 0"
            )
        variables = [self._variable(d) for d in self._registers]
        return self._diffusion.run_rounds(rounds, variables)

    # -- queries -----------------------------------------------------------------

    def locate(self, device_id: str) -> LocationAnswer:
        """Answer a caller's location query, chasing forwarding pointers if stale."""
        register = self._registers.get(device_id)
        trajectory = self._trajectories.get(device_id)
        if register is None or not trajectory:
            raise ProtocolError(f"unknown device {device_id!r}")
        outcome = register.read()
        self.queries_answered += 1
        if outcome.is_empty:
            # No location store in the read quorum knew anything: the caller
            # cannot make progress.  This is the failure the availability
            # analysis cares about.
            self.queries_unanswered += 1
            return LocationAnswer(
                device_id=device_id,
                cell=None,
                is_current=False,
                forwarding_hops=0,
                found=False,
            )
        sequence = int(outcome.value["sequence"])
        latest = len(trajectory) - 1
        if sequence >= latest:
            return LocationAnswer(
                device_id=device_id,
                cell=trajectory[latest],
                is_current=True,
                forwarding_hops=0,
                found=True,
            )
        # Stale: the old cell forwards the caller along the device's
        # hand-off chain until the current cell is reached.
        self.queries_stale += 1
        hops = latest - sequence
        return LocationAnswer(
            device_id=device_id,
            cell=trajectory[latest],
            is_current=False,
            forwarding_hops=hops,
            found=True,
        )

    # -- metrics -----------------------------------------------------------------

    @property
    def stale_answer_rate(self) -> float:
        """Fraction of answered queries that needed forwarding."""
        if self.queries_answered == 0:
            return 0.0
        return self.queries_stale / self.queries_answered

    @property
    def unanswered_rate(self) -> float:
        """Fraction of queries that found no location at all."""
        if self.queries_answered == 0:
            return 0.0
        return self.queries_unanswered / self.queries_answered
