"""Voter-ID locking, modelled on the Costa Rica electronic voting system.

Section 1.1 of the paper: each voter holds a unique voter ID and may present
it at any of over a thousand voting stations; to preserve election integrity
it suffices that *repeat* use of an ID is detected with high probability, so
a probabilistic quorum protocol locks IDs country-wide.  Using dissemination
or masking constructions keeps the lock meaningful even when some stations
(replica servers here) have been tampered with, while the probabilistic
relaxation keeps the election going despite benign failures of many
stations.

The service exposes one operation, :meth:`VotingService.cast_vote`:

1. draw a quorum from the system's strategy and read the voter's lock
   variable;
2. if a lock is visible (and, in masking mode, vouched for by at least ``k``
   servers), reject the ballot as a duplicate;
3. otherwise write a lock record (signed, in dissemination mode) to a
   strategy-drawn quorum and accept the ballot.

A duplicate is *admitted* only when the second attempt's read quorum misses
every server of the first attempt's write quorum — exactly the ε event of
the underlying system — so over ``r`` repeat attempts the probability that
all are admitted decays like ``ε^r`` ("numerous repeat attempts will be
detected with virtual certainty").
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ConfigurationError, ProtocolError
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.types import Quorum


@dataclass(frozen=True)
class VoteOutcome:
    """Result of presenting a voter ID at a station."""

    voter_id: str
    station_id: int
    accepted: bool
    duplicate_detected: bool
    read_quorum: Quorum
    write_quorum: Optional[Quorum]

    @property
    def rejected(self) -> bool:
        """Whether the ballot was refused (duplicate detected)."""
        return not self.accepted


@dataclass
class ElectionAudit:
    """Post-election audit statistics."""

    ballots_presented: int
    ballots_accepted: int
    duplicates_rejected: int
    duplicates_admitted: int
    distinct_voters_accepted: int

    @property
    def repeat_admission_rate(self) -> float:
        """Fraction of *repeat* attempts that slipped through undetected."""
        repeats = self.duplicates_rejected + self.duplicates_admitted
        return self.duplicates_admitted / repeats if repeats else 0.0


class VotingService:
    """Country-wide voter-ID locking over a probabilistic quorum system.

    Parameters
    ----------
    system:
        Any probabilistic quorum system.  If it exposes a ``read_threshold``
        (a masking system), lock reads require that many matching votes; if
        ``signatures`` is supplied, lock records are signed and unverifiable
        replies are ignored (dissemination mode); otherwise plain
        ε-intersecting reads are used.
    cluster:
        The replica cluster holding the lock state (the "voting stations").
    signatures:
        Election-authority signature scheme for self-verifying lock records.
    rng:
        Random source for quorum sampling.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        cluster: Cluster,
        signatures: Optional[SignatureScheme] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if system.n != cluster.n:
            raise ConfigurationError(
                f"quorum system is over {system.n} servers but the cluster has {cluster.n}"
            )
        self.system = system
        self.cluster = cluster
        self.signatures = signatures
        self.rng = rng or random.Random()
        self._accepted_by_voter: Counter = Counter()
        self._ballots_presented = 0
        self._duplicates_rejected = 0
        self._station_counters: Dict[int, int] = {}

    # -- lock variable helpers ----------------------------------------------------

    @staticmethod
    def _lock_variable(voter_id: str) -> str:
        return f"voter-lock:{voter_id}"

    @property
    def read_threshold(self) -> int:
        """Votes a lock record needs to count as 'seen' (1 unless masking)."""
        return int(getattr(self.system, "read_threshold", 1))

    def _next_timestamp(self, station_id: int) -> Timestamp:
        counter = self._station_counters.get(station_id, 0) + 1
        self._station_counters[station_id] = counter
        return Timestamp(counter, writer_id=station_id)

    def _read_lock(self, voter_id: str) -> tuple:
        """Return ``(locked, quorum)`` for the voter's lock variable."""
        variable = self._lock_variable(voter_id)
        quorum = self.system.sample_quorum(self.rng)
        replies = self.cluster.read_quorum(quorum, variable)
        votes: Counter = Counter()
        for stored in replies.values():
            if stored.timestamp is None:
                continue
            if self.signatures is not None:
                if not isinstance(stored.timestamp, Timestamp):
                    continue
                if not self.signatures.verify(
                    variable, stored.value, stored.timestamp, stored.signature
                ):
                    continue
            votes[(repr(stored.value), stored.timestamp)] += 1
        locked = any(count >= self.read_threshold for count in votes.values())
        return locked, quorum

    def _write_lock(self, voter_id: str, station_id: int) -> Quorum:
        variable = self._lock_variable(voter_id)
        quorum = self.system.sample_quorum(self.rng)
        timestamp = self._next_timestamp(station_id)
        value = {"station": station_id, "voter": voter_id}
        signature = (
            self.signatures.sign(variable, value, timestamp)
            if self.signatures is not None
            else None
        )
        self.cluster.write_quorum(quorum, variable, value, timestamp, signature=signature)
        return quorum

    # -- public operations ----------------------------------------------------------

    def has_voted(self, voter_id: str) -> bool:
        """Read-only check of the voter's lock (subject to the same ε guarantee)."""
        locked, _ = self._read_lock(voter_id)
        return locked

    def cast_vote(self, voter_id: str, station_id: int) -> VoteOutcome:
        """Present ``voter_id`` at ``station_id``; lock it if it is not locked yet."""
        if not voter_id:
            raise ProtocolError("voter ids must be non-empty strings")
        self._ballots_presented += 1
        locked, read_quorum = self._read_lock(voter_id)
        if locked:
            self._duplicates_rejected += 1
            return VoteOutcome(
                voter_id=voter_id,
                station_id=station_id,
                accepted=False,
                duplicate_detected=True,
                read_quorum=read_quorum,
                write_quorum=None,
            )
        write_quorum = self._write_lock(voter_id, station_id)
        self._accepted_by_voter[voter_id] += 1
        return VoteOutcome(
            voter_id=voter_id,
            station_id=station_id,
            accepted=True,
            duplicate_detected=False,
            read_quorum=read_quorum,
            write_quorum=write_quorum,
        )

    # -- auditing ---------------------------------------------------------------------

    def audit(self) -> ElectionAudit:
        """Summarise the election: how many duplicates were caught vs. admitted."""
        accepted = sum(self._accepted_by_voter.values())
        duplicates_admitted = sum(
            count - 1 for count in self._accepted_by_voter.values() if count > 1
        )
        return ElectionAudit(
            ballots_presented=self._ballots_presented,
            ballots_accepted=accepted,
            duplicates_rejected=self._duplicates_rejected,
            duplicates_admitted=duplicates_admitted,
            distinct_voters_accepted=len(self._accepted_by_voter),
        )

    def double_voters(self) -> Set[str]:
        """Voter IDs that managed to cast more than one accepted ballot."""
        return {voter for voter, count in self._accepted_by_voter.items() if count > 1}
