"""Applications from Section 1.1 of the paper.

Three end-to-end applications exercise the library's public API the way the
paper motivates it:

* :mod:`repro.apps.voting` — the Costa-Rica-style electronic voting system:
  voter IDs are locked country-wide through a probabilistic (dissemination
  or masking) quorum protocol so that large-scale repeat voting is detected
  with overwhelming probability even when some voting stations misbehave;
* :mod:`repro.apps.location` — a mobile-device location service: device
  locations are replicated across location stores with an ε-intersecting
  system; readers tolerate (and recover from) occasionally stale answers via
  forwarding pointers, and a gossip diffusion layer keeps staleness rare;
* :mod:`repro.apps.mutex` — the §1.1 lock as a *service*: REQUEST / GRANT /
  RELEASE over the async quorum client (in-process or TCP), with
  verify-after-write pushing the double-grant probability to ~ε², plus a
  contention load harness measuring throughput, fairness and starvation.
"""

from repro.apps.voting import VoteOutcome, VotingService
from repro.apps.location import LocationService, LocationAnswer
from repro.apps.mutex import (
    AsyncQuorumMutex,
    LockAttempt,
    LockLoadReport,
    LockLoadSpec,
    mutex_for,
    run_lock_load,
)

__all__ = [
    "VotingService",
    "VoteOutcome",
    "LocationService",
    "LocationAnswer",
    "AsyncQuorumMutex",
    "LockAttempt",
    "LockLoadReport",
    "LockLoadSpec",
    "mutex_for",
    "run_lock_load",
]
