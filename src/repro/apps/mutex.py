"""Quorum-backed distributed locks over the live service layer.

:mod:`repro.protocol.lock` builds the paper's §1.1 lock directly on a
simulated :class:`~repro.simulation.cluster.Cluster`; this module is the
same protocol *as a service*: lock clients speak REQUEST / GRANT / RELEASE
through :class:`~repro.service.client.AsyncQuorumClient` RPCs against a
:class:`~repro.service.sharding.ShardedDeployment` — in-process or over
TCP — with the register frontend of the scenario's protocol (plain, signed
dissemination, or masking-threshold) carrying the lock records.

The lock variable is an ordinary replicated register holding
``{"state": "held" | "released", "holder": client_id}`` records; highest
timestamp wins through the shared selection rule, with client ids breaking
ties exactly as concurrent register writers do.  Two refinements make the
advisory lock strong enough for the blocking safety gate:

* **Release-staleness fencing** (shared with the simulation lock): a held
  record older than a release this client *knows* about — from its own
  release or one observed at any read quorum — is provably superseded and
  never reported as a live holder, however lagging the read quorum.
* **Verify-after-write**: after writing its held record, an acquirer
  re-reads with a *fresh* quorum and backs off if a competing newer held
  record is visible.  A double grant then needs two independent missed
  intersections (the competitor's REQUEST read *and* this verify read),
  pushing its probability from ε to ~ε² — small enough that the CI
  coordination-safety job can assert **zero** simultaneous grants outright.

:func:`run_lock_load` is the matching load harness: ``clients`` contenders
acquire/hold/release over shared lock names under live crash churn, and the
report carries throughput, wait-time percentiles, a Jain fairness index over
per-client grants and a starvation count — plus the ``double_grants``
safety counter the conformance and CI gates pin at zero.
"""

from __future__ import annotations

import asyncio
import random
import time

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError, ProtocolError, QuorumUnavailableError
from repro.protocol.timestamps import Timestamp
from repro.rngs import fresh_rng
from repro.protocol.variable import ReadOutcome
from repro.service.client import DEFAULT_QUORUM_POOL, SELECTION_MODES
from repro.service.dispatch import DISPATCH_MODES
from repro.service.load import FaultInjectionSpec, _percentile, inject_faults
from repro.service.register import AsyncRegister, async_register_for
from repro.service.sharding import TRANSPORT_MODES, ShardedDeployment
from repro.simulation.scenario import ScenarioSpec


def lock_variable(name: str) -> str:
    """The register key a lock's records live under."""
    return f"quorum-lock:{name}"


@dataclass(frozen=True)
class LockAttempt:
    """One REQUEST round-trip: what the client saw and whether it was granted."""

    lock_name: str
    client_id: int
    granted: bool
    holder_seen: Optional[int]
    #: The granted record's timestamp (``None`` when not granted).
    timestamp: Optional[Timestamp]
    #: True when the grant was withdrawn by the verify read (a competing
    #: newer holder became visible after our write).
    backed_off: bool = False


class AsyncQuorumMutex:
    """One client's handle on a named distributed lock.

    Parameters
    ----------
    register:
        The register frontend carrying this lock's records.  Must write
        under this client's own writer identity — concurrent acquirers with
        one shared id would alias each other's timestamps.
    name:
        The lock name (many locks can share a deployment).
    client_id:
        This client's identity in lock records *and* timestamp tie-breaks.
    verify_rounds:
        Independent verify reads after the held-record write (default 2;
        0 restores the single-read protocol of
        :class:`repro.protocol.lock.QuorumLock`).  When two clients grab a
        *free* lock simultaneously, these reads are the only guard: the
        later writer double-holds only if every round misses the earlier
        record, so each round multiplies the double-grant probability by
        the per-read visibility miss rate (ε, or the masking threshold's
        under-``k``-votes probability — the dominant term for small
        quorums).
    verify_delay:
        Wall-clock pause before each verify read (default 0: a bare
        event-loop yield).  On a single event loop the yield suffices — a
        competitor's in-flight write is fully applied by the servers
        during any ``await``.  Across *real process boundaries*
        (:class:`~repro.service.cluster.ClusterDeployment`) it does not:
        the competitor's newer write can land *after* our verify reads
        returned but *before* its own verify read, where it has already
        overwritten our record on its write quorum and sees nothing to
        concede to.  A delay exceeding the in-flight write landing time
        (a few localhost RTTs) closes that window: the earlier writer's
        last verify then always starts after the later writer's racing
        write has landed, so one of the two must concede.
    rng:
        Randomness for the retry jitter (a fresh generator by default;
        harnesses pass seeded ones for reproducibility).
    """

    def __init__(
        self,
        register: AsyncRegister,
        name: str,
        client_id: int,
        verify_rounds: int = 2,
        verify_delay: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if client_id < 0:
            raise ProtocolError("client ids must be non-negative")
        if not name:
            raise ConfigurationError("lock names must be non-empty")
        if verify_rounds < 0:
            raise ConfigurationError(
                f"verify_rounds must be non-negative, got {verify_rounds}"
            )
        if verify_delay < 0.0:
            raise ConfigurationError(
                f"verify_delay must be non-negative, got {verify_delay}"
            )
        self.register = register
        self.name = str(name)
        self.client_id = int(client_id)
        self.verify_rounds = int(verify_rounds)
        self.verify_delay = float(verify_delay)
        self.rng = rng or fresh_rng()
        self._held: Optional[Timestamp] = None
        # Per-holder release fence: the newest released record known from
        # each client, fencing only *that client's* older held records.  A
        # release provably supersedes the same holder's earlier grant; it
        # says nothing about another client's record, so a global fence
        # could annul a live holder this client simply hadn't seen yet.
        self._release_fence: Dict[int, Timestamp] = {}
        self.requests = 0
        self.grants = 0
        self.releases = 0
        self.back_offs = 0
        #: Credible records that are not lock records at all.  Honest
        #: clients only ever write held/released dicts, so on a Byzantine
        #: deployment every alien record is a fabricated value that made it
        #: past the register frontend — the coordination-safety gate pins
        #: this at zero.
        self.alien_records = 0

    # -- record interpretation ----------------------------------------------------

    def _fence(self, holder: int, timestamp: Timestamp) -> None:
        current = self._release_fence.get(holder)
        if current is None or current < timestamp:
            self._release_fence[holder] = timestamp

    def _note_records(self, records: List[Any]) -> None:
        """Lamport bookkeeping for one read: clock + release fencing."""
        for record in records:
            if not isinstance(record.timestamp, Timestamp):
                continue
            self.register.observe_timestamp(record.timestamp)
            value = record.value
            if value is not None and not (
                isinstance(value, dict)
                and value.get("state") in ("held", "released")
            ):
                self.alien_records += 1
                continue
            if isinstance(value, dict) and value.get("state") == "released":
                try:
                    holder = int(value["holder"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._fence(holder, record.timestamp)

    def _live_holders(self, records: List[Any]) -> List[int]:
        """Every holder the credible records evidence, after release fencing."""
        holders = []
        for record in records:
            value = record.value
            if not isinstance(value, dict) or value.get("state") != "held":
                continue
            if not isinstance(record.timestamp, Timestamp):
                continue  # unforgeable honest order is what the fence compares
            try:
                holder = int(value["holder"])
            except (KeyError, TypeError, ValueError):
                continue
            fence = self._release_fence.get(holder)
            if fence is not None and record.timestamp < fence:
                continue  # provably superseded by that holder's own release
            holders.append(holder)
        return holders

    @property
    def held(self) -> bool:
        """Whether this client currently believes it holds the lock."""
        return self._held is not None

    def _tag_trace(self, step: str) -> None:
        """Label the last sampled quorum trace with the protocol step.

        Each lock operation is carried by a register read or write; when the
        client samples traces, tagging the trace with the lock round it
        served (``request-scan``, ``hold-write``, ``verify``, ``back-off``,
        ``release``, ``holder-read``) lets a trace dump reconstruct the
        REQUEST/RELEASE state machine, not just the register traffic.
        """
        trace = self.register.last_trace
        if trace is not None:
            trace.context = {"lock": self.name, "step": step}

    # -- operations ---------------------------------------------------------------

    async def holder(self) -> Optional[int]:
        """The client a fresh quorum read believes holds the lock.

        With contending acquirers mid-flight more than one live held record
        can be visible; the highest-ranked one is the holder every reader's
        selection rule would prefer, so that is the answer.
        """
        outcome = await self.register.read()
        self._tag_trace("holder-read")
        self._note_records(
            [outcome] if isinstance(outcome.timestamp, Timestamp) else []
        )
        holders = self._live_holders(
            [outcome] if isinstance(outcome.timestamp, Timestamp) else []
        )
        return holders[0] if holders else None

    async def request(self) -> LockAttempt:
        """One REQUEST: read for live holders, write a held record, verify."""
        if self._held is not None:
            raise ProtocolError(
                f"client {self.client_id} already holds lock {self.name!r}"
            )
        self.requests += 1
        records = await self.register.read_credible()
        self._tag_trace("request-scan")
        self._note_records(records)
        competitors = [
            holder
            for holder in self._live_holders(records)
            if holder != self.client_id
        ]
        if competitors:
            return LockAttempt(
                lock_name=self.name,
                client_id=self.client_id,
                granted=False,
                holder_seen=competitors[0],
                timestamp=None,
            )
        written = await self.register.write(
            {"state": "held", "holder": self.client_id}
        )
        self._tag_trace("hold-write")
        for _ in range(self.verify_rounds):
            # Yield (or wait verify_delay) so a competitor's concurrent
            # write RPCs can land before this verify quorum is read — the
            # check should race as little as possible.  Cross-process
            # deployments need the real delay; see the class docstring.
            await asyncio.sleep(self.verify_delay)
            check = await self.register.read_credible()
            self._tag_trace("verify")
            self._note_records(check)
            competitors = [
                holder
                for holder in self._live_holders(check)
                if holder != self.client_id
            ]
            if competitors:
                # Any competing held record — newer (it outranks ours) or
                # older (its writer may not have seen ours and may believe
                # it holds) — means concede rather than risk a double hold.
                # A double grant therefore needs both contenders' reads to
                # miss the other's record: two independent ε-events, so the
                # double-grant probability drops from ε to ~ε².  Conceding
                # annuls our own record with a released write (fencing only
                # *our* grants, never the competitor's), so a backed-off
                # record cannot linger as a phantom holder blocking others.
                self.back_offs += 1
                annulment = await self.register.write(
                    {"state": "released", "holder": self.client_id}
                )
                self._tag_trace("back-off")
                self._fence(self.client_id, annulment.timestamp)
                return LockAttempt(
                    lock_name=self.name,
                    client_id=self.client_id,
                    granted=False,
                    holder_seen=competitors[0],
                    timestamp=None,
                    backed_off=True,
                )
        self._held = written.timestamp
        self.grants += 1
        return LockAttempt(
            lock_name=self.name,
            client_id=self.client_id,
            granted=True,
            holder_seen=None,
            timestamp=written.timestamp,
        )

    async def acquire(
        self,
        retry_interval: float = 0.001,
        max_requests: Optional[int] = None,
    ) -> LockAttempt:
        """REQUEST until granted (advisory spin with an event-loop pause).

        The pause between refused requests is jittered (up to 8× the base
        interval, growing with the attempt count) so symmetric contenders
        that conceded to each other do not retry in lockstep forever.
        Raises :class:`ProtocolError` after ``max_requests`` refused
        attempts (``None`` retries forever).
        """
        attempts = 0
        while True:
            attempt = await self.request()
            if attempt.granted:
                return attempt
            attempts += 1
            if max_requests is not None and attempts >= max_requests:
                raise ProtocolError(
                    f"client {self.client_id} gave up on lock {self.name!r} "
                    f"after {attempts} refused requests"
                )
            await asyncio.sleep(
                retry_interval * (1.0 + self.rng.random() * min(attempts, 8))
            )

    async def release(self) -> None:
        """RELEASE the held lock (a newer-timestamped released record)."""
        if self._held is None:
            raise ProtocolError(
                f"client {self.client_id} does not hold lock {self.name!r}"
            )
        written = await self.register.write(
            {"state": "released", "holder": self.client_id}
        )
        self._tag_trace("release")
        self._fence(self.client_id, written.timestamp)
        self._held = None
        self.releases += 1


def mutex_for(
    spec: ScenarioSpec,
    client: Any,
    name: str = "lock",
    client_id: int = 0,
    verify_rounds: int = 2,
    verify_delay: float = 0.0,
    rng: Optional[random.Random] = None,
) -> AsyncQuorumMutex:
    """Build a lock handle with the scenario's register protocol.

    ``client`` is a per-client :class:`~repro.service.client.AsyncQuorumClient`;
    the lock's records are carried by the frontend
    :func:`~repro.service.register.async_register_for` resolves (signed in
    dissemination mode, ``k``-vouched in masking mode), writing under
    ``client_id`` as the writer identity.
    """
    register = async_register_for(
        spec, client, name=lock_variable(name), writer_id=client_id
    )
    return AsyncQuorumMutex(
        register,
        name,
        client_id,
        verify_rounds=verify_rounds,
        verify_delay=verify_delay,
        rng=rng,
    )


# -- the lock load harness --------------------------------------------------------


@dataclass(frozen=True)
class LockLoadSpec:
    """One lock-service load experiment, described declaratively.

    ``clients`` contenders each perform ``acquisitions_per_client``
    acquire → hold → release cycles over ``locks`` shared lock names
    (round-robin per attempt), with live crash churn from
    ``fault_injection`` on top of the scenario's static failures — the
    lock-service analogue of
    :class:`~repro.service.load.ServiceLoadSpec`, sharing its kwarg
    spellings (``deadline``, ``seed``, ``dispatch``, ``selection``).
    """

    scenario: ScenarioSpec
    clients: int = 8
    acquisitions_per_client: int = 3
    locks: int = 1
    hold_time: float = 0.0
    retry_interval: float = 0.001
    max_requests: int = 400
    verify_rounds: int = 2
    latency: float = 0.0
    jitter: float = 0.0
    drop_probability: float = 0.0
    deadline: Optional[float] = 0.05
    fault_injection: FaultInjectionSpec = field(default_factory=FaultInjectionSpec)
    transport: str = "inproc"
    dispatch: str = "batched"
    selection: str = "strategy"
    quorum_pool: int = DEFAULT_QUORUM_POOL
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.scenario, ScenarioSpec):
            raise ConfigurationError(
                f"a lock load is described over a ScenarioSpec, "
                f"got {type(self.scenario).__name__}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"need at least one client, got {self.clients}")
        if self.acquisitions_per_client < 1:
            raise ConfigurationError(
                f"each client needs at least one acquisition, "
                f"got {self.acquisitions_per_client}"
            )
        if self.locks < 1:
            raise ConfigurationError(f"need at least one lock, got {self.locks}")
        if self.hold_time < 0.0:
            raise ConfigurationError(
                f"the hold time must be non-negative, got {self.hold_time}"
            )
        if self.retry_interval <= 0.0:
            raise ConfigurationError(
                f"the retry interval must be positive, got {self.retry_interval}"
            )
        if self.max_requests < 1:
            raise ConfigurationError(
                f"need at least one request per acquisition, got {self.max_requests}"
            )
        if self.verify_rounds < 0:
            raise ConfigurationError(
                f"verify_rounds must be non-negative, got {self.verify_rounds}"
            )
        if self.transport not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORT_MODES}"
            )
        if self.transport == "tcp" and self.deadline is None:
            raise ConfigurationError(
                "deadline=None is refused over transport='tcp' (a silent "
                "replica would block the caller forever)"
            )
        if self.dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown dispatch mode {self.dispatch!r}; choose from {DISPATCH_MODES}"
            )
        if self.selection not in SELECTION_MODES:
            raise ConfigurationError(
                f"unknown selection mode {self.selection!r}; choose from {SELECTION_MODES}"
            )

    def lock_names(self) -> List[str]:
        """The shared lock names the contenders cycle over."""
        if self.locks == 1:
            return ["lock"]
        return [f"lock{index}" for index in range(self.locks)]

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"LockLoadSpec({self.scenario.describe()}, clients={self.clients}, "
            f"acquisitions/client={self.acquisitions_per_client}, "
            f"locks={self.locks}, transport={self.transport}, "
            f"verify_rounds={self.verify_rounds}, "
            f"injected_crashes={self.fault_injection.crash_count})"
        )


def jain_fairness(counts: List[int]) -> float:
    """Jain's fairness index over per-client grant counts (1.0 = perfectly fair)."""
    if not counts:
        return 1.0
    total = sum(counts)
    if total == 0:
        return 1.0
    squares = sum(count * count for count in counts)
    return (total * total) / (len(counts) * squares)


@dataclass
class LockLoadReport:
    """What the lock harness measured: liveness, fairness and safety."""

    spec: LockLoadSpec
    elapsed: float
    grants: int
    releases: int
    refused_requests: int
    back_offs: int
    give_ups: int
    rpc_failures: int
    #: Simultaneous grants on one lock name — the harness's safety counter,
    #: incremented whenever a grant lands while another client's grant on
    #: the same lock is still unreleased.  The CI coordination-safety gate
    #: pins this at zero.
    double_grants: int
    #: Credible records that were not lock records (fabricated values the
    #: register frontend accepted).  The same gate pins this at zero too.
    fabricated_records: int
    wait_times: List[float]
    grants_per_client: List[int]
    injected_crashes: int

    @property
    def throughput(self) -> float:
        """Granted acquisitions per wall-clock second."""
        return self.grants / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def fairness(self) -> float:
        """Jain's index over per-client grants (1.0 = perfectly fair)."""
        return jain_fairness(self.grants_per_client)

    @property
    def starved_clients(self) -> int:
        """Clients that finished the run without a single grant."""
        return sum(1 for count in self.grants_per_client if count == 0)

    def wait_time(self, fraction: float) -> float:
        """A grant wait-time percentile in seconds (nearest rank)."""
        return _percentile(sorted(self.wait_times), fraction)

    def render(self) -> str:
        """Plain-text report block."""
        waits = sorted(self.wait_times)
        return "\n".join(
            [
                "Lock service report",
                f"  {self.spec.describe()}",
                f"  elapsed           {self.elapsed:.3f} s",
                f"  grants            {self.grants} "
                f"({self.throughput:,.0f} grants/s), {self.releases} releases",
                "  wait time         "
                + "  ".join(
                    f"p{int(fraction * 100)}={_percentile(waits, fraction) * 1e3:.2f}ms"
                    for fraction in (0.50, 0.90, 0.99)
                ),
                f"  contention        {self.refused_requests} refused requests, "
                f"{self.back_offs} verify back-offs, {self.give_ups} give-ups, "
                f"{self.rpc_failures} rpc failures",
                f"  fairness          Jain={self.fairness:.3f}, "
                f"{self.starved_clients} starved clients",
                f"  safety violations {self.double_grants} double grants, "
                f"{self.fabricated_records} fabricated records",
                f"  resilience        {self.injected_crashes} live crashes injected",
            ]
        )


async def lock_load(spec: LockLoadSpec) -> LockLoadReport:
    """Run one lock-service load experiment on the current event loop."""
    rng = random.Random(spec.seed)
    scenario = spec.scenario
    deployment = ShardedDeployment(
        scenario,
        shards=1,
        transport=spec.transport,
        latency=spec.latency,
        jitter=spec.jitter,
        drop_probability=spec.drop_probability,
        dispatch=spec.dispatch,
        rng=rng,
    )
    try:
        await deployment.start()
        names = spec.lock_names()
        mutexes: List[Dict[str, AsyncQuorumMutex]] = []
        for client_id in range(spec.clients):
            client = deployment.client_for_shard(
                0,
                rng=random.Random(rng.randrange(2**63)),
                deadline=spec.deadline,
                selection=spec.selection,
                quorum_pool=spec.quorum_pool,
            )
            mutexes.append(
                {
                    name: mutex_for(
                        scenario,
                        client,
                        name=name,
                        client_id=scenario.writer_id + client_id,
                        verify_rounds=spec.verify_rounds,
                        rng=random.Random(rng.randrange(2**63)),
                    )
                    for name in names
                }
            )

        # -- shared safety accounting: who holds what, right now ------------------
        holders: Dict[str, set] = {name: set() for name in names}
        counters = {
            "grants": 0,
            "releases": 0,
            "give_ups": 0,
            "rpc_failures": 0,
            "double_grants": 0,
            "injected": 0,
        }
        wait_times: List[float] = []
        grants_per_client = [0] * spec.clients

        async def run_client(client_index: int) -> None:
            for round_index in range(spec.acquisitions_per_client):
                name = names[(client_index + round_index) % len(names)]
                mutex = mutexes[client_index][name]
                started = time.perf_counter()
                try:
                    attempt = await mutex.acquire(
                        retry_interval=spec.retry_interval,
                        max_requests=spec.max_requests,
                    )
                except ProtocolError:
                    counters["give_ups"] += 1
                    continue
                except QuorumUnavailableError:
                    counters["rpc_failures"] += 1
                    continue
                wait_times.append(time.perf_counter() - started)
                if holders[name]:
                    counters["double_grants"] += 1
                holders[name].add(client_index)
                counters["grants"] += 1
                grants_per_client[client_index] += 1
                if spec.hold_time:
                    await asyncio.sleep(spec.hold_time)
                # The exclusion window ends when the holder *decides* to
                # release: a competitor granted while the released record's
                # RPCs are in flight saw an issued release, which is not a
                # simultaneous hold.
                holders[name].discard(client_index)
                try:
                    await mutex.release()
                except QuorumUnavailableError:
                    counters["rpc_failures"] += 1
                finally:
                    counters["releases"] += 1

        injector = asyncio.ensure_future(
            inject_faults(deployment, spec.fault_injection, rng, counters)
        )
        started = time.perf_counter()
        try:
            await asyncio.gather(
                *(run_client(index) for index in range(spec.clients))
            )
        finally:
            injector.cancel()
            try:
                await injector
            except asyncio.CancelledError:
                pass
        elapsed = time.perf_counter() - started

        refused = sum(
            mutex.requests - mutex.grants - mutex.back_offs
            for per_client in mutexes
            for mutex in per_client.values()
        )
        back_offs = sum(
            mutex.back_offs for per_client in mutexes for mutex in per_client.values()
        )
        fabricated = sum(
            mutex.alien_records
            for per_client in mutexes
            for mutex in per_client.values()
        )
        return LockLoadReport(
            spec=spec,
            elapsed=elapsed,
            grants=counters["grants"],
            releases=counters["releases"],
            refused_requests=refused,
            back_offs=back_offs,
            give_ups=counters["give_ups"],
            rpc_failures=counters["rpc_failures"],
            double_grants=counters["double_grants"],
            fabricated_records=fabricated,
            wait_times=wait_times,
            grants_per_client=grants_per_client,
            injected_crashes=counters["injected"],
        )
    finally:
        await deployment.aclose()


def run_lock_load(spec: LockLoadSpec) -> LockLoadReport:
    """Run one lock-service load experiment (sync entry point)."""
    return asyncio.run(lock_load(spec))
