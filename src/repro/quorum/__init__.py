"""Strict quorum systems: the classical substrate the paper builds on.

This subpackage implements the *strict* quorum systems of Section 2 of the
paper, which serve both as baselines for the evaluation (threshold and grid
systems in Tables 2-4 and Figures 1-3) and as the conceptual substrate that
the probabilistic constructions of :mod:`repro.core` relax.

Contents:

* :mod:`repro.quorum.base` — the :class:`~repro.quorum.base.QuorumSystem`
  abstraction and explicit (enumerated) systems;
* :mod:`repro.quorum.threshold` — majority and threshold systems;
* :mod:`repro.quorum.grid` — Maekawa grid systems and their Byzantine
  (dissemination / masking) variants;
* :mod:`repro.quorum.singleton` — the single-server system (the best strict
  system for crash probability ``p >= 1/2``);
* :mod:`repro.quorum.weighted_voting` — Gifford-style weighted voting;
* :mod:`repro.quorum.byzantine` — strict b-dissemination and b-masking
  threshold systems of Malkhi and Reiter;
* :mod:`repro.quorum.measures` — load (LP-optimal), fault tolerance (exact
  minimum hitting set) and failure probability of explicit systems;
* :mod:`repro.quorum.verification` — property checking.
"""

from repro.quorum.base import ExplicitQuorumSystem, QuorumSystem
from repro.quorum.byzantine import (
    ThresholdDisseminationQuorumSystem,
    ThresholdMaskingQuorumSystem,
)
from repro.quorum.grid import (
    ByzantineGridQuorumSystem,
    GridDisseminationQuorumSystem,
    GridMaskingQuorumSystem,
    GridQuorumSystem,
)
from repro.quorum.measures import (
    fault_tolerance_exact,
    load_of_strategy,
    minimum_hitting_set,
    optimal_load,
)
from repro.quorum.crumbling_walls import (
    CrumblingWallQuorumSystem,
    near_square_row_widths,
)
from repro.quorum.probe import (
    GreedyProbeStrategy,
    ProbeResult,
    UniformProbeStrategy,
    expected_probes_uniform,
    oracle_from_alive_set,
)
from repro.quorum.singleton import SingletonQuorumSystem
from repro.quorum.threshold import MajorityQuorumSystem, ThresholdQuorumSystem
from repro.quorum.verification import (
    verify_dissemination_property,
    verify_intersection_property,
    verify_masking_property,
)
from repro.quorum.weighted_voting import WeightedVotingQuorumSystem

__all__ = [
    "QuorumSystem",
    "ExplicitQuorumSystem",
    "MajorityQuorumSystem",
    "ThresholdQuorumSystem",
    "GridQuorumSystem",
    "ByzantineGridQuorumSystem",
    "GridDisseminationQuorumSystem",
    "GridMaskingQuorumSystem",
    "SingletonQuorumSystem",
    "WeightedVotingQuorumSystem",
    "ThresholdDisseminationQuorumSystem",
    "ThresholdMaskingQuorumSystem",
    "optimal_load",
    "load_of_strategy",
    "fault_tolerance_exact",
    "minimum_hitting_set",
    "verify_intersection_property",
    "verify_dissemination_property",
    "verify_masking_property",
    "CrumblingWallQuorumSystem",
    "near_square_row_widths",
    "UniformProbeStrategy",
    "GreedyProbeStrategy",
    "ProbeResult",
    "expected_probes_uniform",
    "oracle_from_alive_set",
]
