"""Exact quality measures of explicit quorum systems.

For a set system given by an explicit list of quorums this module computes
the three traditional measures of Section 2 exactly:

* **load** (Definition 2.4) — the minimum over access strategies of the
  maximum per-server access probability.  Finding the optimal strategy is a
  linear program: minimise ``z`` subject to ``Σ_Q w(Q) = 1``, ``w >= 0`` and
  ``Σ_{Q ∋ u} w(Q) <= z`` for every server ``u``.  We solve it with
  :func:`scipy.optimize.linprog`.
* **fault tolerance** (Definition 2.5) — the size of a minimum hitting set
  (transversal) of the quorums, computed exactly by branch and bound with a
  greedy upper bound and an LP-free lower bound; exponential in the worst
  case but fast for the moderate explicit systems used in tests and
  examples.
* **failure probability** (Definition 2.6) — delegated to
  :mod:`repro.analysis.failure_probability` (exact where possible, else
  Monte Carlo).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ConfigurationError, StrategyError
from repro.quorum.base import membership_matrix
from repro.types import Quorum, ServerId


def _touched_servers(quorums: Sequence[Quorum]) -> Set[ServerId]:
    touched: Set[ServerId] = set()
    for quorum in quorums:
        touched |= quorum
    return touched




def load_of_strategy(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    n: int,
    empirical_trials: Optional[int] = None,
    seed: int = 0,
    engine: str = "batch",
) -> float:
    """Load induced by an explicit strategy ``w`` (Definition 2.4).

    ``L_w(Q) = max_u Σ_{Q ∋ u} w(Q)``.  The weights must form a probability
    distribution over the quorums.  The analytical value is computed as a
    weight-vector/membership-matrix product.

    With ``empirical_trials`` set, the load is instead *measured*: that many
    quorum accesses are drawn from the strategy and the busiest server's
    observed access fraction is returned.  ``engine="batch"`` draws them
    vectorised; ``engine="sequential"`` replays the object-by-object
    workload client (the oracle the batched path is tested against).
    """
    if len(quorums) != len(weights):
        raise StrategyError(
            f"strategy assigns {len(weights)} weights to {len(quorums)} quorums"
        )
    if not quorums:
        raise ConfigurationError("cannot compute the load of an empty system")
    if any(w < -1e-12 for w in weights):
        raise StrategyError("strategy weights must be non-negative")
    total = float(sum(weights))
    if abs(total - 1.0) > 1e-9:
        raise StrategyError(f"strategy weights must sum to 1, got {total}")
    if empirical_trials is not None:
        return _empirical_load(quorums, weights, n, empirical_trials, seed, engine)
    member = membership_matrix(quorums, n)
    per_server = np.asarray(weights, dtype=np.float64) @ member
    return float(per_server.max()) if n else 0.0


def _empirical_load(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    n: int,
    trials: int,
    seed: int,
    engine: str,
) -> float:
    """Measured load: busiest server's access fraction over sampled draws."""
    if trials <= 0:
        raise ConfigurationError(f"empirical trial count must be positive, got {trials}")
    if engine == "sequential":
        from repro.core.strategy import ExplicitStrategy
        from repro.simulation.client import WorkloadClient

        client = WorkloadClient(
            n, ExplicitStrategy(quorums, weights), random.Random(seed)
        )
        return client.run(trials).max_load
    if engine != "batch":
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'sequential' or 'batch'"
        )
    member = membership_matrix(quorums, n)
    probabilities = np.asarray(weights, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    generator = np.random.default_rng(np.random.SeedSequence(seed))
    drawn = generator.choice(len(quorums), size=trials, p=probabilities)
    draw_counts = np.bincount(drawn, minlength=len(quorums)).astype(np.float64)
    per_server = draw_counts @ member
    return float(per_server.max()) / trials


def optimal_load(quorums: Sequence[Quorum], n: int) -> float:
    """LP-optimal load ``L(Q) = min_w L_w(Q)`` (Definition 2.4).

    Variables are the quorum weights ``w_1 .. w_m`` plus the bound ``z``; the
    objective minimises ``z`` subject to each server's induced load being at
    most ``z`` and the weights forming a distribution.
    """
    quorum_list = [frozenset(q) for q in quorums]
    if not quorum_list:
        raise ConfigurationError("cannot compute the load of an empty system")
    m = len(quorum_list)
    # Objective: minimise z (the last variable).
    c = np.zeros(m + 1)
    c[m] = 1.0
    # Inequalities: for each server u, sum_{Q ∋ u} w_Q - z <= 0.
    rows: List[np.ndarray] = []
    for server in range(n):
        row = np.zeros(m + 1)
        involved = False
        for idx, quorum in enumerate(quorum_list):
            if server in quorum:
                row[idx] = 1.0
                involved = True
        if involved:
            row[m] = -1.0
            rows.append(row)
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.zeros(len(rows)) if rows else None
    # Equality: weights sum to one.
    a_eq = np.zeros((1, m + 1))
    a_eq[0, :m] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * m + [(0.0, 1.0)]
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - linprog is reliable on these LPs
        raise ConfigurationError(f"load LP failed to solve: {result.message}")
    return float(result.fun)


def optimal_strategy(quorums: Sequence[Quorum], n: int) -> Tuple[List[float], float]:
    """Return an optimal access strategy and the load it induces.

    Same LP as :func:`optimal_load`, but the weights are returned so that the
    protocol layer can enforce the load-optimal strategy (the paper stresses
    that the advertised ε is only achieved under the specified strategy).
    """
    quorum_list = [frozenset(q) for q in quorums]
    if not quorum_list:
        raise ConfigurationError("cannot compute a strategy for an empty system")
    m = len(quorum_list)
    c = np.zeros(m + 1)
    c[m] = 1.0
    rows: List[np.ndarray] = []
    for server in range(n):
        row = np.zeros(m + 1)
        involved = False
        for idx, quorum in enumerate(quorum_list):
            if server in quorum:
                row[idx] = 1.0
                involved = True
        if involved:
            row[m] = -1.0
            rows.append(row)
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.zeros(len(rows)) if rows else None
    a_eq = np.zeros((1, m + 1))
    a_eq[0, :m] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * m + [(0.0, 1.0)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    if not result.success:  # pragma: no cover
        raise ConfigurationError(f"load LP failed to solve: {result.message}")
    weights = [max(0.0, float(w)) for w in result.x[:m]]
    total = sum(weights)
    weights = [w / total for w in weights]
    return weights, float(result.fun)


# ---------------------------------------------------------------------------
# Fault tolerance: minimum hitting set
# ---------------------------------------------------------------------------


def minimum_hitting_set(sets: Sequence[FrozenSet[int]]) -> FrozenSet[int]:
    """Exact minimum hitting set of a family of non-empty sets.

    Branch and bound: pick an uncovered set, branch on which of its elements
    joins the transversal, prune with a greedy upper bound and the trivial
    lower bound (number of pairwise-disjoint uncovered sets).  Exponential in
    the worst case, but the explicit systems in this library (grids, small
    voting systems, test fixtures) are tiny.
    """
    family = [frozenset(s) for s in sets]
    if not family:
        return frozenset()
    if any(not s for s in family):
        raise ConfigurationError("cannot hit an empty set")

    # Greedy upper bound.
    def greedy() -> Set[int]:
        remaining = list(family)
        chosen: Set[int] = set()
        while remaining:
            counts: Dict[int, int] = {}
            for s in remaining:
                for element in s:
                    counts[element] = counts.get(element, 0) + 1
            best = max(counts, key=lambda e: counts[e])
            chosen.add(best)
            remaining = [s for s in remaining if best not in s]
        return chosen

    best_solution: Set[int] = greedy()

    def disjoint_lower_bound(remaining: List[FrozenSet[int]]) -> int:
        bound = 0
        used: Set[int] = set()
        for s in sorted(remaining, key=len):
            if not (s & used):
                bound += 1
                used |= s
        return bound

    def branch(remaining: List[FrozenSet[int]], chosen: Set[int]) -> None:
        nonlocal best_solution
        if not remaining:
            if len(chosen) < len(best_solution):
                best_solution = set(chosen)
            return
        if len(chosen) + disjoint_lower_bound(remaining) >= len(best_solution):
            return
        # Branch on the smallest uncovered set for a tight branching factor.
        target = min(remaining, key=len)
        for element in sorted(target):
            new_remaining = [s for s in remaining if element not in s]
            chosen.add(element)
            branch(new_remaining, chosen)
            chosen.remove(element)

    branch(family, set())
    return frozenset(best_solution)


def fault_tolerance_exact(quorums: Sequence[Quorum], n: int) -> int:
    """Exact fault tolerance ``A(Q)``: size of a minimum transversal.

    ``A(Q)`` is the smallest number of servers whose removal leaves no intact
    quorum (Definition 2.5); the system survives any ``A(Q) - 1`` crashes.
    """
    quorum_list = [frozenset(q) for q in quorums]
    if not quorum_list:
        raise ConfigurationError("cannot compute the fault tolerance of an empty system")
    for quorum in quorum_list:
        if not quorum <= frozenset(range(n)):
            raise ConfigurationError(
                f"quorum {sorted(quorum)} is not contained in the universe of size {n}"
            )
    return len(minimum_hitting_set(quorum_list))


def per_server_loads(
    quorums: Sequence[Quorum], weights: Sequence[float], n: int
) -> List[float]:
    """Per-server induced loads ``l_w(u)`` under an explicit strategy."""
    if len(quorums) != len(weights):
        raise StrategyError(
            f"strategy assigns {len(weights)} weights to {len(quorums)} quorums"
        )
    member = membership_matrix(quorums, n)
    return (np.asarray(weights, dtype=np.float64) @ member).tolist()
