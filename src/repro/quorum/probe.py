"""Probe complexity: finding a live quorum by probing servers adaptively.

The load and failure-probability analyses assume a client magically knows
which servers are alive.  In practice a client *probes* servers (cheap
"are-you-alive" requests) until it has assembled a live quorum — the probe
complexity studied by Peleg and Wool, which the paper's Section 2.1 notes
"would be straightforward to apply ... to our constructions".  This module
does exactly that for the uniform constructions and for arbitrary
:class:`~repro.quorum.base.QuorumSystem` objects:

* :class:`UniformProbeStrategy` — for ``R(n, q)`` the client probes servers
  in uniformly random order and stops as soon as ``q`` live servers have
  been found; the number of probes needed is a negative-hypergeometric
  variable whose expectation is roughly ``q (n+1)/(a+1)`` when ``a`` servers
  are alive.
* :class:`GreedyProbeStrategy` — for structured systems (grids, explicit
  systems) the client repeatedly checks, via
  :meth:`~repro.quorum.base.QuorumSystem.find_live_quorum`, whether the
  servers probed so far already contain a quorum, probing in an order that
  favours servers appearing in many quorums.
* :func:`expected_probes_uniform` — the closed-form expectation, used by the
  tests and by capacity-planning callers.

Both strategies report a :class:`ProbeResult` with the assembled quorum (or
``None``) and the number of probes spent, so experiments can compare probe
complexity across constructions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.exceptions import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import Quorum, ServerId

#: Callback answering "is this server currently alive?" for one probe.
LivenessOracle = Callable[[ServerId], bool]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of an adaptive probing session."""

    quorum: Optional[Quorum]
    probes_used: int
    servers_alive: int
    servers_probed: int

    @property
    def found(self) -> bool:
        """Whether a live quorum was assembled."""
        return self.quorum is not None


def oracle_from_alive_set(alive: Iterable[ServerId]) -> LivenessOracle:
    """Build a liveness oracle from an explicit set of alive servers."""
    alive_set = frozenset(alive)
    return lambda server: server in alive_set


class UniformProbeStrategy:
    """Random-order probing for the uniform constructions ``R(n, q)``.

    Because every subset of size ``q`` is a quorum, the client needs *any*
    ``q`` live servers; probing in uniformly random order is optimal up to
    constants and keeps the induced load spread evenly (each server is probed
    with the same probability), preserving the construction's load profile.
    """

    def __init__(self, n: int, quorum_size: int) -> None:
        if n < 1:
            raise ConfigurationError(f"universe size must be positive, got {n}")
        if not 0 < quorum_size <= n:
            raise ConfigurationError(f"quorum size must lie in (0, {n}], got {quorum_size}")
        self.n = int(n)
        self.quorum_size = int(quorum_size)

    def probe(
        self,
        oracle: LivenessOracle,
        rng: Optional[random.Random] = None,
        max_probes: Optional[int] = None,
    ) -> ProbeResult:
        """Probe servers in random order until ``q`` live ones are found."""
        rng = rng or random.Random()
        limit = self.n if max_probes is None else min(max_probes, self.n)
        order = list(range(self.n))
        rng.shuffle(order)
        live: List[ServerId] = []
        probes = 0
        for server in order:
            if probes >= limit:
                break
            probes += 1
            if oracle(server):
                live.append(server)
                if len(live) == self.quorum_size:
                    return ProbeResult(
                        quorum=frozenset(live),
                        probes_used=probes,
                        servers_alive=len(live),
                        servers_probed=probes,
                    )
        return ProbeResult(
            quorum=None, probes_used=probes, servers_alive=len(live), servers_probed=probes
        )


class GreedyProbeStrategy:
    """Adaptive probing for arbitrary quorum systems.

    Probes servers in a caller-supplied (or frequency-based) priority order
    and, after every successful probe, asks the system whether the live
    servers discovered so far already contain a quorum.  For structured
    systems such as grids this terminates long before probing the whole
    universe in the common case.
    """

    def __init__(self, system: QuorumSystem, priority: Optional[Sequence[ServerId]] = None) -> None:
        self.system = system
        if priority is None:
            priority = self._frequency_order(system)
        order = [int(s) for s in priority]
        if sorted(order) != list(range(system.n)):
            raise ConfigurationError(
                "the probe priority must be a permutation of all server ids"
            )
        self.priority: List[ServerId] = order

    @staticmethod
    def _frequency_order(system: QuorumSystem) -> List[ServerId]:
        """Order servers by how many quorums they appear in (most first).

        Falls back to the natural order when the system cannot be enumerated
        (for the symmetric uniform constructions every order is equivalent).
        """
        try:
            counts = [0] * system.n
            for quorum in system.enumerate_quorums():
                for server in quorum:
                    counts[server] += 1
            return sorted(range(system.n), key=lambda s: counts[s], reverse=True)
        except (NotImplementedError, ConfigurationError):
            return list(range(system.n))

    def probe(
        self,
        oracle: LivenessOracle,
        max_probes: Optional[int] = None,
    ) -> ProbeResult:
        """Probe in priority order until a live quorum emerges (or probes run out)."""
        limit = self.system.n if max_probes is None else min(max_probes, self.system.n)
        live: Set[ServerId] = set()
        probes = 0
        for server in self.priority:
            if probes >= limit:
                break
            probes += 1
            if oracle(server):
                live.add(server)
                quorum = self.system.find_live_quorum(live)
                if quorum is not None:
                    return ProbeResult(
                        quorum=quorum,
                        probes_used=probes,
                        servers_alive=len(live),
                        servers_probed=probes,
                    )
        return ProbeResult(
            quorum=None, probes_used=probes, servers_alive=len(live), servers_probed=probes
        )


def expected_probes_uniform(n: int, quorum_size: int, alive: int) -> float:
    """Expected probes for :class:`UniformProbeStrategy` with ``alive`` live servers.

    Probing in uniform random order, the position of the ``q``-th live server
    among the ``n`` probes follows a negative hypergeometric distribution with
    expectation ``q (n + 1) / (a + 1)`` where ``a`` is the number of live
    servers.  Raises :class:`ConfigurationError` when ``alive < quorum_size``
    (no quorum can be assembled at all).
    """
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 0 < quorum_size <= n:
        raise ConfigurationError(f"quorum size must lie in (0, {n}], got {quorum_size}")
    if not 0 <= alive <= n:
        raise ConfigurationError(f"alive count must lie in [0, {n}], got {alive}")
    if alive < quorum_size:
        raise ConfigurationError(
            f"only {alive} servers are alive; a quorum needs {quorum_size}"
        )
    return quorum_size * (n + 1) / (alive + 1)
