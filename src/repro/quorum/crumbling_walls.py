"""Crumbling-wall quorum systems (Peleg & Wool), a practical strict baseline.

The paper's related-work section cites crumbling walls [PW97] among the
"practical and efficient" strict quorum systems.  A wall arranges the ``n``
servers in rows of (possibly different) widths; a quorum is **one full row
plus one element from every row below it**.  Any two quorums intersect:
take the higher of the two full rows — the other quorum contains an element
of that row (either its own full row, or its representative element chosen
from it).

Crumbling walls interpolate between the grid (all rows equal, width √n,
quorum size ≈ 2√n) and the majority system (a single row), and with row
widths ≈ √n they achieve load O(1/√n) with somewhat better availability than
the grid — which is why they make a useful third strict baseline when
examining how far the probabilistic constructions move the trade-off.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.failure_probability import monte_carlo_failure_probability
from repro.exceptions import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import Quorum, ServerId


def near_square_row_widths(n: int) -> List[int]:
    """A default wall layout: rows of width ≈ √n covering all ``n`` servers.

    The last row absorbs the remainder, so every server belongs to exactly
    one row and no row is empty.
    """
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    width = max(1, round(math.sqrt(n)))
    widths: List[int] = []
    remaining = n
    while remaining > 0:
        take = min(width, remaining)
        # Avoid a dangling 1-wide final row when possible: merge it upward.
        if 0 < remaining - take < max(2, width // 2) and widths:
            take = remaining
        widths.append(take)
        remaining -= take
    return widths


class CrumblingWallQuorumSystem(QuorumSystem):
    """A crumbling wall over rows of the given widths.

    Parameters
    ----------
    row_widths:
        Width of each row, top to bottom; must sum to the universe size.
        Use :func:`near_square_row_widths` (the default when ``None`` and
        ``n`` is given) for the classic ≈√n layout.
    n:
        Universe size; inferred from ``row_widths`` when omitted.
    """

    def __init__(
        self,
        row_widths: Optional[Sequence[int]] = None,
        n: Optional[int] = None,
    ) -> None:
        if row_widths is None:
            if n is None:
                raise ConfigurationError("provide either row widths or a universe size")
            row_widths = near_square_row_widths(n)
        widths = [int(w) for w in row_widths]
        if not widths or any(w < 1 for w in widths):
            raise ConfigurationError("row widths must be positive")
        total = sum(widths)
        if n is not None and n != total:
            raise ConfigurationError(
                f"row widths sum to {total} but the universe size is {n}"
            )
        super().__init__(total)
        self._widths = widths
        self._rows: List[Quorum] = []
        start = 0
        for width in widths:
            self._rows.append(frozenset(range(start, start + width)))
            start += width

    # -- layout -------------------------------------------------------------------

    @property
    def row_widths(self) -> List[int]:
        """The widths of the wall's rows, top to bottom."""
        return list(self._widths)

    @property
    def rows(self) -> List[Quorum]:
        """The rows themselves (top to bottom)."""
        return list(self._rows)

    def row_of(self, server: ServerId) -> int:
        """Index of the row containing ``server``."""
        if not 0 <= server < self.n:
            raise ConfigurationError(f"server {server} outside the universe of size {self.n}")
        for index, row in enumerate(self._rows):
            if server in row:
                return index
        raise ConfigurationError(f"server {server} not found in any row")  # pragma: no cover

    # -- structure ------------------------------------------------------------------

    def min_quorum_size(self) -> int:
        """Smallest quorum: the cheapest full row plus one element per lower row."""
        best = None
        for index, width in enumerate(self._widths):
            size = width + (len(self._widths) - index - 1)
            if best is None or size < best:
                best = size
        return best

    def quorum_for(self, row_index: int, representatives: Sequence[ServerId]) -> Quorum:
        """The quorum made of full row ``row_index`` plus the given lower representatives."""
        if not 0 <= row_index < len(self._rows):
            raise ConfigurationError(f"row index {row_index} out of range")
        lower_rows = self._rows[row_index + 1 :]
        reps = list(representatives)
        if len(reps) != len(lower_rows):
            raise ConfigurationError(
                f"need exactly one representative for each of the {len(lower_rows)} lower rows"
            )
        servers: Set[ServerId] = set(self._rows[row_index])
        for row, representative in zip(lower_rows, reps):
            if representative not in row:
                raise ConfigurationError(
                    f"server {representative} is not in the expected lower row"
                )
            servers.add(representative)
        return frozenset(servers)

    def enumerate_quorums(self) -> Iterator[Quorum]:
        """Enumerate quorums (exponential in the number of rows; small walls only)."""
        import itertools

        for row_index in range(len(self._rows)):
            lower_rows = self._rows[row_index + 1 :]
            if not lower_rows:
                yield self._rows[row_index]
                continue
            for combo in itertools.product(*[sorted(row) for row in lower_rows]):
                yield self.quorum_for(row_index, combo)

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        """Sample a quorum: uniform row choice, uniform representatives below it.

        Choosing the full row uniformly (rather than proportionally to some
        weight) keeps the strategy simple; the load computation accounts for
        the actual induced distribution.
        """
        rng = rng or random.Random()
        row_index = rng.randrange(len(self._rows))
        representatives = [rng.choice(sorted(row)) for row in self._rows[row_index + 1 :]]
        return self.quorum_for(row_index, representatives)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        alive_set = frozenset(alive)
        for row_index, row in enumerate(self._rows):
            if not row <= alive_set:
                continue
            representatives = []
            feasible = True
            for lower in self._rows[row_index + 1 :]:
                live_in_row = sorted(lower & alive_set)
                if not live_in_row:
                    feasible = False
                    break
                representatives.append(live_in_row[0])
            if feasible:
                return self.quorum_for(row_index, representatives)
        return None

    # -- measures ---------------------------------------------------------------------

    def load(self) -> float:
        """Load induced by the uniform-row sampling strategy.

        A server in row ``i`` (width ``w_i``) is accessed when its own row is
        the chosen full row (probability ``1/r``) or when a higher row is
        chosen and this server is picked as its row's representative
        (probability ``(i) / (r w_i)`` summed over the ``i`` higher rows), so
        ``l(u) = 1/r + i/(r w_i)`` for ``u`` in row ``i``; the load is the
        maximum over rows.
        """
        r = len(self._rows)
        worst = 0.0
        for index, width in enumerate(self._widths):
            induced = 1.0 / r + index / (r * width)
            worst = max(worst, induced)
        return worst

    def fault_tolerance(self) -> int:
        """``A(Q)``: size of the cheapest transversal of the wall's quorums.

        Two families of transversals exist:

        * one server from *every* row (``r`` servers): every quorum contains
          some full row, hence one of the chosen servers;
        * all of row ``i`` plus one server from every row *below* it
          (``w_i + r - 1 - i`` servers): quorums whose full row is above ``i``
          contain a representative of row ``i`` (fully crashed), quorums whose
          full row is ``i`` are hit directly, and quorums whose full row is
          below ``i`` are hit through their own full row.

        The minimum over these candidates is the exact transversal size
        (validated against the exact minimum-hitting-set computation in the
        test suite for small walls).
        """
        r = len(self._widths)
        candidates = [r]
        for index, width in enumerate(self._widths):
            candidates.append(width + (r - 1 - index))
        return min(candidates)

    def failure_probability(self, p: float, trials: int = 20_000, seed: int = 0) -> float:
        """Monte-Carlo ``Fp`` (walls have no simple closed form for general layouts)."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
        rng = random.Random(seed)
        failures = 0
        for _ in range(trials):
            alive = {server for server in range(self.n) if rng.random() >= p}
            if self.find_live_quorum(alive) is None:
                failures += 1
        return failures / trials

    def describe(self) -> str:
        return f"CrumblingWall(n={self.n}, rows={self._widths})"
