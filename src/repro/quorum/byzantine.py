"""Strict Byzantine quorum systems (Malkhi & Reiter), threshold flavour.

Definition 2.7 of the paper: a set system ``Q`` is a *b-dissemination* quorum
system if ``A(Q) > b`` and every two quorums overlap in at least ``b + 1``
servers; it is a *b-masking* quorum system if the overlap is at least
``2b + 1``.  The canonical threshold constructions take every subset of size

* ``⌈(n + b + 1) / 2⌉`` for dissemination (requires ``b <= ⌊(n-1)/3⌋``),
* ``⌈(n + 2b + 1) / 2⌉`` for masking (requires ``b <= ⌊(n-1)/4⌋``),

which are exactly the strict baselines of Tables 3 and 4 and Figures 2 and 3.
Both inherit the closed-form measures of
:class:`~repro.quorum.threshold.ThresholdQuorumSystem`.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.quorum.threshold import ThresholdQuorumSystem


def dissemination_quorum_size(n: int, b: int) -> int:
    """Quorum size ``⌈(n + b + 1)/2⌉`` of the strict b-dissemination threshold system."""
    return math.ceil((n + b + 1) / 2)


def masking_quorum_size(n: int, b: int) -> int:
    """Quorum size ``⌈(n + 2b + 1)/2⌉`` of the strict b-masking threshold system."""
    return math.ceil((n + 2 * b + 1) / 2)


def max_dissemination_threshold(n: int) -> int:
    """Largest ``b`` a strict dissemination system can tolerate: ``⌊(n-1)/3⌋``."""
    return (n - 1) // 3


def max_masking_threshold(n: int) -> int:
    """Largest ``b`` a strict masking system can tolerate: ``⌊(n-1)/4⌋``."""
    return (n - 1) // 4


class ThresholdDisseminationQuorumSystem(ThresholdQuorumSystem):
    """Strict b-dissemination threshold system.

    Quorums are all subsets of size ``⌈(n+b+1)/2⌉``; two quorums overlap in at
    least ``b + 1`` servers, so with self-verifying data a reader always sees
    at least one correct copy of the latest write.

    Raises :class:`ConfigurationError` when ``b`` exceeds the strict bound
    ``⌊(n-1)/3⌋`` — the limitation the probabilistic construction of
    Section 4 removes.
    """

    def __init__(self, n: int, b: int) -> None:
        if b < 1:
            raise ConfigurationError(f"dissemination systems require b >= 1, got {b}")
        limit = max_dissemination_threshold(n)
        if b > limit:
            raise ConfigurationError(
                f"strict dissemination systems require b <= (n-1)/3 = {limit}, got b={b}"
            )
        super().__init__(n, dissemination_quorum_size(n, b))
        self.byzantine_threshold = int(b)

    def min_overlap(self) -> int:
        """Guaranteed pairwise overlap: ``2m - n >= b + 1``."""
        return 2 * self.quorum_size - self.n

    def describe(self) -> str:
        return (
            f"ThresholdDissemination(n={self.n}, b={self.byzantine_threshold}, "
            f"m={self.quorum_size})"
        )


class ThresholdMaskingQuorumSystem(ThresholdQuorumSystem):
    """Strict b-masking threshold system.

    Quorums are all subsets of size ``⌈(n+2b+1)/2⌉``; two quorums overlap in
    at least ``2b + 1`` servers, so correct servers out-vote Byzantine ones on
    arbitrary (non-self-verifying) data.

    Raises :class:`ConfigurationError` when ``b`` exceeds the strict bound
    ``⌊(n-1)/4⌋`` — the limitation the probabilistic construction of
    Section 5 removes.
    """

    def __init__(self, n: int, b: int) -> None:
        if b < 1:
            raise ConfigurationError(f"masking systems require b >= 1, got {b}")
        limit = max_masking_threshold(n)
        if b > limit:
            raise ConfigurationError(
                f"strict masking systems require b <= (n-1)/4 = {limit}, got b={b}"
            )
        super().__init__(n, masking_quorum_size(n, b))
        self.byzantine_threshold = int(b)

    def min_overlap(self) -> int:
        """Guaranteed pairwise overlap: ``2m - n >= 2b + 1``."""
        return 2 * self.quorum_size - self.n

    def describe(self) -> str:
        return (
            f"ThresholdMasking(n={self.n}, b={self.byzantine_threshold}, "
            f"m={self.quorum_size})"
        )
