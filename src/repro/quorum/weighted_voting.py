"""Gifford-style weighted voting quorum systems.

Weighted voting [Gif79] assigns each server a non-negative integer number of
votes; a quorum is any set of servers whose votes total at least a threshold
``T`` with ``2T > total votes``, which guarantees intersection.  Weighted
voting generalises the majority system (all weights 1) and the singleton
(one server holds all the votes) and is included as a classic strict
substrate: the paper's related-work discussion situates probabilistic
quorums against exactly this family.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.exceptions import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import Quorum, ServerId


class WeightedVotingQuorumSystem(QuorumSystem):
    """Quorums are sets of servers whose votes reach the threshold.

    Parameters
    ----------
    weights:
        ``weights[s]`` is the number of votes held by server ``s``.  Servers
        may hold zero votes (they then never matter for quorum formation).
    threshold:
        Required vote total ``T``.  Defaults to a strict majority of the
        total votes, ``floor(total/2) + 1``.  Strict intersection requires
        ``2T > total``; violating that raises :class:`ConfigurationError`.
    """

    def __init__(self, weights: Sequence[int], threshold: Optional[int] = None) -> None:
        if not weights:
            raise ConfigurationError("weighted voting needs at least one server")
        if any(w < 0 for w in weights):
            raise ConfigurationError("vote weights must be non-negative")
        super().__init__(len(weights))
        self._weights: List[int] = [int(w) for w in weights]
        total = sum(self._weights)
        if total <= 0:
            raise ConfigurationError("total vote weight must be positive")
        self._total = total
        self._threshold = total // 2 + 1 if threshold is None else int(threshold)
        if self._threshold <= 0 or self._threshold > total:
            raise ConfigurationError(
                f"threshold must lie in (0, {total}], got {self._threshold}"
            )
        if 2 * self._threshold <= total:
            raise ConfigurationError(
                f"strict intersection requires 2*threshold > total votes; "
                f"got threshold={self._threshold}, total={total}"
            )

    # -- structural properties ------------------------------------------------

    @property
    def weights(self) -> List[int]:
        """Per-server vote counts."""
        return list(self._weights)

    @property
    def threshold(self) -> int:
        """Votes required to form a quorum."""
        return self._threshold

    @property
    def total_votes(self) -> int:
        """Sum of all vote weights."""
        return self._total

    def votes_of(self, servers: Set[ServerId]) -> int:
        """Total votes held by a set of servers."""
        return sum(self._weights[s] for s in servers if 0 <= s < self.n)

    def is_quorum(self, servers: Set[ServerId]) -> bool:
        """Whether the given servers hold enough votes to form a quorum."""
        return self.votes_of(servers) >= self._threshold

    def min_quorum_size(self) -> int:
        """Fewest servers whose votes reach the threshold (greedy by weight)."""
        remaining = self._threshold
        count = 0
        for weight in sorted(self._weights, reverse=True):
            if remaining <= 0:
                break
            remaining -= weight
            count += 1
        return count

    def minimal_quorums(self) -> Iterator[Quorum]:
        """Enumerate inclusion-minimal quorums (exponential; small systems only)."""
        import itertools

        n = self.n
        for size in range(1, n + 1):
            for combo in itertools.combinations(range(n), size):
                servers = frozenset(combo)
                if not self.is_quorum(servers):
                    continue
                if any(self.is_quorum(servers - {s}) for s in servers):
                    continue
                yield servers

    def enumerate_quorums(self) -> Iterator[Quorum]:
        return self.minimal_quorums()

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        """Sample a quorum by adding servers in random order until the threshold.

        The resulting quorum is then pruned to be inclusion-minimal so that
        the load induced on servers stays close to what the vote assignment
        suggests.
        """
        rng = rng or random.Random()
        order = list(range(self.n))
        rng.shuffle(order)
        chosen: List[ServerId] = []
        votes = 0
        for server in order:
            if votes >= self._threshold:
                break
            if self._weights[server] == 0:
                continue
            chosen.append(server)
            votes += self._weights[server]
        if votes < self._threshold:
            # All positive-weight servers together reach the total >= threshold,
            # so this cannot happen; guard anyway for safety.
            raise ConfigurationError("unable to assemble a quorum from the vote weights")
        # Prune to a minimal quorum, dropping servers whose votes are not needed.
        for server in sorted(chosen, key=lambda s: self._weights[s]):
            if votes - self._weights[server] >= self._threshold:
                chosen.remove(server)
                votes -= self._weights[server]
        return frozenset(chosen)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        live = [s for s in alive if 0 <= s < self.n and self._weights[s] > 0]
        live.sort(key=lambda s: self._weights[s], reverse=True)
        chosen: List[ServerId] = []
        votes = 0
        for server in live:
            chosen.append(server)
            votes += self._weights[server]
            if votes >= self._threshold:
                return frozenset(chosen)
        return None

    # -- quality measures ------------------------------------------------------

    def load(self) -> float:
        """LP-optimal load over the minimal quorums (exact for small systems)."""
        from repro.quorum.measures import optimal_load

        quorums = list(self.minimal_quorums())
        return optimal_load(quorums, self.n)

    def fault_tolerance(self) -> int:
        """Smallest number of crashes whose remaining votes fall below the threshold.

        Crashing a set ``S`` disables the system iff the surviving votes are
        less than the threshold, so the cheapest attack removes the
        highest-weight servers first.
        """
        order = sorted(range(self.n), key=lambda s: self._weights[s], reverse=True)
        surviving = self._total
        for count, server in enumerate(order, start=1):
            surviving -= self._weights[server]
            if surviving < self._threshold:
                return count
        return self.n

    def failure_probability(self, p: float, trials: int = 20_000, seed: int = 0) -> float:
        """Monte-Carlo ``Fp``: probability that surviving votes miss the threshold."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
        rng = random.Random(seed)
        failures = 0
        for _ in range(trials):
            surviving = sum(w for w in self._weights if rng.random() >= p)
            if surviving < self._threshold:
                failures += 1
        return failures / trials

    def describe(self) -> str:
        return f"WeightedVoting(n={self.n}, T={self._threshold}/{self._total})"
