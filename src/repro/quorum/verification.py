"""Property verification for set systems.

These helpers check, exhaustively over an explicit list of quorums, the
defining overlap properties of the three strict system classes of the paper
(Definitions 2.2 and 2.7).  They are used by the test suite, by the explicit
system constructors (strict intersection) and by users who assemble ad-hoc
set systems and want to know what guarantees they provide.

Each ``verify_*`` function either returns normally or raises
:class:`~repro.exceptions.QuorumPropertyError` naming the offending pair of
quorums; the ``check_*`` variants return a boolean instead of raising.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import QuorumPropertyError
from repro.types import Quorum, make_quorum


def _normalise(quorums: Iterable[Iterable[int]]) -> List[Quorum]:
    normalised = [make_quorum(q) for q in quorums]
    if not normalised:
        raise QuorumPropertyError("a quorum system must contain at least one quorum")
    if any(not q for q in normalised):
        raise QuorumPropertyError("quorums must be non-empty")
    return normalised


def minimum_pairwise_overlap(quorums: Iterable[Iterable[int]]) -> int:
    """The smallest ``|Q ∩ Q'|`` over all pairs of distinct quorums.

    Returns the size of a single quorum when the system has only one quorum
    (every pair condition is vacuous, so the overlap guarantee is unbounded;
    the single quorum's size is the natural finite stand-in).
    """
    normalised = _normalise(quorums)
    if len(normalised) == 1:
        return len(normalised[0])
    return min(
        len(first & second) for first, second in itertools.combinations(normalised, 2)
    )


def find_violating_pair(
    quorums: Iterable[Iterable[int]], required_overlap: int
) -> Optional[Tuple[Quorum, Quorum]]:
    """Return a pair of quorums overlapping in fewer than ``required_overlap`` servers."""
    normalised = _normalise(quorums)
    for first, second in itertools.combinations(normalised, 2):
        if len(first & second) < required_overlap:
            return first, second
    return None


def verify_intersection_property(quorums: Iterable[Iterable[int]]) -> None:
    """Check Definition 2.2: every two quorums intersect (overlap >= 1)."""
    pair = find_violating_pair(quorums, 1)
    if pair is not None:
        first, second = pair
        raise QuorumPropertyError(
            f"quorums {sorted(first)} and {sorted(second)} do not intersect"
        )


def verify_dissemination_property(quorums: Iterable[Iterable[int]], b: int) -> None:
    """Check Definition 2.7 (dissemination): every overlap has size >= b + 1."""
    if b < 0:
        raise QuorumPropertyError(f"Byzantine threshold must be non-negative, got {b}")
    pair = find_violating_pair(quorums, b + 1)
    if pair is not None:
        first, second = pair
        overlap = len(first & second)
        raise QuorumPropertyError(
            f"quorums {sorted(first)} and {sorted(second)} overlap in only "
            f"{overlap} servers; a {b}-dissemination system needs at least {b + 1}"
        )


def verify_masking_property(quorums: Iterable[Iterable[int]], b: int) -> None:
    """Check Definition 2.7 (masking): every overlap has size >= 2b + 1."""
    if b < 0:
        raise QuorumPropertyError(f"Byzantine threshold must be non-negative, got {b}")
    pair = find_violating_pair(quorums, 2 * b + 1)
    if pair is not None:
        first, second = pair
        overlap = len(first & second)
        raise QuorumPropertyError(
            f"quorums {sorted(first)} and {sorted(second)} overlap in only "
            f"{overlap} servers; a {b}-masking system needs at least {2 * b + 1}"
        )


def check_intersection_property(quorums: Iterable[Iterable[int]]) -> bool:
    """Boolean variant of :func:`verify_intersection_property`."""
    try:
        verify_intersection_property(quorums)
    except QuorumPropertyError:
        return False
    return True


def check_dissemination_property(quorums: Iterable[Iterable[int]], b: int) -> bool:
    """Boolean variant of :func:`verify_dissemination_property`."""
    try:
        verify_dissemination_property(quorums, b)
    except QuorumPropertyError:
        return False
    return True


def check_masking_property(quorums: Iterable[Iterable[int]], b: int) -> bool:
    """Boolean variant of :func:`verify_masking_property`."""
    try:
        verify_masking_property(quorums, b)
    except QuorumPropertyError:
        return False
    return True


def classify_overlap(quorums: Iterable[Iterable[int]]) -> dict:
    """Describe what the given set system guarantees.

    Returns a dictionary with the minimum pairwise overlap, the largest ``b``
    for which the system is a strict b-dissemination system
    (``min_overlap - 1``) and the largest ``b`` for which it is a strict
    b-masking system (``(min_overlap - 1) // 2``); both are ``-1`` if the
    system is not even intersecting.
    """
    overlap = minimum_pairwise_overlap(quorums)
    return {
        "min_overlap": overlap,
        "max_dissemination_b": overlap - 1,
        "max_masking_b": (overlap - 1) // 2 if overlap >= 1 else -1,
        "is_strict": overlap >= 1,
    }
