"""The strict quorum system abstraction (Definitions 2.1 and 2.2).

A strict quorum system over a universe ``U`` of ``n`` servers is a set of
subsets of ``U`` (the *quorums*), every two of which intersect.  Concrete
constructions fall into two families:

* *implicit* systems whose quorums are described by a rule (every subset of
  size ``m``, one grid row plus one grid column, ...) and may be far too
  numerous to enumerate — these subclass :class:`QuorumSystem` directly and
  override the analytic measures with closed forms;
* *explicit* systems given by an enumerated list of quorums —
  :class:`ExplicitQuorumSystem` — for which the measures are computed exactly
  (LP-optimal load, minimum-hitting-set fault tolerance, Monte-Carlo failure
  probability).

The interface is deliberately small: the protocol and simulation layers only
ever need to *sample* a quorum according to the system's access strategy and
to *find a live quorum* among a set of currently reachable servers.
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.exceptions import ConfigurationError, QuorumPropertyError
from repro.types import Quorum, QuorumCollection, ServerId, SystemProfile, make_quorum

#: Enumerating more quorums than this raises instead of exhausting memory.
ENUMERATION_LIMIT = 2_000_000


class QuorumSystem(abc.ABC):
    """Abstract base class for strict quorum systems.

    Subclasses must implement quorum sampling, live-quorum discovery and the
    minimum quorum size; they should override the measure methods
    (:meth:`load`, :meth:`fault_tolerance`, :meth:`failure_probability`)
    whenever a closed form exists.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"universe must contain at least one server, got n={n}")
        self._n = int(n)

    # -- structural properties ------------------------------------------------

    @property
    def n(self) -> int:
        """Number of servers in the universe."""
        return self._n

    @property
    def universe(self) -> Quorum:
        """The full universe ``{0, ..., n-1}``."""
        return frozenset(range(self._n))

    @property
    def name(self) -> str:
        """Human readable name of the construction."""
        return type(self).__name__

    @abc.abstractmethod
    def min_quorum_size(self) -> int:
        """Size of the smallest quorum, ``c(Q)`` in the paper's notation."""

    @abc.abstractmethod
    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        """Draw one quorum according to the system's access strategy.

        For strict systems the canonical strategy is uniform over quorums (or
        over a symmetric subfamily); subclasses document their choice.
        """

    @abc.abstractmethod
    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        """Return a quorum entirely contained in ``alive``, or ``None``.

        Used by the failure-probability estimators and by the protocol layer
        when retrying an operation around crashed servers.
        """

    def enumerate_quorums(self) -> Iterator[Quorum]:
        """Yield every quorum of the system.

        Implicit systems with astronomically many quorums raise
        :class:`NotImplementedError`; callers that need exhaustive access
        should check :meth:`is_enumerable` first.
        """
        raise NotImplementedError(f"{self.name} does not support quorum enumeration")

    def is_enumerable(self) -> bool:
        """Whether :meth:`enumerate_quorums` is supported and tractable."""
        try:
            iterator = self.enumerate_quorums()
        except NotImplementedError:
            return False
        # Peek a single element to make sure the generator actually works.
        next(iter(iterator), None)
        return True

    def is_quorum_available(self, alive: Set[ServerId]) -> bool:
        """Whether some quorum survives when only ``alive`` servers are up."""
        return self.find_live_quorum(alive) is not None

    # -- quality measures ------------------------------------------------------

    @abc.abstractmethod
    def load(self) -> float:
        """The load ``L(Q)`` of the system (Definition 2.4)."""

    @abc.abstractmethod
    def fault_tolerance(self) -> int:
        """The fault tolerance ``A(Q)`` of the system (Definition 2.5)."""

    @abc.abstractmethod
    def failure_probability(self, p: float) -> float:
        """The failure probability ``Fp(Q)`` (Definition 2.6)."""

    def profile(self) -> SystemProfile:
        """Summarise the system's quality measures in a :class:`SystemProfile`."""
        return SystemProfile(
            name=self.describe(),
            n=self.n,
            quorum_size=self.min_quorum_size(),
            load=self.load(),
            fault_tolerance=self.fault_tolerance(),
            epsilon=0.0,
            byzantine_threshold=getattr(self, "byzantine_threshold", 0),
        )

    def describe(self) -> str:
        """A short parameterised description, e.g. ``Majority(n=100)``."""
        return f"{self.name}(n={self.n})"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return self.describe()


class ExplicitQuorumSystem(QuorumSystem):
    """A strict quorum system given by an explicit list of quorums.

    Parameters
    ----------
    n:
        Universe size.
    quorums:
        The quorums.  Every quorum must be a non-empty subset of the
        universe.
    validate:
        When true (the default), verify the pairwise intersection property of
        Definition 2.2 and raise :class:`QuorumPropertyError` if it fails.
        Pass ``False`` to build a plain set system (e.g. as raw material for
        the probabilistic wrappers, which do not require strict
        intersection).
    """

    def __init__(
        self,
        n: int,
        quorums: Iterable[Iterable[ServerId]],
        validate: bool = True,
    ) -> None:
        super().__init__(n)
        normalised: List[Quorum] = []
        seen = set()
        for raw in quorums:
            quorum = make_quorum(raw)
            if not quorum:
                raise ConfigurationError("quorums must be non-empty")
            if not quorum <= self.universe:
                raise ConfigurationError(
                    f"quorum {sorted(quorum)} is not contained in the universe of size {n}"
                )
            if quorum not in seen:
                seen.add(quorum)
                normalised.append(quorum)
        if not normalised:
            raise ConfigurationError("a quorum system must contain at least one quorum")
        self._quorums: QuorumCollection = tuple(normalised)
        if validate:
            self._validate_intersection()

    def _validate_intersection(self) -> None:
        for first, second in itertools.combinations(self._quorums, 2):
            if not first & second:
                raise QuorumPropertyError(
                    f"quorums {sorted(first)} and {sorted(second)} do not intersect"
                )

    # -- structural properties ------------------------------------------------

    @property
    def quorums(self) -> QuorumCollection:
        """The explicit tuple of quorums."""
        return self._quorums

    def __len__(self) -> int:
        return len(self._quorums)

    def enumerate_quorums(self) -> Iterator[Quorum]:
        return iter(self._quorums)

    def min_quorum_size(self) -> int:
        return min(len(q) for q in self._quorums)

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        rng = rng or random.Random()
        return rng.choice(self._quorums)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        alive_set = frozenset(alive)
        for quorum in self._quorums:
            if quorum <= alive_set:
                return quorum
        return None

    # -- quality measures ------------------------------------------------------

    def load(self) -> float:
        """LP-optimal load over all access strategies (Definition 2.4)."""
        from repro.quorum.measures import optimal_load

        return optimal_load(self._quorums, self.n)

    def fault_tolerance(self) -> int:
        """Exact fault tolerance via a minimum hitting set (Definition 2.5)."""
        from repro.quorum.measures import fault_tolerance_exact

        return fault_tolerance_exact(self._quorums, self.n)

    def failure_probability(self, p: float, trials: int = 20_000, seed: int = 0) -> float:
        """Monte-Carlo failure probability (Definition 2.6)."""
        from repro.analysis.failure_probability import monte_carlo_failure_probability

        return monte_carlo_failure_probability(self._quorums, self.n, p, trials=trials, seed=seed)

    def describe(self) -> str:
        return f"Explicit(n={self.n}, m={len(self._quorums)})"


def enumerate_subsets_of_size(n: int, size: int) -> Iterator[Quorum]:
    """Yield every subset of ``{0..n-1}`` of the given size as a quorum.

    Raises :class:`ConfigurationError` if the number of subsets exceeds
    :data:`ENUMERATION_LIMIT`, to protect callers from accidentally asking
    for an astronomically large enumeration.
    """
    import math

    if not 0 < size <= n:
        raise ConfigurationError(f"subset size must lie in (0, {n}], got {size}")
    count = math.comb(n, size)
    if count > ENUMERATION_LIMIT:
        raise ConfigurationError(
            f"refusing to enumerate {count} subsets of size {size} from a universe of {n}"
        )
    for combo in itertools.combinations(range(n), size):
        yield frozenset(combo)


def sample_subset(n: int, size: int, rng: Optional[random.Random] = None) -> Quorum:
    """Sample a uniformly random subset of ``{0..n-1}`` of the given size."""
    if not 0 < size <= n:
        raise ConfigurationError(f"subset size must lie in (0, {n}], got {size}")
    rng = rng or random.Random()
    return frozenset(rng.sample(range(n), size))


def membership_matrix(quorums: Sequence[Iterable[int]], n: int) -> "np.ndarray":
    """Boolean ``(len(quorums), n)`` matrix marking each quorum's servers.

    The shared kernel of every batched path that reduces quorum logic to
    array membership (strategy sampling, empirical load, Monte-Carlo
    failure probability).  Rejects server ids outside ``{0..n-1}``.
    """
    import numpy as np

    member = np.zeros((len(quorums), n), dtype=bool)
    for idx, quorum in enumerate(quorums):
        for server in quorum:
            if not 0 <= server < n:
                raise ConfigurationError(
                    f"server {server} outside the universe of size {n}"
                )
            member[idx, server] = True
    return member


def sample_subset_batch(n: int, size: int, trials: int, generator) -> "np.ndarray":
    """Sample ``trials`` uniformly random size-``size`` subsets in one call.

    Returns an ``(trials, size)`` integer matrix whose rows are the sampled
    access sets (distinct ids, unordered).  Each row is drawn by ranking a
    row of i.i.d. uniforms and keeping the ``size`` smallest ranks, which is
    exactly a uniform draw without replacement — the vectorised equivalent
    of :func:`sample_subset`.  ``generator`` is a
    :class:`numpy.random.Generator`; callers chunk the trial count to keep
    the ``(trials, n)`` scratch matrix bounded.
    """
    import numpy as np

    if not 0 < size <= n:
        raise ConfigurationError(f"subset size must lie in (0, {n}], got {size}")
    if trials < 0:
        raise ConfigurationError(f"trial count must be non-negative, got {trials}")
    if size == n:
        return np.broadcast_to(np.arange(n), (trials, n)).copy()
    ranks = generator.random((trials, n))
    return np.argpartition(ranks, size - 1, axis=1)[:, :size].copy()
