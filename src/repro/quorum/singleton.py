"""The singleton quorum system: a single designated server.

The singleton is degenerate but important: for crash probability
``p >= 1/2`` it is the *most available* strict quorum system (failure
probability exactly ``p``), which is why it forms one arm of the strict
lower-bound curve in Figures 1-3 (footnote 3 of the paper).
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Set

from repro.exceptions import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import Quorum, ServerId


class SingletonQuorumSystem(QuorumSystem):
    """The system whose only quorum is ``{leader}``.

    Parameters
    ----------
    n:
        Universe size (the other ``n - 1`` servers simply never appear in a
        quorum).
    leader:
        The designated server; defaults to server ``0``.
    """

    def __init__(self, n: int, leader: ServerId = 0) -> None:
        super().__init__(n)
        if not 0 <= leader < n:
            raise ConfigurationError(f"leader must lie in [0, {n}), got {leader}")
        self._leader = int(leader)

    @property
    def leader(self) -> ServerId:
        """The single server every operation contacts."""
        return self._leader

    def min_quorum_size(self) -> int:
        return 1

    def enumerate_quorums(self) -> Iterator[Quorum]:
        yield frozenset({self._leader})

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        return frozenset({self._leader})

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        if self._leader in alive:
            return frozenset({self._leader})
        return None

    def load(self) -> float:
        """The leader handles every access: load 1."""
        return 1.0

    def fault_tolerance(self) -> int:
        """One crash (the leader's) disables the system."""
        return 1

    def failure_probability(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
        return p

    def describe(self) -> str:
        return f"Singleton(n={self.n}, leader={self._leader})"
