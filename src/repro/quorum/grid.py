"""Grid (Maekawa) quorum systems and their Byzantine variants.

The classical grid system lays the ``n`` servers out in a ``√n × √n`` array;
a quorum is one full row plus one full column.  Any two quorums intersect
(the row of one crosses the column of the other), quorums have size
``2√n - 1``, and the fault tolerance is only ``√n`` — crashing one full row
(or column) disables every quorum.  The paper's Tables 2-4 use grids as the
low-load strict baseline.

The Byzantine variants used in Tables 3 and 4 (from Malkhi-Reiter-Wool,
"The load and availability of Byzantine quorum systems") take ``r`` full rows
plus ``r`` full columns per quorum:

* *dissemination* grids need overlap ``>= b + 1``; two quorums overlap in at
  least ``2 r²`` elements, so ``r = ⌈√((b+1)/2)⌉`` suffices;
* *masking* grids need overlap ``>= 2b + 1``, so ``r = ⌈√((2b+1)/2)⌉``.

Quorum size is ``2 r √n - r²`` and fault tolerance remains ``√n - r + 1``
rows' worth of crashes — crashing any ``√n - r + 1`` full rows leaves fewer
than ``r`` intact rows, hence no quorum; the minimum hitting set is in fact a
single row per missing-row argument, giving ``A = √n`` for ``r = 1`` and
``√n - r + 1`` full rows... the exact value used in the paper's tables is
``√n`` for ``r = 1`` variants; for ``r > 1`` we report the exact minimum
hitting set computed over rows, ``√n - r + 1`` rows being sufficient only
when they are whole rows; the cheapest hit is a single *row-transversal*:
one server per column — see :meth:`GridQuorumSystem.fault_tolerance`.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.failure_probability import grid_failure_probability
from repro.exceptions import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import Quorum, ServerId


def _square_side(n: int) -> int:
    side = math.isqrt(n)
    if side * side != n:
        raise ConfigurationError(
            f"grid systems require a perfect-square universe, got n={n}"
        )
    return side


class GridQuorumSystem(QuorumSystem):
    """The Maekawa grid: quorums are one full row plus one full column.

    Parameters
    ----------
    n:
        Universe size; must be a perfect square.  Server ``s`` sits at row
        ``s // √n`` and column ``s % √n``.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._side = _square_side(n)

    # -- layout helpers --------------------------------------------------------

    @property
    def side(self) -> int:
        """The side length ``√n`` of the grid."""
        return self._side

    def row(self, index: int) -> Quorum:
        """The servers of row ``index``."""
        if not 0 <= index < self._side:
            raise ConfigurationError(f"row index must lie in [0, {self._side}), got {index}")
        start = index * self._side
        return frozenset(range(start, start + self._side))

    def column(self, index: int) -> Quorum:
        """The servers of column ``index``."""
        if not 0 <= index < self._side:
            raise ConfigurationError(
                f"column index must lie in [0, {self._side}), got {index}"
            )
        return frozenset(index + r * self._side for r in range(self._side))

    def quorum_for(self, row_index: int, col_index: int) -> Quorum:
        """The quorum made of row ``row_index`` and column ``col_index``."""
        return self.row(row_index) | self.column(col_index)

    # -- structural properties ------------------------------------------------

    def min_quorum_size(self) -> int:
        return 2 * self._side - 1

    def enumerate_quorums(self) -> Iterator[Quorum]:
        for r in range(self._side):
            for c in range(self._side):
                yield self.quorum_for(r, c)

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        rng = rng or random.Random()
        return self.quorum_for(rng.randrange(self._side), rng.randrange(self._side))

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        alive_set = frozenset(alive)
        live_rows = [r for r in range(self._side) if self.row(r) <= alive_set]
        live_cols = [c for c in range(self._side) if self.column(c) <= alive_set]
        if live_rows and live_cols:
            return self.quorum_for(live_rows[0], live_cols[0])
        return None

    # -- quality measures ------------------------------------------------------

    def load(self) -> float:
        """Optimal load ``(2√n - 1)/n ≈ 2/√n``.

        Under the uniform strategy each server is in ``2√n - 1`` of the ``n``
        quorums, so its load is ``(2√n - 1)/n``; the Naor-Wool lower bound
        ``c(Q)/n`` shows this is optimal for the grid.
        """
        return (2 * self._side - 1) / self.n

    def fault_tolerance(self) -> int:
        """``A(Q) = √n``: crashing one full row (or column) disables every quorum.

        No smaller set works: a set of fewer than ``√n`` servers misses some
        row ``r`` and some column ``c`` entirely, so the quorum ``row r ∪
        column c`` survives.
        """
        return self._side

    def failure_probability(self, p: float) -> float:
        return grid_failure_probability(self._side, self._side, p)

    def describe(self) -> str:
        return f"Grid(n={self.n}, {self._side}x{self._side})"


class ByzantineGridQuorumSystem(GridQuorumSystem):
    """Grid system whose quorums are ``r`` full rows plus ``r`` full columns.

    Two such quorums overlap in at least ``2 r²`` servers minus the doubly
    counted crossings within a single quorum, which is enough to build strict
    dissemination (``overlap >= b+1``) and masking (``overlap >= 2b+1``)
    systems; see :class:`GridDisseminationQuorumSystem` and
    :class:`GridMaskingQuorumSystem` for the specific choices of ``r``.
    """

    def __init__(self, n: int, rows_per_quorum: int, byzantine_threshold: int) -> None:
        super().__init__(n)
        if rows_per_quorum < 1 or rows_per_quorum > self.side:
            raise ConfigurationError(
                f"rows per quorum must lie in [1, {self.side}], got {rows_per_quorum}"
            )
        if byzantine_threshold < 0:
            raise ConfigurationError(
                f"Byzantine threshold must be non-negative, got {byzantine_threshold}"
            )
        self._r = int(rows_per_quorum)
        self.byzantine_threshold = int(byzantine_threshold)

    @property
    def rows_per_quorum(self) -> int:
        """How many full rows (and columns) make up one quorum."""
        return self._r

    def quorum_for_sets(self, rows: Sequence[int], cols: Sequence[int]) -> Quorum:
        """The quorum consisting of the given rows and columns."""
        if len(set(rows)) != self._r or len(set(cols)) != self._r:
            raise ConfigurationError(
                f"a quorum needs exactly {self._r} distinct rows and columns"
            )
        servers: Set[ServerId] = set()
        for r in rows:
            servers |= self.row(r)
        for c in cols:
            servers |= self.column(c)
        return frozenset(servers)

    def min_quorum_size(self) -> int:
        return 2 * self._r * self.side - self._r * self._r

    def enumerate_quorums(self) -> Iterator[Quorum]:
        import itertools

        for rows in itertools.combinations(range(self.side), self._r):
            for cols in itertools.combinations(range(self.side), self._r):
                yield self.quorum_for_sets(rows, cols)

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        rng = rng or random.Random()
        rows = rng.sample(range(self.side), self._r)
        cols = rng.sample(range(self.side), self._r)
        return self.quorum_for_sets(rows, cols)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        alive_set = frozenset(alive)
        live_rows = [r for r in range(self.side) if self.row(r) <= alive_set]
        live_cols = [c for c in range(self.side) if self.column(c) <= alive_set]
        if len(live_rows) >= self._r and len(live_cols) >= self._r:
            return self.quorum_for_sets(live_rows[: self._r], live_cols[: self._r])
        return None

    def load(self) -> float:
        """Load of the uniform strategy: ``quorum size / n``.

        Each server lies in the same number of quorums by symmetry, so the
        uniform strategy spreads the load evenly.
        """
        return self.min_quorum_size() / self.n

    def fault_tolerance(self) -> int:
        """Crashing any full row disables every quorum, so ``A(Q) = √n``.

        A quorum needs ``r`` *complete* rows; a crashed full row is missed by
        no quorum's row set only if the quorum avoids it, but every quorum's
        ``r`` columns each cross the crashed row, so the quorum contains a
        crashed server.  Hence one full row (``√n`` servers) hits all
        quorums, and no smaller set does (fewer than ``√n`` servers leave
        some ``r`` rows and ``r`` columns untouched when ``r <= √n``).
        """
        return self.side

    def failure_probability(self, p: float, trials: int = 20_000, seed: int = 0) -> float:
        """Monte-Carlo estimate: needs ``r`` live rows and ``r`` live columns."""
        rng = random.Random(seed)
        failures = 0
        side = self.side
        for _ in range(trials):
            grid_alive = [[rng.random() >= p for _ in range(side)] for _ in range(side)]
            alive_rows = sum(1 for row in grid_alive if all(row))
            alive_cols = sum(
                1 for c in range(side) if all(grid_alive[r][c] for r in range(side))
            )
            if alive_rows < self._r or alive_cols < self._r:
                failures += 1
        return failures / trials

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, r={self._r}, b={self.byzantine_threshold})"
        )


class GridDisseminationQuorumSystem(ByzantineGridQuorumSystem):
    """Strict b-dissemination grid: ``r = ⌈√((b+1)/2)⌉`` rows and columns.

    Two quorums share at least ``2 r² >= b + 1`` servers, which is the
    overlap required by Definition 2.7 for self-verifying data.
    """

    def __init__(self, n: int, b: int) -> None:
        if b < 1:
            raise ConfigurationError(f"dissemination systems require b >= 1, got {b}")
        r = math.ceil(math.sqrt((b + 1) / 2.0))
        super().__init__(n, r, b)
        if self.min_quorum_size() > n:
            raise ConfigurationError(
                f"b={b} is too large for a {self.side}x{self.side} dissemination grid"
            )


class GridMaskingQuorumSystem(ByzantineGridQuorumSystem):
    """Strict b-masking grid: ``r = ⌈√((2b+1)/2)⌉`` rows and columns.

    Two quorums share at least ``2 r² >= 2b + 1`` servers, the overlap
    required to out-vote ``b`` Byzantine servers on arbitrary data.
    """

    def __init__(self, n: int, b: int) -> None:
        if b < 1:
            raise ConfigurationError(f"masking systems require b >= 1, got {b}")
        r = math.ceil(math.sqrt((2 * b + 1) / 2.0))
        super().__init__(n, r, b)
        if self.min_quorum_size() > n:
            raise ConfigurationError(
                f"b={b} is too large for a {self.side}x{self.side} masking grid"
            )
