"""Threshold (voting) quorum systems, including the simple majority system.

A threshold system with quorum size ``m > n/2`` takes every subset of size
``m`` as a quorum.  It is the strict baseline used throughout Section 6 of
the paper: Figures 1-3 compare the probabilistic constructions against
threshold systems with quorum sizes ``⌈(n+1)/2⌉`` (plain), ``⌈(n+b+1)/2⌉``
(dissemination) and ``⌈(n+2b+1)/2⌉`` (masking), and Tables 2-4 report their
quorum sizes and fault tolerance.

Because the quorums are all subsets of a fixed size, every measure has a
closed form:

* load ``m/n`` (achieved by the uniform strategy, and optimal);
* fault tolerance ``n - m + 1``;
* failure probability ``P(Bin(n, p) > n - m)`` — the system is disabled
  exactly when fewer than ``m`` servers survive.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Set

from repro.analysis.failure_probability import threshold_failure_probability
from repro.exceptions import ConfigurationError
from repro.quorum.base import QuorumSystem, enumerate_subsets_of_size, sample_subset
from repro.types import Quorum, ServerId


class ThresholdQuorumSystem(QuorumSystem):
    """The system whose quorums are all subsets of size ``quorum_size``.

    Parameters
    ----------
    n:
        Universe size.
    quorum_size:
        Common size ``m`` of every quorum.  Strict intersection requires
        ``m > n/2``; set ``require_intersection=False`` to build a
        non-intersecting uniform set system (used as raw material by the
        probabilistic constructions and in tests).
    require_intersection:
        Enforce ``2 m > n`` (the strict intersection property).
    """

    def __init__(self, n: int, quorum_size: int, require_intersection: bool = True) -> None:
        super().__init__(n)
        if not 0 < quorum_size <= n:
            raise ConfigurationError(
                f"quorum size must lie in (0, {n}], got {quorum_size}"
            )
        if require_intersection and 2 * quorum_size <= n:
            raise ConfigurationError(
                f"a strict threshold system needs quorum size > n/2; "
                f"got m={quorum_size} for n={n}"
            )
        self._quorum_size = int(quorum_size)

    # -- structural properties ------------------------------------------------

    @property
    def quorum_size(self) -> int:
        """The common quorum size ``m``."""
        return self._quorum_size

    def min_quorum_size(self) -> int:
        return self._quorum_size

    def enumerate_quorums(self) -> Iterator[Quorum]:
        return enumerate_subsets_of_size(self.n, self._quorum_size)

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        return sample_subset(self.n, self._quorum_size, rng)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        live = sorted(s for s in alive if 0 <= s < self.n)
        if len(live) < self._quorum_size:
            return None
        return frozenset(live[: self._quorum_size])

    # -- quality measures ------------------------------------------------------

    def load(self) -> float:
        """Optimal load ``m / n``, achieved by the uniform strategy.

        Every server belongs to the same number of quorums, so the uniform
        strategy induces load ``m/n`` on every server; by the Naor-Wool bound
        ``L(Q) >= c(Q)/n`` this is optimal.
        """
        return self._quorum_size / self.n

    def fault_tolerance(self) -> int:
        """``A(Q) = n - m + 1``: kill that many servers and no quorum survives."""
        return self.n - self._quorum_size + 1

    def failure_probability(self, p: float) -> float:
        return threshold_failure_probability(self.n, self._quorum_size, p)

    def describe(self) -> str:
        return f"Threshold(n={self.n}, m={self._quorum_size})"


class MajorityQuorumSystem(ThresholdQuorumSystem):
    """The simple majority system: quorums are all subsets of size ``⌈(n+1)/2⌉``.

    This is the most available strict quorum system for crash probability
    ``p < 1/2`` and the strict baseline on the left-hand side of Figure 1.
    """

    def __init__(self, n: int) -> None:
        # ⌈(n+1)/2⌉ == floor(n/2) + 1 for every n >= 1.
        quorum_size = n // 2 + 1
        super().__init__(n, quorum_size)

    def describe(self) -> str:
        return f"Majority(n={self.n}, m={self.quorum_size})"
