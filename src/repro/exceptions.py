"""Exception hierarchy for the probabilistic quorum systems library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so a
caller can catch everything coming out of the library with a single handler
while still distinguishing configuration mistakes from runtime protocol
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A quorum system, strategy or protocol was constructed with invalid parameters.

    Examples: a quorum size larger than the universe, a Byzantine threshold
    ``b`` that exceeds what the construction supports, or a probability that
    is outside ``(0, 1)``.
    """


class StrategyError(ConfigurationError):
    """An access strategy is malformed (weights negative or not summing to one)."""


class QuorumPropertyError(ReproError):
    """A set system does not satisfy the quorum property it claims to satisfy.

    Raised by the verification helpers in :mod:`repro.quorum.verification`
    when, for example, two quorums of a "strict" system fail to intersect, or
    the overlap of a ``b``-masking system is smaller than ``2b + 1``.
    """


class QuorumUnavailableError(ReproError):
    """No live quorum could be assembled for an operation.

    Raised by the protocol layer when, after failures, the client cannot
    collect responses from every server of its chosen quorum.
    """


class ProtocolError(ReproError):
    """A replicated-data protocol violated one of its preconditions.

    Examples: two distinct writers using a single-writer register, or a
    client submitting a timestamp that is not monotonically increasing.
    """


class VerificationError(ProtocolError):
    """Self-verifying data failed verification (a forged or corrupted value)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent internal state."""


class ServiceError(ReproError):
    """The asyncio service layer failed outside the protocol's own semantics."""


class RpcTimeoutError(ServiceError):
    """A single RPC exceeded its deadline (dropped message or silent server)."""


class WireFormatError(ServiceError):
    """A socket-transport frame was malformed (bad tag, oversized, or truncated)."""


class ExperimentError(ReproError):
    """An experiment/benchmark harness was asked for an unknown table or figure."""
