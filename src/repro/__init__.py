"""Probabilistic quorum systems.

A reproduction of "Probabilistic Quorum Systems" (Malkhi, Reiter, Wool,
Wright; PODC 1997 / Information and Computation 2001) as a reusable Python
library: ε-intersecting, (b,ε)-dissemination and (b,ε)-masking quorum
systems, the strict quorum systems they are compared against, replicated
variable protocols built on them, a crash/Byzantine server simulation, and
an experiment harness that regenerates every table and figure of the paper's
evaluation.

Quickstart
----------

>>> from repro import UniformEpsilonIntersectingSystem
>>> system = UniformEpsilonIntersectingSystem.for_epsilon(n=100, epsilon=1e-3)
>>> system.quorum_size >= 20        # Θ(√n) quorums ...
True
>>> system.load() == system.quorum_size / 100   # ... with O(1/√n) load ...
True
>>> system.fault_tolerance() == 100 - system.quorum_size + 1
True

See ``examples/quickstart.py`` for a guided tour and ``DESIGN.md`` for the
full system inventory.
"""

from repro.core import (
    AccessStrategy,
    EpsilonIntersectingSystem,
    ExplicitStrategy,
    ProbabilisticDisseminationSystem,
    ProbabilisticMaskingSystem,
    ProbabilisticQuorumSystem,
    UniformEpsilonIntersectingSystem,
    UniformSubsetStrategy,
    corollary_3_12_load_bound,
    ell_for_quorum_size,
    masking_load_lower_bound,
    minimal_quorum_size_for_dissemination,
    minimal_quorum_size_for_epsilon,
    minimal_quorum_size_for_masking,
    probabilistic_load_lower_bound,
    strict_load_lower_bound,
    strict_resilience_bound,
    table1_bounds,
)
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    QuorumPropertyError,
    QuorumUnavailableError,
    ReproError,
    RpcTimeoutError,
    ServiceError,
    SimulationError,
    StrategyError,
    VerificationError,
)
from repro.quorum import (
    ExplicitQuorumSystem,
    GridDisseminationQuorumSystem,
    GridMaskingQuorumSystem,
    GridQuorumSystem,
    MajorityQuorumSystem,
    QuorumSystem,
    SingletonQuorumSystem,
    ThresholdDisseminationQuorumSystem,
    ThresholdMaskingQuorumSystem,
    ThresholdQuorumSystem,
    WeightedVotingQuorumSystem,
)
from repro.types import FailureCurvePoint, Quorum, ServerId, SystemProfile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AccessStrategy",
    "UniformSubsetStrategy",
    "ExplicitStrategy",
    "ProbabilisticQuorumSystem",
    "EpsilonIntersectingSystem",
    "UniformEpsilonIntersectingSystem",
    "ProbabilisticDisseminationSystem",
    "ProbabilisticMaskingSystem",
    "minimal_quorum_size_for_epsilon",
    "minimal_quorum_size_for_dissemination",
    "minimal_quorum_size_for_masking",
    "ell_for_quorum_size",
    "probabilistic_load_lower_bound",
    "corollary_3_12_load_bound",
    "masking_load_lower_bound",
    "strict_load_lower_bound",
    "strict_resilience_bound",
    "table1_bounds",
    # strict quorum substrate
    "QuorumSystem",
    "ExplicitQuorumSystem",
    "MajorityQuorumSystem",
    "ThresholdQuorumSystem",
    "GridQuorumSystem",
    "GridDisseminationQuorumSystem",
    "GridMaskingQuorumSystem",
    "SingletonQuorumSystem",
    "WeightedVotingQuorumSystem",
    "ThresholdDisseminationQuorumSystem",
    "ThresholdMaskingQuorumSystem",
    # shared types
    "Quorum",
    "ServerId",
    "SystemProfile",
    "FailureCurvePoint",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "StrategyError",
    "QuorumPropertyError",
    "QuorumUnavailableError",
    "ProtocolError",
    "VerificationError",
    "SimulationError",
    "ServiceError",
    "RpcTimeoutError",
    "ExperimentError",
]
