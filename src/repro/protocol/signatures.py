"""Simulated self-verifying data.

Dissemination quorum systems (Section 4) assume *self-verifying* data:
"data that servers can suppress but not undetectably alter (such as
digitally signed data)".  The only property the paper relies on is that a
faulty server cannot forge a value/timestamp pair it has never been given.

A real deployment would use public-key signatures; for an in-process
simulation a keyed hash (HMAC-SHA256) over a canonical encoding of the
variable name, value and timestamp provides exactly the same guarantee
against the simulated adversary, because Byzantine *servers* never learn the
writer's key (only clients hold it).  This substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import VerificationError
from repro.protocol.timestamps import Timestamp


@dataclass(frozen=True)
class SignedPayload:
    """A value/timestamp pair together with its signature."""

    variable: str
    value: Any
    timestamp: Timestamp
    signature: bytes


def _canonical_encoding(variable: str, value: Any, timestamp: Timestamp) -> bytes:
    """Deterministically encode the signed fields.

    ``json`` with sorted keys keeps the encoding canonical for the basic
    value types the protocols and applications use (strings, numbers,
    booleans, lists, dicts); anything else falls back to ``repr``, which is
    adequate for a simulation where both signer and verifier run in the same
    process.
    """
    try:
        value_part = json.dumps(value, sort_keys=True, default=repr)
    except TypeError:  # pragma: no cover - json with default=repr rarely fails
        value_part = repr(value)
    blob = {
        "variable": variable,
        "value": value_part,
        "counter": timestamp.counter,
        "writer": timestamp.writer_id,
    }
    return json.dumps(blob, sort_keys=True).encode("utf-8")


class SignatureScheme:
    """HMAC-based stand-in for the writer's digital signature.

    Parameters
    ----------
    key:
        The writer's secret.  Clients (writer and readers) hold it; simulated
        servers never see it, so Byzantine servers cannot produce valid
        signatures for values that were never written.
    """

    def __init__(self, key: bytes = b"probabilistic-quorums") -> None:
        if not key:
            raise VerificationError("the signing key must be non-empty")
        self._key = bytes(key)

    def sign(self, variable: str, value: Any, timestamp: Timestamp) -> bytes:
        """Sign a value/timestamp pair for a variable."""
        encoded = _canonical_encoding(variable, value, timestamp)
        return hmac.new(self._key, encoded, hashlib.sha256).digest()

    def signed_payload(self, variable: str, value: Any, timestamp: Timestamp) -> SignedPayload:
        """Convenience constructor returning the full :class:`SignedPayload`."""
        return SignedPayload(
            variable=variable,
            value=value,
            timestamp=timestamp,
            signature=self.sign(variable, value, timestamp),
        )

    def verify(
        self,
        variable: str,
        value: Any,
        timestamp: Timestamp,
        signature: Optional[bytes],
    ) -> bool:
        """Whether ``signature`` is the writer's signature on these fields."""
        if not signature:
            return False
        expected = self.sign(variable, value, timestamp)
        return hmac.compare_digest(expected, signature)

    def require_valid(
        self,
        variable: str,
        value: Any,
        timestamp: Timestamp,
        signature: Optional[bytes],
    ) -> None:
        """Raise :class:`VerificationError` unless the signature verifies."""
        if not self.verify(variable, value, timestamp, signature):
            raise VerificationError(
                f"signature verification failed for variable {variable!r} "
                f"at timestamp {timestamp}"
            )
