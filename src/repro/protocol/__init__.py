"""Replicated-variable protocols built on probabilistic quorum systems.

Section 3.1 of the paper gives a single-writer, multi-reader access protocol
that approximates a *safe* variable; Sections 4 and 5 adapt the read side
for Byzantine environments with and without self-verifying data.  This
subpackage implements all three against the
:class:`~repro.simulation.cluster.Cluster` facade:

* :mod:`repro.protocol.timestamps` — writer-local monotone timestamps;
* :mod:`repro.protocol.signatures` — simulated self-verifying data (keyed
  hashes standing in for digital signatures);
* :mod:`repro.protocol.variable` — the ε-intersecting protocol of §3.1;
* :mod:`repro.protocol.dissemination_variable` — the verifiable-data
  protocol of §4;
* :mod:`repro.protocol.masking_variable` — the threshold-read protocol of
  §5;
* :mod:`repro.protocol.lock` — quorum-based advisory locks (the Phalanx-style
  building block behind the §1.1 voting application);
* :mod:`repro.protocol.write_back` — a read-repair register, the building
  block the paper points at for constructing atomic variables.
"""

from repro.protocol.timestamps import Timestamp, TimestampGenerator
from repro.protocol.signatures import SignatureScheme, SignedPayload
from repro.protocol.variable import ProbabilisticRegister, ReadOutcome
from repro.protocol.classification import OUTCOME_LABELS, classify_read_outcome
from repro.protocol.selection import SelectedValue, select_credible_value, tiebreak_key
from repro.protocol.dissemination_variable import DisseminationRegister
from repro.protocol.masking_variable import MaskingRegister
from repro.protocol.lock import LockAttempt, QuorumLock
from repro.protocol.write_back import WriteBackRegister

__all__ = [
    "Timestamp",
    "TimestampGenerator",
    "SignatureScheme",
    "SignedPayload",
    "ProbabilisticRegister",
    "ReadOutcome",
    "OUTCOME_LABELS",
    "classify_read_outcome",
    "SelectedValue",
    "select_credible_value",
    "tiebreak_key",
    "DisseminationRegister",
    "MaskingRegister",
    "QuorumLock",
    "LockAttempt",
    "WriteBackRegister",
]
