"""Quorum-based advisory locks (the Phalanx-style building block of §1.1).

The paper's first application — voter-ID locking — is really a *lock service*
built directly on probabilistic quorums ("other replicated data objects can
be constructed either using probabilistic quorum systems directly (e.g.,
locks [MR98b]) ...").  This module provides that building block as a
reusable object:

* :meth:`QuorumLock.acquire` reads the lock variable at a strategy-drawn
  quorum; if no (sufficiently vouched-for) holder is visible it writes an
  acquisition record to another strategy-drawn quorum and reports success;
* :meth:`QuorumLock.release` writes a release record with a newer timestamp;
* with probability at most ε two concurrent acquirers can both think they won
  (their quorums failed to intersect) — the lock is therefore *advisory*
  with a quantified violation probability, exactly the semantics the voting
  application needs ("it suffices for each repeated use ... to be detected
  with high probability").

The reader-side rule adapts to the quorum system: a masking system's
``read_threshold`` is honoured, and if a signature scheme is supplied the
acquisition records are self-verifying (dissemination setting).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ConfigurationError, ProtocolError
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.rngs import fresh_rng
from repro.simulation.cluster import Cluster
from repro.types import Quorum


@dataclass(frozen=True)
class LockAttempt:
    """Result of an acquire or release attempt."""

    lock_name: str
    client_id: int
    acquired: bool
    holder_seen: Optional[int]
    read_quorum: Quorum
    write_quorum: Optional[Quorum]


class QuorumLock:
    """An advisory lock replicated over a probabilistic quorum system.

    Parameters
    ----------
    system:
        Any probabilistic quorum system.  A ``read_threshold`` attribute
        (masking systems) is honoured; otherwise a single vouching server
        suffices to believe a lock record.
    cluster:
        The replica cluster storing the lock state.
    name:
        Lock name; one cluster can host many locks.
    signatures:
        Optional signature scheme making lock records self-verifying
        (Byzantine servers can then suppress but not fabricate holders).
    rng:
        Random source for quorum sampling.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        cluster: Cluster,
        name: str = "lock",
        signatures: Optional[SignatureScheme] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if system.n != cluster.n:
            raise ConfigurationError(
                f"quorum system is over {system.n} servers but the cluster has {cluster.n}"
            )
        if not name:
            raise ConfigurationError("lock names must be non-empty")
        self.system = system
        self.cluster = cluster
        self.name = str(name)
        self.signatures = signatures
        self.rng = rng or fresh_rng()
        self._client_counters: Dict[int, int] = {}
        self._highest_seen_counter = 0
        # Per-holder release fence: the newest release timestamp this lock
        # object *knows* about for each client — from its own release writes
        # and from released records seen at read quorums.  A held record
        # older than the same holder's known release is provably superseded,
        # so a read quorum made entirely of lagging replicas must not
        # resurrect it as a phantom holder.  The fence is per holder (a
        # release says nothing about *another* client's grant), and held
        # records are never cached: a newer holder must still be discovered
        # (or missed, with probability ε) through the quorum read itself.
        self._release_fence: Dict[int, Timestamp] = {}
        self.acquire_attempts = 0
        self.acquisitions = 0
        self.releases = 0

    # -- internals ---------------------------------------------------------------

    @property
    def _variable(self) -> str:
        return f"quorum-lock:{self.name}"

    @property
    def read_threshold(self) -> int:
        """Vouching servers required to believe a lock record (1 unless masking)."""
        return int(getattr(self.system, "read_threshold", 1))

    def _next_timestamp(self, client_id: int) -> Timestamp:
        # Lock records from different clients must stay totally ordered, so a
        # new record outranks both this client's own history and the highest
        # timestamp observed at any read quorum (Lamport-clock style).
        counter = max(self._client_counters.get(client_id, 0), self._highest_seen_counter) + 1
        self._client_counters[client_id] = counter
        return Timestamp(counter, writer_id=client_id)

    def _observe(self) -> Tuple[Optional[Dict[str, Any]], Quorum]:
        """Read the lock variable; return the winning record (or None) and the quorum."""
        quorum = self.system.sample_quorum(self.rng)
        replies = self.cluster.read_quorum(quorum, self._variable)
        votes: Counter = Counter()
        records: Dict[Tuple[str, Timestamp], Dict[str, Any]] = {}
        for stored in replies.values():
            if stored.timestamp is None or not isinstance(stored.timestamp, Timestamp):
                continue
            if self.signatures is not None and not self.signatures.verify(
                self._variable, stored.value, stored.timestamp, stored.signature
            ):
                continue
            if not isinstance(stored.value, dict) or "state" not in stored.value:
                continue
            if stored.timestamp.counter > self._highest_seen_counter:
                self._highest_seen_counter = stored.timestamp.counter
            key = (repr(stored.value), stored.timestamp)
            votes[key] += 1
            records[key] = stored.value
        eligible = [
            (key, count) for key, count in votes.items() if count >= self.read_threshold
        ]
        for key, _count in eligible:
            record = records[key]
            if record.get("state") == "released" and "holder" in record:
                self._observe_release(int(record["holder"]), key[1])
        # Drop held records that the same holder's known release outranks —
        # stale replies from lagging replicas, not live acquisitions.
        eligible = [
            (key, count) for key, count in eligible if not self._is_fenced(records[key], key[1])
        ]
        if not eligible:
            return None, quorum
        best_key, _ = max(eligible, key=lambda item: item[0][1])
        return records[best_key], quorum

    def _observe_release(self, holder: int, timestamp: Timestamp) -> None:
        current = self._release_fence.get(holder)
        if current is None or current < timestamp:
            self._release_fence[holder] = timestamp

    def _is_fenced(self, record: Dict[str, Any], timestamp: Timestamp) -> bool:
        if record.get("state") != "held" or "holder" not in record:
            return False
        fence = self._release_fence.get(int(record["holder"]))
        return fence is not None and timestamp < fence

    def _record(self, client_id: int, state: str) -> Quorum:
        quorum = self.system.sample_quorum(self.rng)
        timestamp = self._next_timestamp(client_id)
        value = {"state": state, "holder": client_id}
        signature = (
            self.signatures.sign(self._variable, value, timestamp)
            if self.signatures is not None
            else None
        )
        self.cluster.write_quorum(quorum, self._variable, value, timestamp, signature=signature)
        if state == "released":
            self._observe_release(client_id, timestamp)
        return quorum

    # -- public operations --------------------------------------------------------

    def holder(self) -> Optional[int]:
        """The client currently believed (by a fresh quorum read) to hold the lock."""
        record, _ = self._observe()
        if record is None or record.get("state") != "held":
            return None
        return int(record["holder"])

    def acquire(self, client_id: int) -> LockAttempt:
        """Try to acquire the lock for ``client_id``.

        Succeeds when no held record is visible at the read quorum; with
        probability at most ε a concurrent holder's write quorum is missed
        and two clients acquire simultaneously.
        """
        if client_id < 0:
            raise ProtocolError("client ids must be non-negative")
        self.acquire_attempts += 1
        record, read_quorum = self._observe()
        if record is not None and record.get("state") == "held":
            return LockAttempt(
                lock_name=self.name,
                client_id=client_id,
                acquired=False,
                holder_seen=int(record["holder"]),
                read_quorum=read_quorum,
                write_quorum=None,
            )
        write_quorum = self._record(client_id, "held")
        self.acquisitions += 1
        return LockAttempt(
            lock_name=self.name,
            client_id=client_id,
            acquired=True,
            holder_seen=None,
            read_quorum=read_quorum,
            write_quorum=write_quorum,
        )

    def release(self, client_id: int) -> LockAttempt:
        """Release the lock held by ``client_id``.

        Releasing a lock the client does not (appear to) hold raises
        :class:`ProtocolError`; the check is itself a quorum read and thus
        also subject to ε.
        """
        record, read_quorum = self._observe()
        if record is None or record.get("state") != "held" or int(record["holder"]) != client_id:
            raise ProtocolError(
                f"client {client_id} does not appear to hold lock {self.name!r}"
            )
        write_quorum = self._record(client_id, "released")
        self.releases += 1
        return LockAttempt(
            lock_name=self.name,
            client_id=client_id,
            acquired=False,
            holder_seen=client_id,
            read_quorum=read_quorum,
            write_quorum=write_quorum,
        )
