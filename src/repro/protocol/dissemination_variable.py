"""The dissemination access protocol for self-verifying data (Section 4).

With up to ``b`` Byzantine servers but *self-verifying* data, the write
protocol of Section 3.1 is unchanged except that the writer signs each
value/timestamp pair; the read protocol additionally discards replies whose
signature does not verify before picking the highest timestamp.
Theorem 4.2: for a read not concurrent with any write and at most ``b``
Byzantine failures, the read returns the last written value with probability
at least ``1 - ε`` (the ε of the (b,ε)-dissemination system).

The key point the implementation makes explicit: a Byzantine server can
*suppress* its reply or *replay* an old (correctly signed) value, but any
fabricated value is filtered out by verification, so only staleness — not
corruption — is possible.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ProtocolError
from repro.protocol.selection import select_credible_value
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ProbabilisticRegister, ReadOutcome, WriteOutcome
from repro.simulation.cluster import Cluster
from repro.simulation.server import StoredValue
from repro.types import Quorum, ServerId


class DisseminationRegister(ProbabilisticRegister):
    """Single-writer register for self-verifying data over a (b,ε)-dissemination system.

    Parameters
    ----------
    system, cluster, name, writer_id, rng:
        As for :class:`~repro.protocol.variable.ProbabilisticRegister`.
    signatures:
        The writer's signature scheme.  Readers use the same instance (in a
        real deployment they would hold the writer's *public* key); servers
        never see it.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        cluster: Cluster,
        signatures: Optional[SignatureScheme] = None,
        name: str = "x",
        writer_id: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(system, cluster, name=name, writer_id=writer_id, rng=rng)
        self.signatures = signatures or SignatureScheme()
        self.forged_replies_rejected = 0

    # -- write ------------------------------------------------------------------

    def write(self, value: Any) -> WriteOutcome:
        """Write a signed value to a strategy-drawn quorum (Section 4, Write)."""
        quorum = self._choose_quorum()
        timestamp = self._timestamps.next()
        signature = self.signatures.sign(self.name, value, timestamp)
        acks = self.cluster.write_quorum(
            quorum, self.name, value, timestamp, signature=signature
        )
        outcome = WriteOutcome(
            quorum=quorum, timestamp=timestamp, acknowledged=frozenset(acks)
        )
        self._last_written = outcome
        self.writes_performed += 1
        return outcome

    # -- read -------------------------------------------------------------------

    def _verified_replies(
        self, replies: Dict[ServerId, StoredValue]
    ) -> Dict[ServerId, StoredValue]:
        verified: Dict[ServerId, StoredValue] = {}
        for server, stored in replies.items():
            if not isinstance(stored.timestamp, Timestamp):
                self.forged_replies_rejected += 1
                continue
            if self.signatures.verify(
                self.name, stored.value, stored.timestamp, stored.signature
            ):
                verified[server] = stored
            else:
                self.forged_replies_rejected += 1
        return verified

    def read(self) -> ReadOutcome:
        """Read with verification (Section 4, Read): only verifiable pairs compete.

        Verification leaves only honestly signed pairs, which cannot disagree
        at a given timestamp (the writer signs one value per timestamp), but
        the selection still goes through the shared deterministic rule so all
        read paths resolve replies identically.
        """
        quorum = self._choose_quorum()
        replies = self._collect(quorum)
        self.reads_performed += 1
        verified = self._verified_replies(replies)
        selected = select_credible_value(verified)
        if selected is None:
            return ReadOutcome(
                value=None,
                timestamp=None,
                quorum=quorum,
                reporting_servers=frozenset(),
                replies=len(replies),
            )
        return ReadOutcome(
            value=selected.value,
            timestamp=selected.timestamp,
            quorum=quorum,
            reporting_servers=selected.servers,
            replies=len(replies),
        )
