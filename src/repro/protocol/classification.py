"""Shared read-outcome classification for the Monte-Carlo harness.

The sequential estimators, the register classes and the batched trial
engine all need to agree on what a read outcome *means* relative to the
last write: ``fresh`` (the latest written value), ``stale`` (an older but
genuinely written value), ``empty`` (⊥ — nobody produced an acceptable
value) or ``fabricated`` (a value that was never written, possible only
when Byzantine servers defeat the protocol's filter).  Before this module
each consumer re-implemented the comparison, which is exactly how the two
engines could drift apart silently; now there is a single labelling
function and the batch kernels are tested against it.

The rule mirrors the highest-timestamp-wins reads of Sections 3.1, 4
and 5: an outcome whose timestamp equals the last write's is fresh; ⊥ is
empty; an honest ``Timestamp`` strictly below the last write's is stale;
anything else (a timestamp that outranks the write, or one of a foreign
type) can only come from a forgery and is fabricated.
"""

from __future__ import annotations

from typing import Tuple

from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ReadOutcome, WriteOutcome

#: The four labels, in the order the reports tally them.
OUTCOME_LABELS: Tuple[str, ...] = ("fresh", "stale", "empty", "fabricated")


def classify_read_outcome(
    outcome: ReadOutcome,
    last_write: WriteOutcome,
    expected_value: object = None,
    check_value: bool = False,
) -> str:
    """Label a read outcome against the last completed write.

    With ``check_value=True`` the outcome must also carry ``expected_value``
    to count as fresh — a matching timestamp with a different value means a
    forgery won a timestamp tie, which the consistency estimator counts as
    fabricated.
    """
    if outcome.is_empty:
        return "empty"
    if outcome.timestamp == last_write.timestamp:
        if check_value and outcome.value != expected_value:
            return "fabricated"
        return "fresh"
    if isinstance(outcome.timestamp, Timestamp) and outcome.timestamp < last_write.timestamp:
        return "stale"
    return "fabricated"
