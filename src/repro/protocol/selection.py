"""Deterministic reply selection shared by every read protocol.

All three read protocols of the paper end the same way: among the candidate
value/timestamp pairs that survive the protocol's filter (any reply for the
Section 3.1 read, signature-verified replies for Section 4, pairs with at
least ``k`` vouching votes for Section 5), the highest timestamp wins.  The
paper leaves unspecified what a reader does when two *distinct* values carry
the same highest timestamp — an event only a faulty server can cause, since
an honest writer never reuses a timestamp.  The registers used to resolve
such ties by reply iteration order, which made the outcome depend on dict
insertion order and was impossible for the batched engine to model (the PR 2
known gap).

This module fixes the rule once, for the sequential registers, the batched
engine and the async service frontends alike:

1. only pairs with at least ``threshold`` vouching votes are candidates;
2. among candidates, the highest timestamp wins;
3. a timestamp tie between distinct values is broken by the larger vote
   count, and a remaining tie by the larger :func:`tiebreak_key` — a pure
   function of the value, so the winner is independent of reply order.

Grouping is by ``(timestamp, tiebreak_key(value))``, so values only need a
stable ``repr``, not hashability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.simulation.server import StoredValue
from repro.types import ServerId


def tiebreak_key(value: Any) -> str:
    """The order-independent token that breaks exhausted ties (rule 3)."""
    return repr(value)


@dataclass(frozen=True)
class SelectedValue:
    """The winning value/timestamp pair of a read, with its supporters."""

    value: Any
    timestamp: Any
    servers: frozenset
    votes: int


def select_credible_value(
    replies: Mapping[ServerId, StoredValue],
    threshold: int = 1,
) -> Optional[SelectedValue]:
    """Apply the deterministic highest-timestamp-wins rule to a reply map.

    ``threshold=1`` is the benign Section 3.1 (and post-verification
    Section 4) read; a larger threshold is the Section 5 masking read.
    Returns ``None`` when no pair clears the threshold (the read is ⊥).
    """
    if threshold < 1:
        raise ConfigurationError(f"vote threshold must be positive, got {threshold}")
    # Identity pre-aggregation: replicas that store the *same* pair hold
    # references to the one (value, timestamp) the writer (or a colluding
    # forger) sent, so grouping first by object identity makes the per-reply
    # work two ``id()`` calls; the semantic grouping below then runs over
    # the distinct pairs (usually one or two), not over every reply.
    # Distinct-but-equal pairs still merge there, so the result is
    # unchanged.
    ident: Dict[Tuple[int, int], Tuple[Any, List[ServerId]]] = {}
    for server in sorted(replies):
        stored = replies[server]
        timestamp = stored.timestamp
        if timestamp is None:
            continue
        key = (id(timestamp), id(stored.value))
        entry = ident.get(key)
        if entry is None:
            ident[key] = (stored, [server])
        else:
            entry[1].append(server)
    if not ident:
        return None
    if len(ident) == 1:
        # One distinct pair: the grouping reduces to a threshold check.
        stored, servers = next(iter(ident.values()))
        if len(servers) < threshold:
            return None
        return SelectedValue(
            value=stored.value,
            timestamp=stored.timestamp,
            servers=frozenset(servers),
            votes=len(servers),
        )
    groups: Dict[Tuple[Any, str], List[ServerId]] = {}
    values: Dict[Tuple[Any, str], Any] = {}
    for stored, servers in ident.values():
        key = (stored.timestamp, tiebreak_key(stored.value))
        existing = groups.get(key)
        if existing is None:
            groups[key] = list(servers)
        else:
            existing.extend(servers)
        values.setdefault(key, stored.value)
    candidates = [key for key, servers in groups.items() if len(servers) >= threshold]
    if not candidates:
        return None
    best_timestamp = None
    for timestamp, _ in candidates:
        if best_timestamp is None or timestamp > best_timestamp:
            best_timestamp = timestamp
    tied = [key for key in candidates if key[0] == best_timestamp]
    winner = max(tied, key=lambda key: (len(groups[key]), key[1]))
    return SelectedValue(
        value=values[winner],
        timestamp=best_timestamp,
        servers=frozenset(groups[winner]),
        votes=len(groups[winner]),
    )


def enumerate_credible_values(
    replies: Mapping[ServerId, StoredValue],
    threshold: int = 1,
) -> List[SelectedValue]:
    """Every value/timestamp pair clearing the vote threshold, not just the winner.

    The register protocols only ever need :func:`select_credible_value` —
    highest timestamp wins, the rest is garbage.  Coordination protocols
    built *on* the register (the lock service in :mod:`repro.apps.mutex`)
    also need the losers: an older held-lock record outranked by the
    reader's own write never wins selection, yet it still evidences a
    competing holder that must be conceded to.  Grouping and thresholding
    are identical to :func:`select_credible_value`; the returned order is
    unspecified (pairs with incomparable timestamps cannot be sorted).
    """
    if threshold < 1:
        raise ConfigurationError(f"vote threshold must be positive, got {threshold}")
    groups: Dict[Tuple[Any, str], List[ServerId]] = {}
    values: Dict[Tuple[Any, str], Any] = {}
    for server in sorted(replies):
        stored = replies[server]
        if stored.timestamp is None:
            continue
        key = (stored.timestamp, tiebreak_key(stored.value))
        existing = groups.get(key)
        if existing is None:
            groups[key] = [server]
        else:
            existing.append(server)
        values.setdefault(key, stored.value)
    return [
        SelectedValue(
            value=values[key],
            timestamp=key[0],
            servers=frozenset(servers),
            votes=len(servers),
        )
        for key, servers in groups.items()
        if len(servers) >= threshold
    ]
