"""The ε-intersecting access protocol of Section 3.1.

A single writer and multiple readers share a replicated variable ``x``.  To
write, the client draws a quorum from the access strategy, picks a timestamp
larger than any it used before, and updates every server of the quorum.  To
read, the client draws a quorum, queries it, and returns the value carrying
the highest timestamp.  Theorem 3.2: if a read is not concurrent with any
write and only crash failures occur, the read returns the last written value
with probability at least ``1 - ε``.

The register purposely does *not* hide the probabilistic nature of the
guarantee: :class:`ReadOutcome` reports which servers contributed the chosen
value so that applications (and the Monte-Carlo harness) can distinguish a
fresh read from a stale one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ProtocolError, QuorumUnavailableError
from repro.protocol.selection import select_credible_value
from repro.protocol.timestamps import Timestamp, TimestampGenerator
from repro.rngs import fresh_rng
from repro.simulation.cluster import Cluster
from repro.simulation.server import StoredValue
from repro.types import Quorum, ServerId


@dataclass(frozen=True)
class WriteOutcome:
    """Result of a write: the quorum used and the servers that acknowledged."""

    quorum: Quorum
    timestamp: Timestamp
    acknowledged: frozenset

    @property
    def ack_count(self) -> int:
        """How many servers acknowledged the write."""
        return len(self.acknowledged)


@dataclass(frozen=True)
class ReadOutcome:
    """Result of a read: the chosen value and where it came from.

    ``value is None`` together with ``is_empty`` means the read returned ⊥
    (no server replied with any value) — the "safe variable" analogue of an
    uninitialised register.
    """

    value: Any
    timestamp: Optional[Timestamp]
    quorum: Quorum
    reporting_servers: frozenset
    replies: int

    @property
    def is_empty(self) -> bool:
        """Whether the read obtained no value at all."""
        return self.timestamp is None


class ProbabilisticRegister:
    """Single-writer multi-reader register over an ε-intersecting system.

    Parameters
    ----------
    system:
        The probabilistic quorum system; quorums are drawn from its access
        strategy (the paper stresses the strategy must be followed for the ε
        guarantee to hold).
    cluster:
        The server cluster the register is replicated on.
    name:
        The variable name (one cluster can host many registers).
    writer_id:
        Identifier baked into timestamps; a single register must only ever
        be written through one generator (the single-writer assumption of
        Theorem 3.2), which this class enforces.
    rng:
        Random source for quorum sampling; seed it for reproducible runs.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        cluster: Cluster,
        name: str = "x",
        writer_id: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if system.n != cluster.n:
            raise ProtocolError(
                f"quorum system is over {system.n} servers but the cluster has {cluster.n}"
            )
        self.system = system
        self.cluster = cluster
        self.name = str(name)
        self.rng = rng or fresh_rng()
        self._timestamps = TimestampGenerator(writer_id)
        self._last_written: Optional[WriteOutcome] = None
        self.writes_performed = 0
        self.reads_performed = 0

    # -- write ------------------------------------------------------------------

    @property
    def last_write(self) -> Optional[WriteOutcome]:
        """The most recent write outcome (``None`` before the first write)."""
        return self._last_written

    def _choose_quorum(self) -> Quorum:
        return self.system.sample_quorum(self.rng)

    def write(self, value: Any) -> WriteOutcome:
        """Write ``value`` to a strategy-drawn quorum (Section 3.1, Write).

        The write is considered complete once the chosen quorum has been
        contacted; crashed servers simply miss the update, which is exactly
        the behaviour the ε analysis accounts for.
        """
        quorum = self._choose_quorum()
        timestamp = self._timestamps.next()
        acks = self.cluster.write_quorum(quorum, self.name, value, timestamp)
        outcome = WriteOutcome(
            quorum=quorum, timestamp=timestamp, acknowledged=frozenset(acks)
        )
        self._last_written = outcome
        self.writes_performed += 1
        return outcome

    # -- read -------------------------------------------------------------------

    def _collect(self, quorum: Quorum) -> Dict[ServerId, StoredValue]:
        return self.cluster.read_quorum(quorum, self.name)

    def read(self) -> ReadOutcome:
        """Read the register (Section 3.1, Read): highest timestamp wins.

        Ties between distinct values at the winning timestamp — possible only
        under Byzantine failures — are resolved by the deterministic rule of
        :func:`repro.protocol.selection.select_credible_value`, so the outcome
        never depends on reply iteration order.
        """
        quorum = self._choose_quorum()
        replies = self._collect(quorum)
        self.reads_performed += 1
        selected = select_credible_value(replies)
        if selected is None:
            return ReadOutcome(
                value=None,
                timestamp=None,
                quorum=quorum,
                reporting_servers=frozenset(),
                replies=len(replies),
            )
        return ReadOutcome(
            value=selected.value,
            timestamp=selected.timestamp,
            quorum=quorum,
            reporting_servers=selected.servers,
            replies=len(replies),
        )

    def read_is_fresh(self, outcome: ReadOutcome) -> bool:
        """Whether a read outcome returned the most recently written value.

        Only meaningful on the writer's side (it compares against the last
        locally performed write); the Monte-Carlo consistency harness uses it
        to measure the empirical ``1 - ε``.
        """
        if self._last_written is None:
            raise ProtocolError("no write has been performed yet")
        return (
            outcome.timestamp == self._last_written.timestamp
            and not outcome.is_empty
        )

    def classify_read(self, outcome: ReadOutcome) -> str:
        """Label a read against the last local write (Monte-Carlo helper).

        Returns one of :data:`repro.protocol.classification.OUTCOME_LABELS`
        (``"fresh"``, ``"stale"``, ``"empty"`` or ``"fabricated"``) via the
        shared classifier, so every register variant — and the batched
        engine — labels outcomes identically.
        """
        from repro.protocol.classification import classify_read_outcome

        if self._last_written is None:
            raise ProtocolError("no write has been performed yet")
        return classify_read_outcome(outcome, self._last_written)
