"""Writer-local monotone timestamps.

The access protocols of the paper attach to every written value a timestamp
"greater than any timestamp [the writer] has chosen in the past"; readers
pick the reply with the highest timestamp.  With a single writer a simple
counter suffices; the ``writer_id`` component makes timestamps from
different writers comparable (lexicographically) so that the applications in
:mod:`repro.apps`, which have many writers updating *different* variables,
can share one timestamp type.

Byzantine forgers need a timestamp that outranks every honest one;
:meth:`Timestamp.forged_maximum` provides it, which lets the simulation
model the strongest possible fabrication attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Optional

from repro.exceptions import ProtocolError


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    """A totally ordered (counter, writer) pair.

    Ordering is by counter first and writer id second, which matches the
    usual Lamport-style construction and guarantees a total order even when
    multiple writers (of different variables) share the type.
    """

    counter: int
    writer_id: int = 0

    def __post_init__(self) -> None:
        if self.counter < 0:
            raise ProtocolError(f"timestamp counters must be non-negative, got {self.counter}")

    def _key(self) -> tuple:
        return (self.counter, self.writer_id)

    def __lt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.counter, self.writer_id) < (other.counter, other.writer_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self.counter == other.counter and self.writer_id == other.writer_id

    def __hash__(self) -> int:
        # Memoised: timestamps are dict keys on every hot path (reply
        # grouping, history lookups) and the instance is immutable.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.counter, self.writer_id))
            object.__setattr__(self, "_hash", cached)
        return cached

    def next(self) -> "Timestamp":
        """The immediately following timestamp for the same writer."""
        return Timestamp(self.counter + 1, self.writer_id)

    @classmethod
    def zero(cls, writer_id: int = 0) -> "Timestamp":
        """The initial timestamp of a writer."""
        return cls(0, writer_id)

    @classmethod
    def forged_maximum(cls) -> "Timestamp":
        """A timestamp larger than any honest one (used by Byzantine forgers)."""
        return cls(2**62, 2**30)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Timestamp({self.counter}, w={self.writer_id})"


class TimestampGenerator:
    """Generates strictly increasing timestamps for a single writer.

    The generator enforces the single-writer discipline the paper's protocol
    assumes: it never emits the same timestamp twice and
    :meth:`observe` lets a writer that restarts (or that cooperates with
    other writers on *different* variables) fast-forward past timestamps it
    has seen.
    """

    def __init__(self, writer_id: int = 0, start: int = 0) -> None:
        if start < 0:
            raise ProtocolError(f"timestamp counters must be non-negative, got {start}")
        self._writer_id = int(writer_id)
        self._counter = int(start)

    @property
    def writer_id(self) -> int:
        """The writer this generator belongs to."""
        return self._writer_id

    @property
    def last_issued(self) -> Optional[Timestamp]:
        """The most recently issued timestamp (``None`` before the first)."""
        if self._counter == 0:
            return None
        return Timestamp(self._counter, self._writer_id)

    def next(self) -> Timestamp:
        """Issue the next (strictly larger) timestamp."""
        self._counter += 1
        return Timestamp(self._counter, self._writer_id)

    def observe(self, timestamp: Timestamp) -> None:
        """Fast-forward past an externally observed timestamp."""
        if timestamp.counter > self._counter:
            self._counter = timestamp.counter
