"""A read-repair ("write-back") register built from the safe-variable protocol.

The paper notes that richer replicated objects — atomic variables in the
style of Lamport and Israeli-Shaham — can be built from the basic
probabilistic variable.  The classical ingredient is the *write-back*: after
a read determines the freshest value, the reader writes that value (with its
original timestamp) back to a quorum before returning it.  Two benefits:

* the freshest value ends up replicated on the union of the original write
  quorum and every subsequent read quorum, so the probability that a later
  read misses it decays with every access (a protocol-level analogue of the
  gossip diffusion of §1.1);
* in the single-writer setting it approximates the "reads never appear to go
  backwards" property of an atomic register: once a read has returned
  version ``t``, a subsequent non-concurrent read misses version ``t`` only
  if its quorum misses the (now much larger) replica set.

The cost is the obvious one: every read also pays a write-quorum access, so
the load doubles.  :class:`WriteBackRegister` keeps the trade-off explicit
with a per-register counter of back-written values.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.protocol.variable import ProbabilisticRegister, ReadOutcome
from repro.simulation.cluster import Cluster


class WriteBackRegister(ProbabilisticRegister):
    """Single-writer register whose readers repair the replicas they read from.

    The write protocol is unchanged from
    :class:`~repro.protocol.variable.ProbabilisticRegister`; the read
    protocol adds step 5: write the chosen value/timestamp back to a freshly
    drawn quorum (keeping the *writer's* timestamp, so the single-writer
    ordering is preserved).
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        cluster: Cluster,
        name: str = "x",
        writer_id: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(system, cluster, name=name, writer_id=writer_id, rng=rng)
        self.write_backs_performed = 0

    def read(self) -> ReadOutcome:
        """Read, then propagate the chosen value to another quorum (read repair)."""
        outcome = super().read()
        if not outcome.is_empty:
            repair_quorum = self._choose_quorum()
            self.cluster.write_quorum(
                repair_quorum, self.name, outcome.value, outcome.timestamp
            )
            self.write_backs_performed += 1
        return outcome

    def replicas_holding_latest(self) -> int:
        """How many servers currently store the last written value (test/metric helper).

        Useful for demonstrating the point of the write-back: the count grows
        with every read instead of staying frozen at the original write
        quorum.
        """
        if self.last_write is None:
            return 0
        count = 0
        for server in self.cluster.servers:
            stored = server.storage.get(self.name)
            if stored is not None and stored.timestamp == self.last_write.timestamp:
                count += 1
        return count
