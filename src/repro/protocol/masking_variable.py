"""The masking access protocol for arbitrary data (Section 5).

Without self-verifying data a reader cannot tell a fabricated reply from a
genuine one, so the read protocol requires each candidate value/timestamp
pair to be vouched for by at least ``k`` servers of the read quorum (step 3
of the Section 5 Read protocol), where ``k`` is the system's threshold
(``⌈q²/2n⌉`` for the paper's ``Rk(n, q)`` construction).  Among the pairs
that clear the threshold, the highest timestamp wins; if none does, the read
returns ⊥.

Theorem 5.2: for a read not concurrent with any write and at most ``b``
Byzantine failures, the read returns the last written value with probability
at least ``1 - ε``.  When it does not, the result is either stale/⊥ (too few
up-to-date correct servers were hit) or — only if at least ``k`` faulty
servers were hit — a fabricated value; :class:`MaskingReadOutcome` exposes
which of these happened so the Monte-Carlo harness can track both error
modes separately (they correspond to the two terms of Lemma 5.7/5.9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ProtocolError
from repro.protocol.selection import select_credible_value
from repro.protocol.variable import ProbabilisticRegister, ReadOutcome
from repro.simulation.cluster import Cluster


@dataclass(frozen=True)
class MaskingReadOutcome(ReadOutcome):
    """A read outcome annotated with the vote count that selected the value."""

    votes: int = 0
    threshold: int = 0

    @property
    def passed_threshold(self) -> bool:
        """Whether some value collected at least ``threshold`` matching votes."""
        return not self.is_empty and self.votes >= self.threshold


class MaskingRegister(ProbabilisticRegister):
    """Single-writer register for arbitrary data over a (b,ε)-masking system.

    The system must be a :class:`~repro.core.masking.ProbabilisticMaskingSystem`
    (or expose a compatible integer ``read_threshold``), because the read
    protocol is parameterised by the threshold ``k``.
    """

    def __init__(
        self,
        system: ProbabilisticMaskingSystem,
        cluster: Cluster,
        name: str = "x",
        writer_id: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not hasattr(system, "read_threshold"):
            raise ProtocolError(
                "MaskingRegister requires a masking quorum system with a read_threshold"
            )
        super().__init__(system, cluster, name=name, writer_id=writer_id, rng=rng)

    @property
    def read_threshold(self) -> int:
        """The vote count ``⌈k⌉`` a value needs to be accepted."""
        return int(self.system.read_threshold)

    # -- read -------------------------------------------------------------------

    def read(self) -> MaskingReadOutcome:
        """Threshold read (Section 5, Read): a value needs ``>= k`` matching votes.

        Among the pairs that clear the threshold the highest timestamp wins;
        ties between distinct values resolve deterministically through
        :func:`repro.protocol.selection.select_credible_value`.
        """
        quorum = self._choose_quorum()
        replies = self._collect(quorum)
        self.reads_performed += 1
        threshold = self.read_threshold
        selected = select_credible_value(replies, threshold)
        if selected is None:
            return MaskingReadOutcome(
                value=None,
                timestamp=None,
                quorum=quorum,
                reporting_servers=frozenset(),
                replies=len(replies),
                votes=0,
                threshold=threshold,
            )
        return MaskingReadOutcome(
            value=selected.value,
            timestamp=selected.timestamp,
            quorum=quorum,
            reporting_servers=selected.servers,
            replies=len(replies),
            votes=selected.votes,
            threshold=threshold,
        )

    # classify_read is inherited from ProbabilisticRegister: all register
    # variants label outcomes through the shared classifier in
    # repro.protocol.classification ("fabricated" here is only possible when
    # at least k Byzantine servers were hit — the Lemma 5.7 event).
