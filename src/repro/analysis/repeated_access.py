"""Repeated-access analysis: how ε compounds over sequences of operations.

Single-operation guarantees (Theorems 3.2, 4.2, 5.2) bound the probability
that *one* read misses *the last* write.  Applications care about sequences:

* the voting application accepts a fraudster only if **every** one of their
  ``r`` repeat attempts misses the lock — probability ``ε^r`` under
  independent quorum draws ("numerous repeat attempts will be detected with
  virtual certainty", §1.1);
* a reader that re-reads ``r`` times (or ``r`` independent readers) misses a
  write with probability ``ε^r``;
* a value written once and then read after ``w`` further writes by the same
  writer is still the *latest* relevant version only for the most recent
  write, but the probability that a read returns a version more than ``d``
  writes old decays geometrically in ``d`` because it must miss ``d``
  independent write quorums.

These are elementary consequences of the independence of strategy draws, but
they are the quantities applications actually budget for, so they are
provided (and tested against Monte-Carlo simulation) here.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import ConfigurationError


def _validate_epsilon(epsilon: float) -> None:
    if not 0.0 <= epsilon < 1.0:
        raise ConfigurationError(f"epsilon must lie in [0, 1), got {epsilon}")


def _validate_count(count: int, name: str) -> None:
    if count < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {count}")


def all_attempts_miss_probability(epsilon: float, attempts: int) -> float:
    """Probability that ``attempts`` independent quorum accesses *all* miss.

    This is the voting application's repeat-fraud budget: a voter ID already
    locked at some write quorum is reused successfully ``attempts`` times only
    if every one of the read quorums drawn for those attempts misses the lock
    quorum, which happens with probability ``ε^attempts``.
    """
    _validate_epsilon(epsilon)
    _validate_count(attempts, "attempts")
    if attempts == 0:
        return 1.0
    return epsilon ** attempts


def at_least_one_hit_probability(epsilon: float, attempts: int) -> float:
    """Probability that at least one of ``attempts`` accesses sees the write."""
    return 1.0 - all_attempts_miss_probability(epsilon, attempts)


def attempts_needed_for_confidence(epsilon: float, confidence: float) -> int:
    """Fewest independent accesses so that a write is seen with the given confidence.

    Solves ``1 - ε^r >= confidence`` for integer ``r``; returns 1 when a single
    access already suffices and raises for a degenerate confidence of 1.0 with
    ε > 0 (impossible with finitely many accesses).
    """
    _validate_epsilon(epsilon)
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    if epsilon == 0.0:
        return 1
    needed = math.log(1.0 - confidence) / math.log(epsilon)
    return max(1, math.ceil(needed - 1e-12))


def staleness_distribution(epsilon: float, writes: int) -> List[float]:
    """Distribution of how many versions behind a read lands after ``writes`` writes.

    Index ``d`` of the returned list is the probability that the read returns
    the version ``d`` writes behind the latest (``d = 0`` is fresh), under the
    idealised model in which the read quorum hits each write quorum
    independently with probability ``1 - ε``; the final entry (index
    ``writes``) is the probability of returning ⊥ or the initial value, i.e.
    missing every write quorum.

    The geometric decay of this distribution is the analytic counterpart of
    the staleness histogram measured by
    :func:`repro.simulation.monte_carlo.estimate_staleness_distribution`.
    """
    _validate_epsilon(epsilon)
    if writes < 1:
        raise ConfigurationError(f"the write history needs at least one write, got {writes}")
    distribution = []
    for lag in range(writes):
        distribution.append((epsilon ** lag) * (1.0 - epsilon))
    distribution.append(epsilon ** writes)
    return distribution


def expected_staleness(epsilon: float, writes: int) -> float:
    """Expected version lag of a read under the idealised independence model."""
    distribution = staleness_distribution(epsilon, writes)
    return sum(lag * probability for lag, probability in enumerate(distribution))


def union_bound_over_operations(epsilon: float, operations: int) -> float:
    """Union bound on *any* of ``operations`` accesses violating its guarantee.

    Useful for SLO-style statements ("over a day of ``operations`` accesses,
    the probability that *any* read is inconsistent is at most ...").  Clipped
    at 1.
    """
    _validate_epsilon(epsilon)
    _validate_count(operations, "operations")
    return min(1.0, epsilon * operations)


def epsilon_budget_per_operation(total_budget: float, operations: int) -> float:
    """Largest per-operation ε that keeps the whole run within ``total_budget``.

    The inverse of :func:`union_bound_over_operations`: given an end-to-end
    inconsistency budget and an expected operation count, this is the ε a
    construction must be calibrated to (e.g. via
    :func:`repro.core.calibration.minimal_quorum_size_for_epsilon`).
    """
    if not 0.0 < total_budget < 1.0:
        raise ConfigurationError(f"total budget must lie in (0, 1), got {total_budget}")
    if operations < 1:
        raise ConfigurationError(f"operation count must be positive, got {operations}")
    return total_budget / operations
