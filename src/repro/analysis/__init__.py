"""Probability and combinatorics substrate used throughout the library.

This subpackage contains the exact and bounded computations that the paper's
analysis relies on:

* :mod:`repro.analysis.combinatorics` — log-binomials and exact binomial /
  hypergeometric distributions, implemented in log space so that the
  universe sizes used in the paper's Section 6 (up to ``n = 900``) and far
  beyond are handled without overflow.
* :mod:`repro.analysis.intersection` — exact probabilities of the
  intersection events that define ε-intersecting, (b,ε)-dissemination and
  (b,ε)-masking quorum systems, together with the closed-form upper bounds
  proved in the paper (Lemma 3.15, Lemma 4.3, Lemma 4.5, Theorem 5.10).
* :mod:`repro.analysis.chernoff` — the Chernoff/Hoeffding machinery used in
  Lemmas 5.7 and 5.9 and in the failure-probability analysis.
* :mod:`repro.analysis.failure_probability` — exact and Monte-Carlo failure
  probabilities of threshold-style systems plus the strict-quorum
  lower-bound curve drawn in Figures 1-3.
"""

from repro.analysis.combinatorics import (
    binomial_cdf,
    binomial_pmf,
    binomial_sf,
    hypergeometric_cdf,
    hypergeometric_mean,
    hypergeometric_pmf,
    hypergeometric_sf,
    log_binomial,
    log_factorial,
)
from repro.analysis.chernoff import (
    chernoff_upper_tail,
    chernoff_lower_tail,
    hoeffding_binomial_tail,
    psi_one,
    psi_two,
)
from repro.analysis.repeated_access import (
    all_attempts_miss_probability,
    at_least_one_hit_probability,
    attempts_needed_for_confidence,
    epsilon_budget_per_operation,
    expected_staleness,
    staleness_distribution,
    union_bound_over_operations,
)
from repro.analysis.intersection import (
    dissemination_epsilon_bound,
    dissemination_epsilon_exact,
    intersection_epsilon_bound,
    intersection_epsilon_exact,
    masking_epsilon_bound,
    masking_epsilon_exact,
    masking_error_decomposition,
)
from repro.analysis.failure_probability import (
    crash_failure_probability_uniform,
    grid_failure_probability,
    majority_failure_probability,
    singleton_failure_probability,
    strict_lower_bound_curve,
    threshold_failure_probability,
)

__all__ = [
    "binomial_cdf",
    "binomial_pmf",
    "binomial_sf",
    "hypergeometric_cdf",
    "hypergeometric_mean",
    "hypergeometric_pmf",
    "hypergeometric_sf",
    "log_binomial",
    "log_factorial",
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "hoeffding_binomial_tail",
    "psi_one",
    "psi_two",
    "dissemination_epsilon_bound",
    "dissemination_epsilon_exact",
    "intersection_epsilon_bound",
    "intersection_epsilon_exact",
    "masking_epsilon_bound",
    "masking_epsilon_exact",
    "masking_error_decomposition",
    "crash_failure_probability_uniform",
    "grid_failure_probability",
    "majority_failure_probability",
    "singleton_failure_probability",
    "strict_lower_bound_curve",
    "threshold_failure_probability",
    "all_attempts_miss_probability",
    "at_least_one_hit_probability",
    "attempts_needed_for_confidence",
    "epsilon_budget_per_operation",
    "expected_staleness",
    "staleness_distribution",
    "union_bound_over_operations",
]
