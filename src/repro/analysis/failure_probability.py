"""Crash failure probabilities of quorum systems (Definition 2.6 / 3.8).

The failure probability ``Fp`` of a quorum system is the probability that
*every* quorum contains at least one crashed server, when servers crash
independently with probability ``p``.  For the uniform constructions of the
paper and for threshold systems this reduces to a binomial tail; for grid
systems an exact inclusion-exclusion formula is used; a Monte-Carlo fallback
covers arbitrary explicit systems.

This module also produces the two reference curves of Figures 1-3:

* the strict-quorum lower bound, formed (footnote 3 of the paper) as the
  minimum of the majority system's failure probability (best strict system
  for ``p < 1/2``) and the singleton's failure probability ``p`` (best for
  ``p >= 1/2``);
* the "threshold" strict constructions whose quorum sizes are
  ``⌈(n+1)/2⌉``, ``⌈(n+b+1)/2⌉`` and ``⌈(n+2b+1)/2⌉`` for the plain,
  dissemination and masking cases respectively.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.analysis.combinatorics import binomial, binomial_sf
from repro.types import FailureCurvePoint


def _validate_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"crash probability must lie in [0, 1], got {p}")


# ---------------------------------------------------------------------------
# Threshold-style systems (including the paper's uniform constructions)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1 << 16)
def crash_failure_probability_uniform(n: int, quorum_size: int, p: float) -> float:
    """Exact ``Fp`` of a system whose quorums are *all* subsets of size ``q``.

    The system ``R(n, q)`` is disabled exactly when fewer than ``q`` servers
    remain alive, i.e. when more than ``n - q`` servers crash, so
    ``Fp = P(Bin(n, p) > n - q)``.
    """
    if n <= 0:
        raise ValueError(f"universe size must be positive, got {n}")
    if not 0 < quorum_size <= n:
        raise ValueError(f"quorum size must lie in (0, {n}], got {quorum_size}")
    _validate_probability(p)
    return binomial_sf(n - quorum_size, n, p)


def threshold_failure_probability(n: int, quorum_size: int, p: float) -> float:
    """Exact ``Fp`` of the strict threshold system with quorums of size ``m``.

    The threshold system's quorums are every subset of size ``m`` with
    ``m > n/2`` (so that any two intersect); it is disabled exactly when
    fewer than ``m`` servers survive.  Numerically this is the same binomial
    tail as :func:`crash_failure_probability_uniform`; the separate name
    keeps call sites readable (strict baseline vs. probabilistic
    construction).
    """
    return crash_failure_probability_uniform(n, quorum_size, p)


def majority_failure_probability(n: int, p: float) -> float:
    """``Fp`` of the simple majority system (quorum size ``⌈(n+1)/2⌉``)."""
    quorum_size = math.ceil((n + 1) / 2)
    return threshold_failure_probability(n, quorum_size, p)


def singleton_failure_probability(p: float) -> float:
    """``Fp`` of the singleton system (one server): simply ``p``."""
    _validate_probability(p)
    return p


def strict_lower_bound(n: int, p: float) -> float:
    """Lower bound on ``Fp`` over *all* strict quorum systems of ``<= n`` servers.

    Peleg and Wool [PW95] show that for ``p < 1/2`` no strict system beats
    the majority system asymptotically and that for ``p >= 1/2`` every strict
    system has ``Fp >= p`` (achieved by the singleton).  Following footnote 3
    of the paper, the reference curve in Figures 1-3 is the pointwise minimum
    of those two curves.
    """
    return min(majority_failure_probability(n, p), singleton_failure_probability(p))


def strict_lower_bound_curve(n: int, ps: Iterable[float]) -> List[FailureCurvePoint]:
    """The strict lower-bound curve evaluated on a grid of crash probabilities."""
    return [FailureCurvePoint(p=p, failure_probability=strict_lower_bound(n, p)) for p in ps]


def failure_curve_uniform(
    n: int, quorum_size: int, ps: Iterable[float]
) -> List[FailureCurvePoint]:
    """Failure-probability curve of ``R(n, q)`` over a grid of ``p`` values."""
    return [
        FailureCurvePoint(
            p=p, failure_probability=crash_failure_probability_uniform(n, quorum_size, p)
        )
        for p in ps
    ]


# ---------------------------------------------------------------------------
# Grid systems
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1 << 14)
def grid_failure_probability(rows: int, cols: int, p: float) -> float:
    """Exact ``Fp`` of the Maekawa grid on a ``rows x cols`` array of servers.

    A grid quorum is one full row plus one full column, so a live quorum
    exists iff some row is fully alive *and* some column is fully alive.  By
    inclusion-exclusion over the sets of fully-alive rows/columns,

    ``P(no full row ∧ no full col)
        = Σ_{i,j} (-1)^{i+j} C(r,i) C(c,j) s^{ic + jr - ij}``

    with ``s = 1 - p``, and ``Fp = P(no full row) + P(no full col) -
    P(no full row ∧ no full col)`` follows from de Morgan.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    _validate_probability(p)
    s = 1.0 - p
    p_no_row = (1.0 - s ** cols) ** rows
    p_no_col = (1.0 - s ** rows) ** cols
    terms = []
    for i in range(rows + 1):
        for j in range(cols + 1):
            sign = -1.0 if (i + j) % 2 else 1.0
            covered = i * cols + j * rows - i * j
            terms.append(sign * binomial(rows, i) * binomial(cols, j) * s ** covered)
    p_no_row_and_no_col = math.fsum(terms)
    failure = p_no_row + p_no_col - p_no_row_and_no_col
    return min(1.0, max(0.0, failure))


# ---------------------------------------------------------------------------
# Monte-Carlo fallback for explicit systems
# ---------------------------------------------------------------------------


def monte_carlo_failure_probability(
    quorums: Sequence[frozenset],
    n: int,
    p: float,
    trials: int = 20_000,
    seed: int | None = 0,
    engine: str = "sequential",
    chunk_size: int = 8192,
) -> float:
    """Monte-Carlo estimate of ``Fp`` for an arbitrary explicit set system.

    Each trial crashes every server independently with probability ``p`` and
    checks whether any quorum survives intact.  Intended for explicit systems
    whose structure admits no closed form (e.g. weighted-voting systems);
    threshold and grid systems should use the exact functions above.

    ``engine="batch"`` draws crash masks for a whole chunk of trials at once
    and counts each quorum's dead members with one integer matrix product;
    ``engine="sequential"`` is the per-trial oracle (and the default, so
    seeded callers keep their exact historical estimates).
    """
    if n <= 0:
        raise ValueError(f"universe size must be positive, got {n}")
    if trials <= 0:
        raise ValueError(f"trial count must be positive, got {trials}")
    if not quorums:
        raise ValueError("cannot estimate the failure probability of an empty system")
    _validate_probability(p)
    if engine == "batch":
        return _batch_failure_probability(quorums, n, p, trials, seed, chunk_size)
    if engine != "sequential":
        raise ValueError(f"unknown engine {engine!r}; expected 'sequential' or 'batch'")
    rng = random.Random(seed)
    failures = 0
    quorum_list: List[Tuple[int, ...]] = [tuple(sorted(q)) for q in quorums]
    for _ in range(trials):
        alive = [rng.random() >= p for _ in range(n)]
        if not any(all(alive[s] for s in q) for q in quorum_list):
            failures += 1
    return failures / trials


def _batch_failure_probability(
    quorums: Sequence[frozenset],
    n: int,
    p: float,
    trials: int,
    seed: int | None,
    chunk_size: int,
) -> float:
    """Vectorised ``Fp`` estimate: a quorum survives iff it has zero dead members."""
    from repro.quorum.base import membership_matrix
    from repro.rngs import chunked_substreams

    member = membership_matrix(quorums, n).astype(np.int32)
    failures = 0
    for generator, size in chunked_substreams(seed, trials, chunk_size):
        dead = (generator.random((size, n)) < p).astype(np.int32)
        dead_per_quorum = dead @ member.T
        failures += int((dead_per_quorum > 0).all(axis=1).sum())
    return failures / trials
