"""Exact and bounded intersection probabilities for uniform random quorums.

These are the quantities that define the paper's three system classes:

* **ε-intersecting** (Definition 3.1): ``P(Q ∩ Q' = ∅) <= ε`` for two quorums
  drawn independently and uniformly among all subsets of size ``q``.
* **(b,ε)-dissemination** (Definition 4.1): ``P(Q ∩ Q' ⊆ B) <= ε`` for every
  Byzantine set ``B`` with ``|B| = b``.
* **(b,ε)-masking** (Definition 5.1): ``P(|Q ∩ B| < k  ∧  |Q ∩ Q' \\ B| >= k)
  >= 1 - ε`` for every ``B`` with ``|B| = b``.

For each event this module provides both the *exact* probability (used to
size the constructions in Tables 2-4, where ``ℓ`` is "chosen as small as
possible" subject to ``ε <= 0.001``) and the *closed-form upper bound* proved
in the paper (Lemma 3.15 for ε-intersecting, Lemmas 4.3/4.5 for
dissemination, Theorem 5.10 for masking).

The exact formulas follow from symmetry of the uniform strategy:

* ``P(Q ∩ Q' = ∅) = C(n - q, q) / C(n, q)``;
* ``P(Q ∩ Q' ⊆ B) = Σ_j P(|Q' ∩ B| = j) · C(n - (q - j), q) / C(n, q)``,
  conditioning on how many elements of the *write* quorum fall inside ``B``;
* the masking event factors through ``x = |Q ∩ B|`` (hypergeometric), and,
  conditioned on ``x``, ``|Q' ∩ (Q \\ B)|`` is hypergeometric with ``q - x``
  marked elements because ``Q'`` is drawn independently of ``Q``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.chernoff import masking_psi
from repro.analysis.combinatorics import (
    hypergeometric_pmf,
    hypergeometric_pmf_grid,
    log_binomial,
)

# ---------------------------------------------------------------------------
# ε-intersecting systems (Section 3)
# ---------------------------------------------------------------------------


def _validate_universe_quorum(n: int, q: int) -> None:
    if n <= 0:
        raise ValueError(f"universe size must be positive, got {n}")
    if not 0 < q <= n:
        raise ValueError(f"quorum size must lie in (0, {n}], got {q}")


@lru_cache(maxsize=1 << 16)
def intersection_epsilon_exact(n: int, q: int, q2: int | None = None) -> float:
    """Exact probability that two uniform random quorums do not intersect.

    ``P(Q ∩ Q' = ∅) = C(n - q, q') / C(n, q')`` where ``|Q| = q`` and
    ``|Q'| = q'`` (``q' = q`` by default).  This is the exact value behind
    Lemma 3.15; the lemma's ``e^{-ℓ²}`` is an upper bound on it.
    """
    _validate_universe_quorum(n, q)
    second = q if q2 is None else q2
    _validate_universe_quorum(n, second)
    if q + second > n:
        return 0.0
    log_p = log_binomial(n - q, second) - log_binomial(n, second)
    return math.exp(log_p)


def intersection_epsilon_bound(n: int, q: int) -> float:
    """Lemma 3.15 upper bound ``P(Q ∩ Q' = ∅) < e^{-q²/n} = e^{-ℓ²}``."""
    _validate_universe_quorum(n, q)
    return math.exp(-(q * q) / n)


def intersection_probability(n: int, q: int, q2: int | None = None) -> float:
    """Exact probability that two uniform random quorums *do* intersect."""
    return 1.0 - intersection_epsilon_exact(n, q, q2)


def expected_overlap(n: int, q: int, q2: int | None = None) -> float:
    """Expected size of the overlap of two independent uniform quorums.

    ``E[|Q ∩ Q'|] = q q' / n``; for ``q = ℓ√n`` this is the ``ℓ²`` referred
    to in Section 3.4's birthday-paradox intuition.
    """
    _validate_universe_quorum(n, q)
    second = q if q2 is None else q2
    _validate_universe_quorum(n, second)
    return q * second / n


# ---------------------------------------------------------------------------
# (b, ε)-dissemination systems (Section 4)
# ---------------------------------------------------------------------------


def _validate_byzantine(n: int, q: int, b: int) -> None:
    _validate_universe_quorum(n, q)
    if not 0 <= b < n:
        raise ValueError(f"Byzantine threshold must lie in [0, {n}), got {b}")


@lru_cache(maxsize=1 << 16)
def dissemination_epsilon_exact(n: int, q: int, b: int) -> float:
    """Exact ``P(Q ∩ Q' ⊆ B)`` for a worst-case Byzantine set of size ``b``.

    By symmetry of the uniform strategy the probability is the same for every
    set ``B`` of size ``b``, so "worst case" and "any fixed ``B``" coincide.
    Conditioning on ``j = |Q' ∩ B|`` (hypergeometric), the event becomes
    "``Q`` misses the ``q - j`` servers of ``Q' \\ B``", whose probability is
    ``C(n - (q - j), q) / C(n, q)``.
    """
    _validate_byzantine(n, q, b)
    if b == 0:
        return intersection_epsilon_exact(n, q)
    log_cn_q = log_binomial(n, q)
    total = 0.0
    for j in range(0, min(q, b) + 1):
        weight = hypergeometric_pmf(j, n, b, q)
        if weight == 0.0:
            continue
        outside = q - j  # size of Q' \ B
        log_miss = log_binomial(n - outside, q) - log_cn_q
        miss = math.exp(log_miss) if log_miss != float("-inf") else 0.0
        total += weight * miss
    return min(1.0, total)


def dissemination_epsilon_bound(n: int, q: int, b: int) -> float:
    """Closed-form upper bound on ``P(Q ∩ Q' ⊆ B)`` from Lemmas 4.3 and 4.5.

    For ``b <= n/3`` the paper proves the bound ``2 e^{-ℓ²/6}`` with
    ``ℓ = q/√n`` (Lemma 4.3).  For a general fraction ``α = b/n`` with
    ``1/3 < α < 1`` Lemma 4.5 gives
    ``ε_α = (2 / (1 - α)) · α^{ℓ² (1 - √α) / 2}``.
    """
    _validate_byzantine(n, q, b)
    ell = q / math.sqrt(n)
    alpha = b / n
    if alpha <= 1.0 / 3.0:
        return min(1.0, 2.0 * math.exp(-ell * ell / 6.0))
    if alpha >= 1.0:
        return 1.0
    exponent = ell * ell * (1.0 - math.sqrt(alpha)) / 2.0
    return min(1.0, (2.0 / (1.0 - alpha)) * alpha ** exponent)


# ---------------------------------------------------------------------------
# (b, ε)-masking systems (Section 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MaskingErrorDecomposition:
    """The two failure modes of a masking read (Section 5.4).

    Attributes
    ----------
    p_too_many_faulty:
        ``P(|Q ∩ B| >= k)`` — the read quorum touches so many faulty servers
        that a fabricated value could pass the threshold.
    p_too_few_correct:
        ``P(|Q ∩ Q' \\ B| < k)`` — the read quorum shares too few correct
        up-to-date servers with the write quorum for the true value to pass
        the threshold.
    union_bound:
        Sum of the two (the quantity bounded in Theorem 5.10).
    exact_error:
        Exact ``P(|Q ∩ B| >= k  ∨  |Q ∩ Q' \\ B| < k)`` accounting for the
        (mild, favourable) dependence between the two events.
    """

    p_too_many_faulty: float
    p_too_few_correct: float
    union_bound: float
    exact_error: float


def default_masking_threshold(n: int, q: int) -> float:
    """The paper's threshold choice ``k = q² / (2n)`` (Section 5.3)."""
    _validate_universe_quorum(n, q)
    return q * q / (2.0 * n)


@lru_cache(maxsize=1 << 14)
def masking_error_decomposition(
    n: int, q: int, b: int, k: float | None = None
) -> MaskingErrorDecomposition:
    """Exact decomposition of the masking error probability.

    The masking event of Definition 5.1 succeeds when ``X = |Q ∩ B| < k`` and
    ``Y = |Q ∩ Q' \\ B| >= k``.  ``X`` is hypergeometric.  Conditioned on
    ``X = x`` the set ``Q \\ B`` has ``q - x`` servers, and since ``Q'`` is
    drawn independently, ``Y | X = x`` is ``Hypergeom(n, q - x, q)``.  The
    read threshold is an integer count, so a real-valued ``k`` is applied as
    ``count >= ceil(k)`` (equivalently ``count < k`` means
    ``count <= ceil(k) - 1``).

    Both distributions are evaluated as one ``(x, y)`` pmf grid in log space
    (calibration scans thousands of ``(q, k)`` candidates, so this is a hot
    path), and results are memoised — the function is pure.
    """
    _validate_byzantine(n, q, b)
    if k is None:
        k = default_masking_threshold(n, q)
    if k <= 0:
        raise ValueError(f"threshold k must be positive, got {k}")
    k_int = math.ceil(k)

    # P(X = x) over the support of X = |Q ∩ B| ~ Hypergeom(n, b, q).
    x = np.arange(min(q, b) + 1)
    p_x = hypergeometric_pmf_grid(n, [b], q)[0, : x.size] if b > 0 else np.ones(1)

    # P(X >= k) -- too many faulty servers in the read quorum.
    p_x_high = float(p_x[x >= k_int].sum()) if b > 0 else 0.0

    # Row x of the grid is the pmf of Y | X = x ~ Hypergeom(n, q - x, q);
    # summing columns >= ceil(k) gives P(Y >= k | X = x) for every x at once.
    p_y_given_x = hypergeometric_pmf_grid(n, q - x, q)
    if k_int <= q:
        p_y_ge_k = np.clip(p_y_given_x[:, k_int:].sum(axis=1), 0.0, 1.0)
    else:
        p_y_ge_k = np.zeros(x.size)

    p_y_low = float((p_x * (1.0 - p_y_ge_k)).sum())
    p_success = float((p_x * p_y_ge_k)[x < k].sum())
    exact_error = max(0.0, 1.0 - p_success)
    return MaskingErrorDecomposition(
        p_too_many_faulty=min(1.0, p_x_high),
        p_too_few_correct=min(1.0, p_y_low),
        union_bound=min(1.0, p_x_high + p_y_low),
        exact_error=min(1.0, exact_error),
    )


def masking_epsilon_exact(n: int, q: int, b: int, k: float | None = None) -> float:
    """Exact masking error ``P(|Q∩B| >= k  ∨  |Q∩Q'\\B| < k)`` (Definition 5.1)."""
    return masking_error_decomposition(n, q, b, k).exact_error


def masking_epsilon_bound(n: int, q: int, b: int) -> float:
    """Theorem 5.10 bound ``ε = 2 exp(-(q²/n) min{ψ₁(ℓ), ψ₂(ℓ)})`` with ``ℓ = q/b``.

    Requires ``ℓ = q/b > 2`` (the regime in which the threshold
    ``k = q²/2n`` separates the two expectations of Section 5.3).
    """
    _validate_byzantine(n, q, b)
    if b == 0:
        raise ValueError("masking bound requires b >= 1; use the intersection bound for b = 0")
    ell = q / b
    if ell <= 2.0:
        raise ValueError(
            f"Theorem 5.10 requires q/b > 2, got q={q}, b={b} (ratio {ell:.3f})"
        )
    return min(1.0, 2.0 * math.exp(-(q * q / n) * masking_psi(ell)))


def masking_expectations(n: int, q: int, b: int) -> tuple[float, float]:
    """The two expectations framing the threshold ``k`` (Eqs. 13 and 14).

    Returns ``(E[X], E[Y]) = (q²/(ℓn), (q²/n)(1 - q/(ℓn)))`` where
    ``ℓ = q/b``, i.e. ``E[X] = q b / n`` and ``E[Y] = (n - b) q² / n²``.
    A valid threshold must lie strictly between them.
    """
    _validate_byzantine(n, q, b)
    e_x = q * b / n
    e_y = (n - b) * q * q / (n * n)
    return e_x, e_y
