"""Exact combinatorial primitives in log space.

The paper's constructions are analysed through binomial coefficients and the
hypergeometric distribution: the size of the overlap between two uniformly
random quorums of size ``q`` drawn from a universe of ``n`` servers is
hypergeometric, and the number of crashed servers under independent crashes
with probability ``p`` is binomial.  This module provides those primitives
exactly (up to floating point rounding) by working with log-factorials, so
that they remain usable for universes far larger than the ``n = 900`` used
in Section 6 of the paper.

All functions are pure and deterministic; they form the numerical foundation
for :mod:`repro.analysis.intersection` and
:mod:`repro.analysis.failure_probability`.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, List

import numpy as np
from scipy.special import gammaln

#: Cache bound for the distribution tails.  The calibration scans evaluate
#: the same (n, marked, draws) tails for many thresholds, and the estimator
#: inner loops re-query identical parameters across sweep points; a bounded
#: cache keeps those lookups O(1) without letting memory grow with the sweep.
_TAIL_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=None)
def log_factorial(n: int) -> float:
    """Return ``ln(n!)`` using :func:`math.lgamma`.

    Parameters
    ----------
    n:
        A non-negative integer.

    Raises
    ------
    ValueError
        If ``n`` is negative.
    """
    if n < 0:
        raise ValueError(f"log_factorial requires n >= 0, got {n}")
    return math.lgamma(n + 1)


def log_binomial(n: int, k: int) -> float:
    """Return ``ln(C(n, k))``; ``-inf`` when the coefficient is zero.

    ``C(n, k)`` is zero when ``k < 0`` or ``k > n``; returning ``-inf`` for
    those cases lets callers sum probabilities without special-casing the
    boundaries of hypergeometric supports.
    """
    if n < 0:
        raise ValueError(f"log_binomial requires n >= 0, got n={n}")
    if k < 0 or k > n:
        return float("-inf")
    return log_factorial(n) - log_factorial(k) - log_factorial(n - k)


def binomial(n: int, k: int) -> int:
    """Return the exact integer binomial coefficient ``C(n, k)``."""
    if n < 0:
        raise ValueError(f"binomial requires n >= 0, got n={n}")
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


@lru_cache(maxsize=64)
def log_factorial_table(n: int) -> np.ndarray:
    """Return ``[ln(0!), ln(1!), ..., ln(n!)]`` as a read-only array.

    The vectorised hypergeometric kernels replace per-cell ``lgamma``
    evaluations with three lookups into this table, which is what makes the
    calibration scans cheap.  Cached per ``n`` (one table per universe size).
    """
    if n < 0:
        raise ValueError(f"log_factorial_table requires n >= 0, got {n}")
    table = gammaln(np.arange(n + 1, dtype=np.float64) + 1.0)
    table.setflags(write=False)
    return table


def log_binomial_grid(n_values, k_values) -> np.ndarray:
    """Vectorised ``ln(C(n, k))`` over broadcastable arrays.

    Entries with ``k < 0`` or ``k > n`` get ``-inf`` (a zero coefficient),
    mirroring :func:`log_binomial`, so hypergeometric grids can be summed
    without masking out the boundary of the support first.
    """
    n_arr = np.asarray(n_values, dtype=np.float64)
    k_arr = np.asarray(k_values, dtype=np.float64)
    n_arr, k_arr = np.broadcast_arrays(n_arr, k_arr)
    valid = (k_arr >= 0.0) & (k_arr <= n_arr) & (n_arr >= 0.0)
    k_safe = np.where(valid, k_arr, 0.0)
    n_safe = np.where(n_arr >= 0.0, n_arr, 0.0)
    out = gammaln(n_safe + 1.0) - gammaln(k_safe + 1.0) - gammaln(n_safe - k_safe + 1.0)
    return np.where(valid, out, -np.inf)


def hypergeometric_pmf_grid(n: int, marked_values, draws: int) -> np.ndarray:
    """Pmf matrix of ``Hypergeom(n, m, draws)`` for several marked counts ``m``.

    Returns an array of shape ``(len(marked_values), draws + 1)`` whose row
    ``i`` is the pmf of ``Hypergeom(n, marked_values[i], draws)`` over
    ``k = 0..draws``.  This is the kernel of the exact masking-error
    computation, where the number of correct servers in the read quorum
    varies with the number of faulty ones.
    """
    _validate_hypergeometric(n, 0, draws)
    marked = np.asarray(marked_values, dtype=np.int64)
    if marked.size and (marked.min() < 0 or marked.max() > n):
        raise ValueError(f"marked counts must lie in [0, {n}]")
    lf = log_factorial_table(n)
    m = marked[:, None]
    k = np.arange(draws + 1, dtype=np.int64)[None, :]
    # Support: 0 <= k <= m and draws - k <= n - m.
    valid = (k <= m) & (k >= draws + m - n)
    mk = np.where(valid, m - k, 0)
    rest = np.where(valid, n - m - draws + k, 0)
    log_pmf = (
        lf[m] - lf[np.where(valid, k, 0)] - lf[mk]
        + lf[n - m] - lf[np.where(valid, draws - k, 0)] - lf[rest]
        - (lf[n] - lf[draws] - lf[n - draws])
    )
    return np.exp(np.where(valid, log_pmf, -np.inf))


def log_sum_exp(values: Iterable[float]) -> float:
    """Numerically stable ``ln(sum(exp(v)))`` over an iterable of log-values."""
    vals = [v for v in values if v != float("-inf")]
    if not vals:
        return float("-inf")
    m = max(vals)
    return m + math.log(sum(math.exp(v - m) for v in vals))


# ---------------------------------------------------------------------------
# Binomial distribution
# ---------------------------------------------------------------------------


def _validate_binomial(n: int, p: float) -> None:
    if n < 0:
        raise ValueError(f"binomial distribution requires n >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {p}")


def binomial_pmf(k: int, n: int, p: float) -> float:
    """Exact ``P(Bin(n, p) = k)``.

    Handles the degenerate cases ``p = 0`` and ``p = 1`` without evaluating
    ``log(0)``.
    """
    _validate_binomial(n, p)
    if k < 0 or k > n:
        return 0.0
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = log_binomial(n, k) + k * math.log(p) + (n - k) * math.log1p(-p)
    return math.exp(log_pmf)


@lru_cache(maxsize=_TAIL_CACHE_SIZE)
def binomial_cdf(k: int, n: int, p: float) -> float:
    """Exact ``P(Bin(n, p) <= k)`` (memoised: pure in its arguments)."""
    _validate_binomial(n, p)
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    # Sum the smaller tail for accuracy, then complement if needed.
    if k <= n // 2:
        total = sum(binomial_pmf(i, n, p) for i in range(0, k + 1))
        return min(1.0, total)
    upper = sum(binomial_pmf(i, n, p) for i in range(k + 1, n + 1))
    return max(0.0, 1.0 - upper)


@lru_cache(maxsize=_TAIL_CACHE_SIZE)
def binomial_sf(k: int, n: int, p: float) -> float:
    """Exact survival function ``P(Bin(n, p) > k)`` (memoised)."""
    _validate_binomial(n, p)
    if k < 0:
        return 1.0
    if k >= n:
        return 0.0
    if k >= n // 2:
        total = sum(binomial_pmf(i, n, p) for i in range(k + 1, n + 1))
        return min(1.0, total)
    return max(0.0, 1.0 - binomial_cdf(k, n, p))


# ---------------------------------------------------------------------------
# Hypergeometric distribution
# ---------------------------------------------------------------------------


def _validate_hypergeometric(n: int, marked: int, draws: int) -> None:
    if n < 0:
        raise ValueError(f"population size must be non-negative, got {n}")
    if not 0 <= marked <= n:
        raise ValueError(f"marked count must lie in [0, {n}], got {marked}")
    if not 0 <= draws <= n:
        raise ValueError(f"draw count must lie in [0, {n}], got {draws}")


def hypergeometric_support(n: int, marked: int, draws: int) -> range:
    """Return the support of ``Hypergeom(n, marked, draws)`` as a range."""
    _validate_hypergeometric(n, marked, draws)
    low = max(0, draws + marked - n)
    high = min(draws, marked)
    return range(low, high + 1)


def hypergeometric_pmf(k: int, n: int, marked: int, draws: int) -> float:
    """Exact ``P(X = k)`` where ``X ~ Hypergeom(n, marked, draws)``.

    ``X`` counts how many of the ``draws`` servers sampled without
    replacement from a universe of ``n`` fall inside a marked subset of size
    ``marked``.  In the paper this is ``|Q ∩ B|`` for a uniformly random
    quorum ``Q`` of size ``draws`` and a fixed set ``B``.
    """
    _validate_hypergeometric(n, marked, draws)
    if k < 0 or k > draws or k > marked or draws - k > n - marked:
        return 0.0
    log_pmf = (
        log_binomial(marked, k)
        + log_binomial(n - marked, draws - k)
        - log_binomial(n, draws)
    )
    return math.exp(log_pmf)


def hypergeometric_pmf_vector(n: int, marked: int, draws: int) -> List[float]:
    """Return the pmf of ``Hypergeom(n, marked, draws)`` over ``0..draws``."""
    return [hypergeometric_pmf(k, n, marked, draws) for k in range(draws + 1)]


@lru_cache(maxsize=_TAIL_CACHE_SIZE)
def hypergeometric_cdf(k: int, n: int, marked: int, draws: int) -> float:
    """Exact ``P(X <= k)`` for ``X ~ Hypergeom(n, marked, draws)`` (memoised)."""
    _validate_hypergeometric(n, marked, draws)
    support = hypergeometric_support(n, marked, draws)
    if k < support.start:
        return 0.0
    if k >= support.stop - 1:
        return 1.0
    total = sum(hypergeometric_pmf(i, n, marked, draws) for i in range(support.start, k + 1))
    return min(1.0, total)


@lru_cache(maxsize=_TAIL_CACHE_SIZE)
def hypergeometric_sf(k: int, n: int, marked: int, draws: int) -> float:
    """Exact ``P(X > k)`` for ``X ~ Hypergeom(n, marked, draws)`` (memoised)."""
    _validate_hypergeometric(n, marked, draws)
    support = hypergeometric_support(n, marked, draws)
    if k < support.start:
        return 1.0
    if k >= support.stop - 1:
        return 0.0
    total = sum(hypergeometric_pmf(i, n, marked, draws) for i in range(k + 1, support.stop))
    return min(1.0, total)


def hypergeometric_mean(n: int, marked: int, draws: int) -> float:
    """Mean of ``Hypergeom(n, marked, draws)``: ``draws * marked / n``.

    This is Eq. (13) of the paper with ``marked = b`` and ``draws = q``:
    ``E[|Q ∩ B|] = q b / n``.
    """
    _validate_hypergeometric(n, marked, draws)
    if n == 0:
        return 0.0
    return draws * marked / n


def hypergeometric_variance(n: int, marked: int, draws: int) -> float:
    """Variance of ``Hypergeom(n, marked, draws)``."""
    _validate_hypergeometric(n, marked, draws)
    if n <= 1:
        return 0.0
    frac = marked / n
    return draws * frac * (1.0 - frac) * (n - draws) / (n - 1)


def falling_factorial_ratio(n: int, c: int, i: int) -> float:
    """Return ``C(n - c, c - i) / C(n, c)`` exactly (in log space).

    Proposition 3.14 of the paper bounds this ratio by
    ``(c / n)^i ((n - c) / (n - i))^(c - i)``; the exact value is needed for
    the exact ε computations used in Tables 2-4.
    """
    if c < 0 or i < 0 or i > c:
        raise ValueError(f"invalid parameters n={n}, c={c}, i={i}")
    num = log_binomial(n - c, c - i)
    den = log_binomial(n, c)
    if num == float("-inf"):
        return 0.0
    return math.exp(num - den)


def proposition_3_14_bound(n: int, c: int, i: int) -> float:
    """The upper bound of Proposition 3.14: ``(c/n)^i ((n-c)/(n-i))^(c-i)``."""
    if n <= 0 or c < 0 or i < 0 or i > c or i >= n:
        raise ValueError(f"invalid parameters n={n}, c={c}, i={i}")
    if c > n:
        return 0.0
    return (c / n) ** i * ((n - c) / (n - i)) ** (c - i)
