"""Chernoff/Hoeffding bounds used in the paper's analysis.

The paper bounds the tails of three random variables:

* ``X = |Q ∩ B|`` — how many faulty servers a random quorum touches
  (Lemma 5.7, via a Chernoff bound on the binomial that dominates the
  hypergeometric by Hoeffding's Theorem 4 [Hoe63]);
* ``Y = |Q ∩ Q' \\ B|`` — how many correct, up-to-date servers a read quorum
  shares with the preceding write quorum (Lemma 5.9);
* the number of crashed servers in the whole universe, used for the failure
  probability ``Fp(R(n, q)) <= exp(-2 n (1 - q/n - p)^2)`` in Sections 3.4
  and 5.5.

The bound factors ``ψ₁`` and ``ψ₂`` of Theorem 5.10 are exposed directly so
that the masking construction and the calibration code can evaluate the
paper's closed-form ε.
"""

from __future__ import annotations

import math
from functools import lru_cache

#: The constant ``4e`` that splits the two Chernoff regimes in Lemma 5.7.
FOUR_E = 4.0 * math.e

#: All functions here are pure closed forms; the estimators evaluate them in
#: inner loops with heavily repeated arguments, so the bounds are memoised.
_BOUND_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=_BOUND_CACHE_SIZE)
def chernoff_upper_tail(mean: float, gamma: float) -> float:
    """Chernoff bound ``P(X > (1 + γ) E[X])`` for a sum of Bernoulli variables.

    Uses the two-regime form quoted in the paper (from Motwani & Raghavan):

    * ``exp(-E[X] γ² / 4)``   when ``0 < γ <= 2e - 1``;
    * ``2^{-(1 + γ) E[X]}``   when ``γ > 2e - 1``.

    Parameters
    ----------
    mean:
        ``E[X] >= 0``.
    gamma:
        Relative deviation ``γ > 0``.
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    if mean == 0:
        return 1.0
    if gamma <= 2.0 * math.e - 1.0:
        return math.exp(-mean * gamma * gamma / 4.0)
    return 2.0 ** (-(1.0 + gamma) * mean)


@lru_cache(maxsize=_BOUND_CACHE_SIZE)
def chernoff_lower_tail(mean: float, delta: float) -> float:
    """Chernoff bound ``P(X < (1 - δ) E[X]) <= exp(-E[X] δ² / 2)``.

    Valid for ``0 <= δ <= 1``; used in Lemma 5.9 of the paper.
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    return math.exp(-mean * delta * delta / 2.0)


@lru_cache(maxsize=_BOUND_CACHE_SIZE)
def hoeffding_binomial_tail(n: int, p: float, threshold: float) -> float:
    """Hoeffding bound ``P(Bin(n, p) > threshold) <= exp(-2 n (t - p)^2)``.

    where ``t = threshold / n >= p``.  This is the form the paper uses to
    bound the crash failure probability of ``R(n, q)``:
    ``Fp <= exp(-2 n (1 - q/n - p)^2)`` for ``p <= 1 - q/n``.

    Returns ``1.0`` when the bound is vacuous (``threshold/n < p``).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    t = threshold / n
    if t < p:
        return 1.0
    if t > 1.0:
        return 0.0
    return math.exp(-2.0 * n * (t - p) ** 2)


def crash_failure_bound(n: int, quorum_size: int, p: float) -> float:
    """The paper's Chernoff bound on ``Fp(R(n, q))``.

    The uniform construction fails only if more than ``n - q`` servers crash,
    so ``Fp <= exp(-2 n (1 - q/n - p)^2)`` for ``p <= 1 - q/n`` (Sections 3.4
    and 5.5).  For ``p > 1 - q/n`` the bound is vacuous and ``1.0`` is
    returned.
    """
    if not 0 < quorum_size <= n:
        raise ValueError(f"quorum size must lie in (0, {n}], got {quorum_size}")
    return hoeffding_binomial_tail(n, p, n - quorum_size)


def psi_one(ell: float) -> float:
    """The factor ``ψ₁(ℓ)`` of Lemma 5.7.

    ``ψ₁(ℓ) = (ℓ/2 - 1)² / (4ℓ)`` for ``2 < ℓ <= 4e`` and ``1/3`` for
    ``ℓ > 4e``.  It controls the probability that a quorum touches at least
    ``k = q²/(2n)`` faulty servers.
    """
    if ell <= 2.0:
        raise ValueError(f"psi_one requires ell > 2, got {ell}")
    if ell <= FOUR_E:
        return (ell / 2.0 - 1.0) ** 2 / (4.0 * ell)
    return 1.0 / 3.0


def psi_two(ell: float) -> float:
    """The factor ``ψ₂(ℓ) = (ℓ - 2)² / (8 ℓ (ℓ - 1))`` of Lemma 5.9.

    It controls the probability that the read quorum shares fewer than
    ``k = q²/(2n)`` correct up-to-date servers with the write quorum.
    """
    if ell <= 2.0:
        raise ValueError(f"psi_two requires ell > 2, got {ell}")
    return (ell - 2.0) ** 2 / (8.0 * ell * (ell - 1.0))


def masking_psi(ell: float) -> float:
    """``min{ψ₁(ℓ), ψ₂(ℓ)}`` — the exponent factor of Theorem 5.10."""
    return min(psi_one(ell), psi_two(ell))


@lru_cache(maxsize=_BOUND_CACHE_SIZE)
def lemma_5_7_bound(n: int, q: int, ell: float) -> float:
    """Upper bound of Lemma 5.7: ``P(X >= k) <= exp(-ψ₁(ℓ) q² / n)``."""
    if n <= 0 or q <= 0 or q > n:
        raise ValueError(f"invalid n={n}, q={q}")
    return math.exp(-psi_one(ell) * q * q / n)


@lru_cache(maxsize=_BOUND_CACHE_SIZE)
def lemma_5_9_bound(n: int, q: int, ell: float) -> float:
    """Upper bound of Lemma 5.9: ``P(Y < k) <= exp(-ψ₂(ℓ) q² / n)``."""
    if n <= 0 or q <= 0 or q > n:
        raise ValueError(f"invalid n={n}, q={q}")
    return math.exp(-psi_two(ell) * q * q / n)
