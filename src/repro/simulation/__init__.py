"""Server/client simulation substrate.

The paper's protocols (Sections 3.1, 4 and 5) assume a universe of replica
servers that clients contact in quorums, where servers may crash or behave
arbitrarily (Byzantine).  The original work ran on the Phalanx replication
toolkit; this subpackage provides an in-process substitute that exercises the
same code path:

* :mod:`repro.simulation.events` — a small discrete-event scheduler;
* :mod:`repro.simulation.network` — message passing with latency and drops;
* :mod:`repro.simulation.server` — replica servers with pluggable behaviour
  (correct, crashed, and several Byzantine strategies);
* :mod:`repro.simulation.failures` — crash schedules and Byzantine set
  selection;
* :mod:`repro.simulation.cluster` — the synchronous quorum-RPC facade the
  protocol layer talks to;
* :mod:`repro.simulation.diffusion` — the gossip/anti-entropy update
  propagation sketched in Section 1.1;
* :mod:`repro.simulation.scenario` — declarative scenario descriptions
  (:class:`ScenarioSpec`) consumed by both Monte-Carlo engines;
* :mod:`repro.simulation.monte_carlo` — empirical consistency estimation
  used to validate Theorems 3.2, 4.2 and 5.2 against the analytical ε;
* :mod:`repro.simulation.batch` — the vectorised (NumPy) trial engine
  behind the estimators' ``engine="batch"`` switch.
"""

from repro.simulation.batch import (
    BatchTrialEngine,
    classify_threshold_votes,
    classify_tying_votes,
)
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec, WorkloadSpec
from repro.simulation.cluster import Cluster
from repro.simulation.diffusion import DiffusionEngine, gossip_rounds_batch
from repro.simulation.events import EventScheduler
from repro.simulation.failures import BatchFailureMasks, FailureModel, FailurePlan
from repro.simulation.network import ConstantLatency, Network, UniformLatency
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    CorrectBehavior,
    CrashedBehavior,
    ReplicaServer,
    ServerBehavior,
)
from repro.simulation.monte_carlo import (
    ConsistencyReport,
    StalenessReport,
    estimate_read_consistency,
    estimate_staleness_distribution,
)
from repro.simulation.client import LoadMeasurement, WorkloadClient, measure_system_load

__all__ = [
    "EventScheduler",
    "Network",
    "ConstantLatency",
    "UniformLatency",
    "ReplicaServer",
    "ServerBehavior",
    "CorrectBehavior",
    "CrashedBehavior",
    "ByzantineForgeBehavior",
    "ByzantineReplayBehavior",
    "ByzantineSilentBehavior",
    "FailurePlan",
    "FailureModel",
    "BatchFailureMasks",
    "BatchTrialEngine",
    "classify_threshold_votes",
    "classify_tying_votes",
    "AntiEntropySpec",
    "ScenarioSpec",
    "WorkloadSpec",
    "Cluster",
    "DiffusionEngine",
    "gossip_rounds_batch",
    "ConsistencyReport",
    "StalenessReport",
    "estimate_read_consistency",
    "estimate_staleness_distribution",
    "WorkloadClient",
    "LoadMeasurement",
    "measure_system_load",
]
