"""Gossip / anti-entropy diffusion of updates (Section 1.1).

The paper notes that a probabilistic quorum system "can be strengthened by a
properly designed diffusion mechanism, which propagates updates to
replicated data lazily, outside the critical path of client operations":
when updates are sufficiently dispersed in time, gossip drives the
probability of reading a stale value further toward zero.

:class:`DiffusionEngine` implements a simple push anti-entropy protocol over
a :class:`~repro.simulation.cluster.Cluster`: in each round every *correct*
server pushes its copy of every variable to ``fanout`` uniformly chosen
peers, which adopt it when the timestamp is newer.  Crashed servers neither
push nor receive; Byzantine servers ignore gossip (the most adversarial
choice for freshness) but their own pushes are also ignored by correct
servers when ``verify`` rejects their payloads (self-verifying data).

The ablation benchmark ``benchmarks/test_ablation_diffusion.py`` measures
how quickly the fraction of up-to-date servers approaches one as rounds
accumulate, which is the mechanism behind the paper's claim.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Set

import numpy as np

from repro.exceptions import ConfigurationError
from repro.simulation.cluster import Cluster
from repro.simulation.server import StoredValue
from repro.types import ServerId

#: Signature-verification callback: (variable, stored) -> bool.
Verifier = Callable[[str, StoredValue], bool]


class DiffusionEngine:
    """Push anti-entropy gossip over a cluster.

    Parameters
    ----------
    cluster:
        The cluster whose servers gossip.
    fanout:
        How many peers each server pushes to per round.
    verify:
        Optional verifier for self-verifying data; gossip payloads failing
        verification are discarded by correct recipients (so a Byzantine
        server cannot poison the diffusion).
    rng:
        Random source for peer selection.
    """

    def __init__(
        self,
        cluster: Cluster,
        fanout: int = 2,
        verify: Optional[Verifier] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if fanout < 0:
            raise ConfigurationError(
                f"gossip fanout must be non-negative, got {fanout}"
            )
        if fanout >= cluster.n:
            raise ConfigurationError(
                f"gossip fanout must be smaller than the cluster size {cluster.n}, got {fanout}"
            )
        self.cluster = cluster
        self.fanout = int(fanout)
        self.verify = verify
        self.rng = rng or random.Random(0)
        self.rounds_run = 0
        self.messages_pushed = 0

    # -- core gossip --------------------------------------------------------------

    def run_round(self, variables: Optional[Iterable[str]] = None) -> int:
        """Run one gossip round; return how many replicas adopted a newer value."""
        adopted = 0
        if self.fanout == 0:
            # fanout=0 is the identity: a round happens, nothing moves.
            self.rounds_run += 1
            return adopted
        server_ids = list(range(self.cluster.n))
        for server in self.cluster.servers:
            if server.is_crashed or server.is_byzantine:
                continue
            names = list(variables) if variables is not None else list(server.storage)
            if not names:
                continue
            peers = self.rng.sample(
                [s for s in server_ids if s != server.server_id], self.fanout
            )
            for variable in names:
                stored = server.storage.get(variable)
                if stored is None:
                    continue
                if self.verify is not None and not self.verify(variable, stored):
                    continue
                for peer_id in peers:
                    self.messages_pushed += 1
                    peer = self.cluster.server(peer_id)
                    if peer.merge(variable, stored):
                        adopted += 1
        self.rounds_run += 1
        return adopted

    def run_rounds(self, rounds: int, variables: Optional[Iterable[str]] = None) -> int:
        """Run several gossip rounds; return the total number of adoptions."""
        if rounds < 0:
            raise ConfigurationError(f"round count must be non-negative, got {rounds}")
        names = list(variables) if variables is not None else None
        total = 0
        for _ in range(rounds):
            total += self.run_round(names)
        return total

    def run_until_quiescent(
        self, variables: Optional[Iterable[str]] = None, max_rounds: int = 1_000
    ) -> int:
        """Gossip until a round adopts nothing new; return rounds run."""
        names = list(variables) if variables is not None else None
        for round_index in range(1, max_rounds + 1):
            if self.run_round(names) == 0:
                return round_index
        return max_rounds

    # -- measurement ----------------------------------------------------------------

    def coverage(self, variable: str, value) -> float:
        """Fraction of *correct* servers whose copy of ``variable`` equals ``value``.

        This is the quantity the diffusion ablation tracks round by round:
        the read staleness probability of a quorum of size ``q`` drops
        roughly like ``(1 - coverage)^q`` once gossip has spread the update.
        """
        correct = [
            self.cluster.server(s) for s in sorted(self.cluster.correct_servers())
        ]
        if not correct:
            return 0.0
        holding = 0
        for server in correct:
            stored = server.storage.get(variable)
            if stored is not None and stored.value == value:
                holding += 1
        return holding / len(correct)

    def freshness_profile(self, variable: str, value, rounds: int) -> List[float]:
        """Coverage after each of ``rounds`` gossip rounds (index 0 = before gossip)."""
        profile = [self.coverage(variable, value)]
        for _ in range(rounds):
            self.run_round([variable])
            profile.append(self.coverage(variable, value))
        return profile


# ---------------------------------------------------------------------------
# Batched gossip kernel
# ---------------------------------------------------------------------------


def gossip_rounds_batch(
    versions: np.ndarray,
    eligible: np.ndarray,
    fanout: int,
    rounds: int,
    generator: np.random.Generator,
) -> np.ndarray:
    """Run push anti-entropy over a whole batch of independent trials at once.

    ``versions`` is an integer ``(trials, n)`` matrix holding, per trial,
    the newest version each server stores (``-1`` = nothing); versions are
    totally ordered, so "adopt if newer" is an elementwise maximum.
    ``eligible`` marks the servers that participate — correct, non-crashed
    replicas; crashed servers neither push nor receive and Byzantine
    servers ignore gossip, exactly as in :meth:`DiffusionEngine.run_round`.

    Each eligible server pushes to ``fanout`` uniformly chosen peers
    (excluding itself).  Unlike the object engine, peers are drawn *with*
    replacement and rounds are synchronous (adoptions become visible to the
    next round, not later in the same one); both simplifications leave the
    per-round adoption probability of any fixed server unchanged to first
    order and only slow measured convergence by a fraction of a round,
    which is inside Monte-Carlo noise for the staleness estimators.

    Returns the updated version matrix (a new array; the input is not
    mutated).
    """
    trials, n = versions.shape
    if fanout < 0:
        raise ConfigurationError(f"gossip fanout must be non-negative, got {fanout}")
    if fanout >= n:
        raise ConfigurationError(
            f"gossip fanout must be smaller than the cluster size {n}, got {fanout}"
        )
    if rounds < 0:
        raise ConfigurationError(f"round count must be non-negative, got {rounds}")
    current = versions.copy()
    if trials == 0 or rounds == 0 or fanout == 0:
        return current
    row_offset = (np.arange(trials, dtype=np.int64) * n)[:, None, None]
    for _ in range(rounds):
        pushed = np.where(eligible, current, -1)
        # Uniform peer != self: draw from n-1 and shift past the sender.
        raw = generator.integers(0, n - 1, size=(trials, n, fanout))
        peers = raw + (raw >= np.arange(n)[None, :, None])
        incoming = np.full(trials * n, -1, dtype=current.dtype)
        np.maximum.at(
            incoming,
            (peers + row_offset).ravel(),
            np.broadcast_to(pushed[:, :, None], peers.shape).ravel(),
        )
        incoming = incoming.reshape(trials, n)
        current = np.where(eligible, np.maximum(current, incoming), current)
    return current
