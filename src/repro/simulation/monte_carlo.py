"""Empirical consistency estimation (validating Theorems 3.2, 4.2, 5.2).

The analytical ε of a probabilistic quorum system bounds the probability
that a read misses the latest write.  This module measures that probability
empirically by driving the actual protocol stack (registers over a simulated
cluster with injected failures) many times and counting the outcomes, so the
test suite and the protocol-consistency benchmark can compare "measured
1 - ε" against the closed-form and exact values.

Estimators
----------

* :func:`estimate_read_consistency` — one write, one read per trial; reports
  the fraction of fresh reads, plus the stale/⊥ and fabricated fractions
  for Byzantine runs;
* :func:`estimate_staleness_distribution` — a write history followed by a
  read; reports how many versions behind the read was (0 = fresh), with or
  without gossip rounds between writes, which quantifies the Section 1.1
  claim that diffusion drives inconsistency toward zero.

Scenario dispatch
-----------------

The preferred experiment description is a declarative
:class:`~repro.simulation.scenario.ScenarioSpec` — quorum system, failure
model and workload in one object — passed as the first argument.  Both
engines consume the same spec: the sequential oracle lowers it to the
matching register class (plain, signed-dissemination or threshold-masking)
over per-trial clusters, while the batch engine reads its declared
:class:`~repro.core.probabilistic.ReadSemantics` and classifies trials with
vectorised kernels.  A bare ``ProbabilisticQuorumSystem`` (optionally with a
:class:`~repro.simulation.failures.FailureModel`) is promoted to an
``auto``-resolved spec, so a masking system automatically gets the Section 5
threshold read on both engines.  Arbitrary register/plan *factories* remain
supported on ``engine="sequential"`` only — that path is the escape hatch
for experiments no declarative spec describes.

Engines
-------

Both estimators accept ``engine="sequential"`` (default) or
``engine="batch"``.  The sequential engine drives the real protocol stack
object by object and is the semantic oracle; the batch engine
(:class:`repro.simulation.batch.BatchTrialEngine`) vectorises trials with
NumPy and is one to two orders of magnitude faster.  The two agree in
distribution, not trial for trial; ``tests/simulation/test_batch_engine.py``
pins the agreement down for all three protocols.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from typing import TYPE_CHECKING

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ConfigurationError
from repro.simulation.cluster import Cluster
from repro.simulation.diffusion import DiffusionEngine
from repro.simulation.failures import FailureModel, FailurePlan
from repro.simulation.scenario import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.protocol.variable import ProbabilisticRegister

#: Builds a register bound to a fresh cluster for one trial.
RegisterFactory = Callable[[Cluster, random.Random], "ProbabilisticRegister"]
#: Builds the failure plan for one trial (may be randomised per trial).
PlanFactory = Callable[[random.Random], FailurePlan]
#: A scenario spec, a system the spec can wrap, or a raw register factory.
RegisterSpec = Union[ScenarioSpec, RegisterFactory, ProbabilisticQuorumSystem]
#: Either a plan factory or a declarative failure model.
PlanSpec = Union[PlanFactory, FailureModel]

_ENGINES = ("sequential", "batch")


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; expected one of {_ENGINES}")


def _as_scenario(register_spec, plan_spec) -> Optional[ScenarioSpec]:
    """Promote declarative argument forms to a :class:`ScenarioSpec`.

    Returns ``None`` for the legacy factory forms, which only the sequential
    engine can run.
    """
    if isinstance(register_spec, ScenarioSpec):
        if plan_spec is not None:
            raise ConfigurationError(
                "a ScenarioSpec already carries its failure model; "
                "do not pass plan_factory alongside it"
            )
        return register_spec
    if isinstance(register_spec, ProbabilisticQuorumSystem) and (
        plan_spec is None or isinstance(plan_spec, FailureModel)
    ):
        return ScenarioSpec(
            system=register_spec, failure_model=plan_spec or FailureModel.none()
        )
    return None


def _resolve_n(spec: Optional[ScenarioSpec], n: Optional[int]) -> int:
    if spec is not None:
        if n is not None and n != spec.n:
            raise ConfigurationError(
                f"scenario is over {spec.n} servers but the estimate asked for n={n}"
            )
        return spec.n
    if n is None:
        raise ConfigurationError(
            "n is required when passing register/plan factories "
            "(a ScenarioSpec carries it implicitly)"
        )
    return int(n)


def _require_declarative(register_spec, plan_spec) -> None:
    """The batch engine's error messages for non-declarative argument forms."""
    if not isinstance(register_spec, (ScenarioSpec, ProbabilisticQuorumSystem)):
        raise ConfigurationError(
            "engine='batch' needs a declarative scenario; pass a ScenarioSpec or "
            "the ProbabilisticQuorumSystem itself instead of a register factory "
            "(arbitrary factories need engine='sequential')"
        )
    if plan_spec is not None and not isinstance(plan_spec, FailureModel):
        raise ConfigurationError(
            "engine='batch' needs a declarative FailureModel instead of a plan "
            "factory (arbitrary factories need engine='sequential')"
        )


def _diffusion_for(spec: Optional[ScenarioSpec], cluster: Cluster, trial_rng):
    """The trial's anti-entropy engine, or ``None`` when the spec has none.

    Dissemination scenarios gossip with the spec's signature scheme as the
    verifier, so a Byzantine payload that would not survive the read filter
    does not survive diffusion either (crashed and Byzantine pushers are
    already silent in :class:`DiffusionEngine`).
    """
    if spec is None or spec.anti_entropy is None or not spec.anti_entropy.gossips:
        return None
    verify = None
    if spec.resolved_register_kind() == "dissemination":
        from repro.protocol.signatures import SignatureScheme
        from repro.protocol.timestamps import Timestamp

        scheme = SignatureScheme(spec.signing_key)

        def verify(variable, stored):
            return isinstance(stored.timestamp, Timestamp) and scheme.verify(
                variable, stored.value, stored.timestamp, stored.signature
            )

    return DiffusionEngine(
        cluster, fanout=spec.anti_entropy.fanout, verify=verify, rng=trial_rng
    )


def _sequential_specs(spec: Optional[ScenarioSpec], register_spec, plan_spec, n: int):
    """Lower the scenario (or legacy specs) to the oracle loop's factories."""
    if spec is not None:
        return spec.register_factory(), spec.failure_model.bind(n)
    if isinstance(register_spec, ProbabilisticQuorumSystem):
        # A bare system paired with an arbitrary plan *factory*: no spec was
        # promoted, but the register side still lowers declaratively.
        register_factory = ScenarioSpec(system=register_spec).register_factory()
    else:
        register_factory = register_spec
    plan_factory = plan_spec.bind(n) if isinstance(plan_spec, FailureModel) else plan_spec
    return register_factory, plan_factory


@dataclass
class ConsistencyReport:
    """Aggregated outcome counts over a batch of read trials."""

    trials: int
    fresh: int
    stale: int
    empty: int
    fabricated: int

    @property
    def fresh_fraction(self) -> float:
        """Empirical probability that a read returned the last written value."""
        return self.fresh / self.trials if self.trials else 0.0

    @property
    def error_fraction(self) -> float:
        """Empirical probability of any deviation (stale, ⊥ or fabricated)."""
        return 1.0 - self.fresh_fraction

    @property
    def fabricated_fraction(self) -> float:
        """Empirical probability of reading a value that was never written."""
        return self.fabricated / self.trials if self.trials else 0.0

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (
            f"ConsistencyReport(trials={self.trials}, fresh={self.fresh_fraction:.4f}, "
            f"stale/empty={(self.stale + self.empty) / max(1, self.trials):.4f}, "
            f"fabricated={self.fabricated_fraction:.4f})"
        )


def estimate_read_consistency(
    register_factory: RegisterSpec,
    n: Optional[int] = None,
    plan_factory: Optional[PlanSpec] = None,
    trials: int = 500,
    seed: int = 0,
    written_value: Optional[object] = None,
    engine: str = "sequential",
    chunk_size: int = 4096,
) -> ConsistencyReport:
    """Measure how often a read sees the latest write.

    Each trial builds a fresh cluster (with a possibly randomised failure
    plan), performs one write and then one read through the scenario's
    register, and classifies the outcome with the shared labelling rule of
    :mod:`repro.protocol.classification`.  Fabricated values (never written)
    are distinguished from stale/⊥ ones so that dissemination and masking
    experiments can check that fabrication in particular is (essentially)
    never observed.

    Pass a :class:`~repro.simulation.scenario.ScenarioSpec` (or a bare
    system, auto-promoted to one) to run the same description on either
    engine; the two agree in distribution, not trial for trial.
    ``written_value`` defaults to the scenario workload's value (``"v"``).
    """
    _check_engine(engine)
    if trials <= 0:
        raise ConfigurationError(f"trial count must be positive, got {trials}")
    spec = _as_scenario(register_factory, plan_factory)
    n = _resolve_n(spec, n)
    if engine == "batch":
        from repro.simulation.batch import BatchTrialEngine

        if spec is None:
            _require_declarative(register_factory, plan_factory)
        batch_engine = BatchTrialEngine.from_spec(spec, seed=seed, chunk_size=chunk_size)
        if written_value is not None:
            batch_engine.written_value = written_value
        return batch_engine.estimate_read_consistency(trials)
    if written_value is None:
        written_value = spec.workload.written_value if spec is not None else "v"
    if spec is not None and spec.writers > 1:
        return _sequential_multiwriter_consistency(spec, trials, seed, written_value)
    register_factory, plan_factory = _sequential_specs(
        spec, register_factory, plan_factory, n
    )
    from repro.protocol.classification import classify_read_outcome

    rng = random.Random(seed)
    counts = {"fresh": 0, "stale": 0, "empty": 0, "fabricated": 0}
    for _ in range(trials):
        trial_rng = random.Random(rng.randrange(2**63))
        plan = plan_factory(trial_rng) if plan_factory is not None else FailurePlan.none()
        cluster = Cluster(n, failure_plan=plan, seed=trial_rng.randrange(2**63))
        register = register_factory(cluster, trial_rng)
        write = register.write(written_value)
        diffusion = _diffusion_for(spec, cluster, trial_rng)
        if diffusion is not None:
            diffusion.run_rounds(spec.anti_entropy.rounds, [register.name])
        outcome = register.read()
        label = classify_read_outcome(
            outcome, write, expected_value=written_value, check_value=True
        )
        counts[label] += 1
    return ConsistencyReport(trials=trials, **counts)


def multiwriter_values(written_value: object, writers: int) -> List[object]:
    """The distinct per-writer values of a concurrent write round.

    Writer ``w`` writes ``(written_value, w)``, so a read can always be
    attributed to the writer whose round it observed; with one writer the
    value stays the bare workload value (single-writer runs unchanged).
    """
    if writers == 1:
        return [written_value]
    return [(written_value, index) for index in range(writers)]


def _sequential_multiwriter_consistency(
    spec: ScenarioSpec, trials: int, seed: int, written_value: object
) -> ConsistencyReport:
    """The oracle loop under contention: ``spec.writers`` concurrent writes.

    Every writer's per-trial counter is 1, so writer-id order *is* timestamp
    order and the highest-id writer is the deterministic winner.  Writes are
    applied in that canonical order — concurrent rounds are unordered in
    real time, and every order-sensitive observer the simulation models
    (``ByzantineReplayBehavior``'s first-accepted record) must agree with
    the batch engine's canonical interleaving for the equivalence tests to
    mean anything.  Reads are classified against the winner with the shared
    rule, so a read observing a lower-id concurrent write counts as stale.
    """
    from repro.protocol.classification import classify_read_outcome

    factories = [spec.register_factory(index) for index in range(spec.writers)]
    plan_factory = spec.failure_model.bind(spec.n)
    values = multiwriter_values(written_value, spec.writers)
    rng = random.Random(seed)
    counts = {"fresh": 0, "stale": 0, "empty": 0, "fabricated": 0}
    for _ in range(trials):
        trial_rng = random.Random(rng.randrange(2**63))
        plan = plan_factory(trial_rng)
        cluster = Cluster(spec.n, failure_plan=plan, seed=trial_rng.randrange(2**63))
        registers = [factory(cluster, trial_rng) for factory in factories]
        writes = [
            register.write(value) for register, value in zip(registers, values)
        ]
        diffusion = _diffusion_for(spec, cluster, trial_rng)
        if diffusion is not None:
            diffusion.run_rounds(spec.anti_entropy.rounds, [registers[-1].name])
        outcome = registers[-1].read()
        label = classify_read_outcome(
            outcome, writes[-1], expected_value=values[-1], check_value=True
        )
        counts[label] += 1
    return ConsistencyReport(trials=trials, **counts)


@dataclass
class StalenessReport:
    """Distribution of read staleness over a write history."""

    trials: int
    versions_behind: List[int] = field(default_factory=list)

    @property
    def fresh_fraction(self) -> float:
        """Fraction of reads that returned the most recent version."""
        if not self.versions_behind:
            return 0.0
        return sum(1 for lag in self.versions_behind if lag == 0) / len(self.versions_behind)

    @property
    def mean_lag(self) -> float:
        """Average number of versions the read lagged behind."""
        if not self.versions_behind:
            return 0.0
        return sum(self.versions_behind) / len(self.versions_behind)

    def lag_histogram(self) -> Dict[int, int]:
        """Histogram of lags (0 = fresh)."""
        histogram: Dict[int, int] = {}
        for lag in self.versions_behind:
            histogram[lag] = histogram.get(lag, 0) + 1
        return dict(sorted(histogram.items()))


def estimate_staleness_distribution(
    register_factory: RegisterSpec,
    n: Optional[int] = None,
    writes: Optional[int] = None,
    gossip_rounds_between_writes: Optional[int] = None,
    gossip_fanout: Optional[int] = None,
    plan_factory: Optional[PlanSpec] = None,
    trials: int = 200,
    seed: int = 0,
    engine: str = "sequential",
    chunk_size: int = 4096,
) -> StalenessReport:
    """Measure how many versions behind a read lands after a write history.

    With ``gossip_rounds_between_writes > 0`` a
    :class:`~repro.simulation.diffusion.DiffusionEngine` propagates each
    write before the next one, which is the paper's Section 1.1 recipe for
    driving staleness toward zero when updates are dispersed in time.

    The workload parameters default to the scenario's
    :class:`~repro.simulation.scenario.WorkloadSpec` when a spec is passed
    (and to ``writes=5``, no gossip, fanout 2 otherwise); explicit arguments
    override the spec.  ``engine="batch"`` vectorises the write history and
    the gossip rounds (synchronous-round gossip with with-replacement
    fanout — statistically equivalent, see
    :func:`repro.simulation.diffusion.gossip_rounds_batch`).
    """
    _check_engine(engine)
    if trials <= 0:
        raise ConfigurationError(f"trial count must be positive, got {trials}")
    spec = _as_scenario(register_factory, plan_factory)
    if spec is not None and spec.writers > 1:
        raise ConfigurationError(
            "staleness histories are single-writer (versions are a total order "
            "of one writer's counters); use estimate_read_consistency for the "
            f"contention experiment (scenario declares writers={spec.writers})"
        )
    workload = spec.workload if spec is not None else None
    if writes is None:
        writes = workload.writes if workload is not None else 5
    if gossip_rounds_between_writes is None:
        gossip_rounds_between_writes = (
            workload.gossip_rounds_between_writes if workload is not None else 0
        )
    if gossip_fanout is None:
        gossip_fanout = workload.gossip_fanout if workload is not None else 2
    if writes < 1:
        raise ConfigurationError(f"the write history needs at least one write, got {writes}")
    n = _resolve_n(spec, n)
    if engine == "batch":
        from repro.simulation.batch import BatchTrialEngine

        if spec is None:
            _require_declarative(register_factory, plan_factory)
        return BatchTrialEngine.from_spec(
            spec, seed=seed, chunk_size=chunk_size
        ).estimate_staleness_distribution(
            trials,
            writes=writes,
            gossip_rounds_between_writes=gossip_rounds_between_writes,
            gossip_fanout=gossip_fanout,
        )
    register_factory, plan_factory = _sequential_specs(
        spec, register_factory, plan_factory, n
    )
    rng = random.Random(seed)
    lags: List[int] = []
    for _ in range(trials):
        trial_rng = random.Random(rng.randrange(2**63))
        plan = plan_factory(trial_rng) if plan_factory is not None else FailurePlan.none()
        cluster = Cluster(n, failure_plan=plan, seed=trial_rng.randrange(2**63))
        register = register_factory(cluster, trial_rng)
        diffusion = (
            DiffusionEngine(cluster, fanout=gossip_fanout, rng=trial_rng)
            if gossip_rounds_between_writes > 0
            else None
        )
        timestamps = []
        for version in range(writes):
            outcome = register.write(("value", version))
            timestamps.append(outcome.timestamp)
            if diffusion is not None:
                diffusion.run_rounds(gossip_rounds_between_writes, [register.name])
        read = register.read()
        if read.is_empty:
            lags.append(writes)  # behind every version
            continue
        try:
            version_read = timestamps.index(read.timestamp)
        except ValueError:
            lags.append(writes)  # a value outside the history (should not happen benignly)
            continue
        lags.append(writes - 1 - version_read)
    return StalenessReport(trials=trials, versions_behind=lags)
