"""Empirical consistency estimation (validating Theorems 3.2, 4.2, 5.2).

The analytical ε of a probabilistic quorum system bounds the probability
that a read misses the latest write.  This module measures that probability
empirically by driving the actual protocol stack (registers over a simulated
cluster with injected failures) many times and counting the outcomes, so the
test suite and the protocol-consistency benchmark can compare "measured
1 - ε" against the closed-form and exact values.

Estimators
----------

* :func:`estimate_read_consistency` — one write, one read per trial; reports
  the fraction of fresh reads, plus the stale/⊥ and fabricated fractions
  for Byzantine runs;
* :func:`estimate_staleness_distribution` — a write history followed by a
  read; reports how many versions behind the read was (0 = fresh), with or
  without gossip rounds between writes, which quantifies the Section 1.1
  claim that diffusion drives inconsistency toward zero.

Engines
-------

Both estimators accept ``engine="sequential"`` (default) or
``engine="batch"``.  The sequential engine drives the real protocol stack
object by object and accepts arbitrary register/plan factories — it is the
semantic oracle.  The batch engine
(:class:`repro.simulation.batch.BatchTrialEngine`) vectorises trials with
NumPy and is one to two orders of magnitude faster, but requires the
experiment to be described declaratively: pass the
:class:`~repro.core.probabilistic.ProbabilisticQuorumSystem` itself in
place of a register factory and a
:class:`~repro.simulation.failures.FailureModel` in place of a plan
factory.  (Both declarative forms also work with the sequential engine,
which is how the equivalence tests run the same experiment on both.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from typing import TYPE_CHECKING

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.diffusion import DiffusionEngine
from repro.simulation.failures import FailureModel, FailurePlan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.protocol.variable import ProbabilisticRegister

#: Builds a register bound to a fresh cluster for one trial.
RegisterFactory = Callable[[Cluster, random.Random], "ProbabilisticRegister"]
#: Builds the failure plan for one trial (may be randomised per trial).
PlanFactory = Callable[[random.Random], FailurePlan]
#: Either a register factory or a system the default register wraps.
RegisterSpec = Union[RegisterFactory, ProbabilisticQuorumSystem]
#: Either a plan factory or a declarative failure model.
PlanSpec = Union[PlanFactory, FailureModel]

_ENGINES = ("sequential", "batch")


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; expected one of {_ENGINES}")


def _batch_engine(register_spec, plan_spec, n: int, seed: int, chunk_size: int):
    """Validate the declarative specs and build a :class:`BatchTrialEngine`."""
    from repro.simulation.batch import BatchTrialEngine

    if not isinstance(register_spec, ProbabilisticQuorumSystem):
        raise ConfigurationError(
            "engine='batch' samples through the system's access strategy; pass "
            "the ProbabilisticQuorumSystem itself instead of a register factory "
            "(arbitrary factories need engine='sequential')"
        )
    if plan_spec is not None and not isinstance(plan_spec, FailureModel):
        raise ConfigurationError(
            "engine='batch' needs a declarative FailureModel instead of a plan "
            "factory (arbitrary factories need engine='sequential')"
        )
    if register_spec.n != n:
        raise ConfigurationError(
            f"system is over {register_spec.n} servers but the estimate asked for n={n}"
        )
    return BatchTrialEngine(
        register_spec, failure_model=plan_spec, seed=seed, chunk_size=chunk_size
    )


def _sequential_specs(register_spec, plan_spec, n: int):
    """Lower declarative specs to the factory callables the oracle loop uses."""
    if isinstance(register_spec, ProbabilisticQuorumSystem):
        from repro.protocol.variable import ProbabilisticRegister

        system = register_spec

        def register_factory(cluster: Cluster, rng: random.Random):
            return ProbabilisticRegister(system, cluster, rng=rng)

    else:
        register_factory = register_spec
    plan_factory = plan_spec.bind(n) if isinstance(plan_spec, FailureModel) else plan_spec
    return register_factory, plan_factory


@dataclass
class ConsistencyReport:
    """Aggregated outcome counts over a batch of read trials."""

    trials: int
    fresh: int
    stale: int
    empty: int
    fabricated: int

    @property
    def fresh_fraction(self) -> float:
        """Empirical probability that a read returned the last written value."""
        return self.fresh / self.trials if self.trials else 0.0

    @property
    def error_fraction(self) -> float:
        """Empirical probability of any deviation (stale, ⊥ or fabricated)."""
        return 1.0 - self.fresh_fraction

    @property
    def fabricated_fraction(self) -> float:
        """Empirical probability of reading a value that was never written."""
        return self.fabricated / self.trials if self.trials else 0.0

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (
            f"ConsistencyReport(trials={self.trials}, fresh={self.fresh_fraction:.4f}, "
            f"stale/empty={(self.stale + self.empty) / max(1, self.trials):.4f}, "
            f"fabricated={self.fabricated_fraction:.4f})"
        )


def estimate_read_consistency(
    register_factory: RegisterSpec,
    n: int,
    plan_factory: Optional[PlanSpec] = None,
    trials: int = 500,
    seed: int = 0,
    written_value: object = "v",
    engine: str = "sequential",
    chunk_size: int = 4096,
) -> ConsistencyReport:
    """Measure how often a read sees the latest write.

    Each trial builds a fresh cluster (with a possibly randomised failure
    plan), performs one write and then one read through the register built
    by ``register_factory``, and classifies the outcome.  The classification
    distinguishes fabricated values (never written) from stale/⊥ ones so
    that dissemination and masking experiments can check that fabrication in
    particular is (essentially) never observed.

    With ``engine="batch"`` the same experiment runs vectorised (see the
    module docstring for the declarative-spec requirements); the two
    engines agree in distribution, not trial for trial.
    """
    _check_engine(engine)
    if trials <= 0:
        raise ConfigurationError(f"trial count must be positive, got {trials}")
    if engine == "batch":
        batch = _batch_engine(register_factory, plan_factory, n, seed, chunk_size)
        return batch.estimate_read_consistency(trials)
    register_factory, plan_factory = _sequential_specs(register_factory, plan_factory, n)
    rng = random.Random(seed)
    fresh = stale = empty = fabricated = 0
    for _ in range(trials):
        trial_rng = random.Random(rng.randrange(2**63))
        plan = plan_factory(trial_rng) if plan_factory is not None else FailurePlan.none()
        cluster = Cluster(n, failure_plan=plan, seed=trial_rng.randrange(2**63))
        register = register_factory(cluster, trial_rng)
        write = register.write(written_value)
        outcome = register.read()
        if outcome.timestamp == write.timestamp and outcome.value == written_value:
            fresh += 1
        elif outcome.is_empty:
            empty += 1
        elif isinstance(outcome.timestamp, Timestamp) and outcome.timestamp < write.timestamp:
            stale += 1
        else:
            fabricated += 1
    return ConsistencyReport(
        trials=trials, fresh=fresh, stale=stale, empty=empty, fabricated=fabricated
    )


@dataclass
class StalenessReport:
    """Distribution of read staleness over a write history."""

    trials: int
    versions_behind: List[int] = field(default_factory=list)

    @property
    def fresh_fraction(self) -> float:
        """Fraction of reads that returned the most recent version."""
        if not self.versions_behind:
            return 0.0
        return sum(1 for lag in self.versions_behind if lag == 0) / len(self.versions_behind)

    @property
    def mean_lag(self) -> float:
        """Average number of versions the read lagged behind."""
        if not self.versions_behind:
            return 0.0
        return sum(self.versions_behind) / len(self.versions_behind)

    def lag_histogram(self) -> Dict[int, int]:
        """Histogram of lags (0 = fresh)."""
        histogram: Dict[int, int] = {}
        for lag in self.versions_behind:
            histogram[lag] = histogram.get(lag, 0) + 1
        return dict(sorted(histogram.items()))


def estimate_staleness_distribution(
    register_factory: RegisterSpec,
    n: int,
    writes: int = 5,
    gossip_rounds_between_writes: int = 0,
    gossip_fanout: int = 2,
    plan_factory: Optional[PlanSpec] = None,
    trials: int = 200,
    seed: int = 0,
    engine: str = "sequential",
    chunk_size: int = 4096,
) -> StalenessReport:
    """Measure how many versions behind a read lands after a write history.

    With ``gossip_rounds_between_writes > 0`` a
    :class:`~repro.simulation.diffusion.DiffusionEngine` propagates each
    write before the next one, which is the paper's Section 1.1 recipe for
    driving staleness toward zero when updates are dispersed in time.

    ``engine="batch"`` vectorises the write history and the gossip rounds
    (synchronous-round gossip with with-replacement fanout — statistically
    equivalent, see :func:`repro.simulation.diffusion.gossip_rounds_batch`).
    """
    _check_engine(engine)
    if writes < 1:
        raise ConfigurationError(f"the write history needs at least one write, got {writes}")
    if trials <= 0:
        raise ConfigurationError(f"trial count must be positive, got {trials}")
    if engine == "batch":
        batch = _batch_engine(register_factory, plan_factory, n, seed, chunk_size)
        return batch.estimate_staleness_distribution(
            trials,
            writes=writes,
            gossip_rounds_between_writes=gossip_rounds_between_writes,
            gossip_fanout=gossip_fanout,
        )
    register_factory, plan_factory = _sequential_specs(register_factory, plan_factory, n)
    rng = random.Random(seed)
    lags: List[int] = []
    for _ in range(trials):
        trial_rng = random.Random(rng.randrange(2**63))
        plan = plan_factory(trial_rng) if plan_factory is not None else FailurePlan.none()
        cluster = Cluster(n, failure_plan=plan, seed=trial_rng.randrange(2**63))
        register = register_factory(cluster, trial_rng)
        engine = (
            DiffusionEngine(cluster, fanout=gossip_fanout, rng=trial_rng)
            if gossip_rounds_between_writes > 0
            else None
        )
        timestamps = []
        for version in range(writes):
            outcome = register.write(("value", version))
            timestamps.append(outcome.timestamp)
            if engine is not None:
                engine.run_rounds(gossip_rounds_between_writes, [register.name])
        read = register.read()
        if read.is_empty:
            lags.append(writes)  # behind every version
            continue
        try:
            version_read = timestamps.index(read.timestamp)
        except ValueError:
            lags.append(writes)  # a value outside the history (should not happen benignly)
            continue
        lags.append(writes - 1 - version_read)
    return StalenessReport(trials=trials, versions_behind=lags)
