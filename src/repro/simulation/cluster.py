"""Cluster orchestration: the quorum-RPC facade the protocol layer uses.

A :class:`Cluster` owns the ``n`` replica servers, the network, the event
scheduler and the failure plan, and exposes the two operations the paper's
access protocols need:

* :meth:`Cluster.write_quorum` — send a timestamped (optionally signed)
  value to every server of a quorum and collect acknowledgements;
* :meth:`Cluster.read_quorum` — query every server of a quorum and collect
  value/timestamp replies.

The facade is synchronous (a quorum RPC returns the full reply map), which
keeps the protocol implementations readable while the network model still
accounts for message drops and partitions; latency-sensitive behaviour
(gossip rounds, crash schedules) runs through the event scheduler.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.events import EventScheduler
from repro.simulation.failures import FailurePlan
from repro.simulation.network import Message, Network
from repro.simulation.server import CorrectBehavior, ReplicaServer, StoredValue
from repro.types import Quorum, ServerId

#: Client node ids are negative so they never collide with server ids.
CLIENT_NODE_ID = -1


class Cluster:
    """``n`` replica servers plus the network connecting clients to them.

    Parameters
    ----------
    n:
        Number of servers.
    failure_plan:
        Which servers are crashed or Byzantine (default: none).
    network:
        The network model; defaults to a reliable, constant-latency network.
    seed:
        Seed for the cluster's private random source (used when a failure
        schedule or the network needs randomness but none was supplied).
    """

    def __init__(
        self,
        n: int,
        failure_plan: Optional[FailurePlan] = None,
        network: Optional[Network] = None,
        seed: int = 0,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"a cluster needs at least one server, got n={n}")
        self._n = int(n)
        self.rng = random.Random(seed)
        self.scheduler = EventScheduler()
        self.network = network or Network(scheduler=self.scheduler, rng=self.rng)
        if network is not None and network.scheduler is not self.scheduler:
            # Keep a single notion of simulated time.
            self.scheduler = network.scheduler
        self.servers: List[ReplicaServer] = [ReplicaServer(i) for i in range(n)]
        self._plan = failure_plan or FailurePlan.none()
        self._apply_failure_plan(self._plan)

    # -- failure plan -----------------------------------------------------------

    def _apply_failure_plan(self, plan: FailurePlan) -> None:
        for server_id in plan.crashed:
            self._check_server(server_id)
            self.servers[server_id].crash()
        for server_id, behavior in plan.byzantine.items():
            self._check_server(server_id)
            # Stateful behaviours (replay, gray) hand out a fresh instance so
            # trials sharing one frozen plan stay independent.
            self.servers[server_id].behavior = behavior.for_trial()
        for event in plan.schedule:
            server = self.servers[self._check_server(event.server)]
            if event.recover:
                self.scheduler.schedule_at(event.time, server.recover)
            else:
                self.scheduler.schedule_at(event.time, server.crash)

    def _check_server(self, server_id: ServerId) -> ServerId:
        if not 0 <= server_id < self._n:
            raise ConfigurationError(
                f"server id {server_id} outside the universe of size {self._n}"
            )
        return server_id

    @property
    def n(self) -> int:
        """Number of servers."""
        return self._n

    @property
    def failure_plan(self) -> FailurePlan:
        """The failure plan the cluster was built with."""
        return self._plan

    @property
    def byzantine_servers(self) -> frozenset:
        """Ids of servers currently running a Byzantine behaviour."""
        return frozenset(s.server_id for s in self.servers if s.is_byzantine)

    @property
    def crashed_servers(self) -> frozenset:
        """Ids of servers currently crashed."""
        return frozenset(s.server_id for s in self.servers if s.is_crashed)

    def alive_servers(self) -> Set[ServerId]:
        """Servers that are not crashed (Byzantine servers *are* 'alive')."""
        return {s.server_id for s in self.servers if not s.is_crashed}

    def correct_servers(self) -> Set[ServerId]:
        """Servers that are neither crashed nor Byzantine."""
        return {
            s.server_id for s in self.servers if not s.is_crashed and not s.is_byzantine
        }

    def server(self, server_id: ServerId) -> ReplicaServer:
        """Access one server (tests and applications use this for inspection)."""
        return self.servers[self._check_server(server_id)]

    def crash(self, server_id: ServerId) -> None:
        """Crash a server immediately."""
        self.servers[self._check_server(server_id)].crash()

    def recover(self, server_id: ServerId) -> None:
        """Recover a crashed server immediately."""
        self.servers[self._check_server(server_id)].recover()

    def advance_time(self, duration: float) -> None:
        """Run the event scheduler forward (crash schedules, gossip rounds...)."""
        self.scheduler.run_until(self.scheduler.now + duration)

    # -- quorum RPCs --------------------------------------------------------------

    def _delivery_order(self, quorum: Iterable[ServerId]) -> List[ServerId]:
        """The order a quorum RPC contacts servers in.

        The message-reordering adversary (``shuffle_delivery``) permutes the
        contact order with the cluster's seeded rng; protocol outcomes must
        not depend on it, which the equivalence tests assert by comparing
        shuffled runs against the batch engine's order-free kernels.
        """
        order = list(quorum)
        if self._plan.shuffle_delivery:
            self.rng.shuffle(order)
        return order

    def write_quorum(
        self,
        quorum: Iterable[ServerId],
        variable: str,
        value,
        timestamp,
        signature: Optional[bytes] = None,
        client_id: int = CLIENT_NODE_ID,
    ) -> Dict[ServerId, bool]:
        """Send a write to every server of ``quorum``; return per-server acks.

        A missing key means the request or its acknowledgement was lost
        (dropped message or crashed server); ``False`` means the server
        explicitly refused (only Byzantine behaviours do that).
        """
        acks: Dict[ServerId, bool] = {}
        for server_id in self._delivery_order(quorum):
            self._check_server(server_id)
            request = Message(client_id, server_id, "write", (variable, timestamp))
            if not self.network.send_sync(request):
                continue
            ack = self.servers[server_id].handle_write(variable, value, timestamp, signature)
            reply = Message(server_id, client_id, "write-ack", ack)
            if not self.network.send_sync(reply):
                continue
            if ack:
                acks[server_id] = ack
        return acks

    def read_quorum(
        self,
        quorum: Iterable[ServerId],
        variable: str,
        client_id: int = CLIENT_NODE_ID,
    ) -> Dict[ServerId, StoredValue]:
        """Query every server of ``quorum``; return the replies that arrive."""
        replies: Dict[ServerId, StoredValue] = {}
        for server_id in self._delivery_order(quorum):
            self._check_server(server_id)
            request = Message(client_id, server_id, "read", variable)
            if not self.network.send_sync(request):
                continue
            stored = self.servers[server_id].handle_read(variable)
            if stored is None:
                continue
            reply = Message(server_id, client_id, "read-reply", (variable, stored.timestamp))
            if not self.network.send_sync(reply):
                continue
            replies[server_id] = stored
        return replies

    # -- inspection helpers ---------------------------------------------------------

    def servers_holding(self, variable: str, value) -> Set[ServerId]:
        """Which servers currently store ``value`` for ``variable`` (test helper)."""
        holders: Set[ServerId] = set()
        for server in self.servers:
            stored = server.storage.get(variable)
            if stored is not None and stored.value == value:
                holders.add(server.server_id)
        return holders

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Cluster(n={self._n}, crashed={len(self.crashed_servers)}, "
            f"byzantine={len(self.byzantine_servers)})"
        )
