"""Workload clients: measure the *empirical* load induced on servers.

The load of a quorum system (Definition 2.4) is an analytical quantity — the
access probability of the busiest server under the access strategy.  This
module provides a small workload driver that issues a stream of quorum
accesses through a strategy and records how many times each server was
touched, so that tests and the load ablation can confirm the analytical
``q/n`` (for the uniform constructions) and compare different strategies on
explicit systems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.core.strategy import AccessStrategy
from repro.exceptions import ConfigurationError
from repro.rngs import chunked_substreams, fresh_rng
from repro.types import Quorum, ServerId


@dataclass
class LoadMeasurement:
    """Per-server access counts accumulated by a workload run."""

    n: int
    accesses: int
    per_server_counts: List[int]

    @property
    def empirical_loads(self) -> List[float]:
        """Fraction of accesses that touched each server."""
        if self.accesses == 0:
            return [0.0] * self.n
        return [count / self.accesses for count in self.per_server_counts]

    @property
    def max_load(self) -> float:
        """The empirical load: the busiest server's access fraction."""
        return max(self.empirical_loads) if self.n else 0.0

    @property
    def mean_load(self) -> float:
        """Average per-server access fraction (= expected quorum size / n)."""
        loads = self.empirical_loads
        return sum(loads) / len(loads) if loads else 0.0

    def busiest_servers(self, count: int = 5) -> List[ServerId]:
        """The ``count`` most frequently accessed servers."""
        order = sorted(range(self.n), key=lambda s: self.per_server_counts[s], reverse=True)
        return order[:count]


class WorkloadClient:
    """Issues quorum accesses through a strategy and records server touches.

    Parameters
    ----------
    n:
        Universe size.
    strategy:
        The access strategy to sample quorums from.
    rng:
        Random source; seed it for reproducible measurements.
    """

    def __init__(
        self,
        n: int,
        strategy: AccessStrategy,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"universe size must be positive, got {n}")
        self.n = int(n)
        self.strategy = strategy
        self.rng = rng or fresh_rng(0)
        self._counts = [0] * self.n
        self._accesses = 0

    def access_once(self) -> Quorum:
        """Draw one quorum and record the servers it touches."""
        quorum = self.strategy.sample(self.rng)
        for server in quorum:
            if not 0 <= server < self.n:
                raise ConfigurationError(
                    f"strategy produced server {server} outside the universe of size {self.n}"
                )
            self._counts[server] += 1
        self._accesses += 1
        return quorum

    def run(self, accesses: int) -> LoadMeasurement:
        """Perform ``accesses`` quorum draws and return the measurement so far."""
        if accesses < 0:
            raise ConfigurationError(f"access count must be non-negative, got {accesses}")
        for _ in range(accesses):
            self.access_once()
        return self.measurement()

    def measurement(self) -> LoadMeasurement:
        """The measurement accumulated so far."""
        return LoadMeasurement(
            n=self.n, accesses=self._accesses, per_server_counts=list(self._counts)
        )


def measure_system_load(
    system: ProbabilisticQuorumSystem,
    accesses: int = 10_000,
    seed: int = 0,
    engine: str = "sequential",
    chunk_size: int = 4096,
) -> LoadMeasurement:
    """Convenience wrapper: measure the empirical load of a probabilistic system.

    ``engine="batch"`` draws the whole access stream through the strategy's
    vectorised sampler (chunked to bound memory) and accumulates per-server
    touch counts with array sums; ``engine="sequential"`` is the
    object-by-object oracle.  Both estimate the same distribution.
    """
    if engine == "sequential":
        client = WorkloadClient(system.n, system.strategy, fresh_rng(seed))
        return client.run(accesses)
    if engine != "batch":
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'sequential' or 'batch'"
        )
    if accesses < 0:
        raise ConfigurationError(f"access count must be non-negative, got {accesses}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
    n = system.n
    counts = np.zeros(n, dtype=np.int64)
    for generator, size in chunked_substreams(seed, accesses, chunk_size):
        member = system.strategy.sample_batch_membership(n, size, generator)
        counts += member.sum(axis=0)
    return LoadMeasurement(n=n, accesses=accesses, per_server_counts=counts.tolist())
