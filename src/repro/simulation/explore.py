"""Exhaustive small-config interleaving explorer (stateless model checking).

Monte-Carlo trials sample failure draws i.i.d., so an adversarial
*schedule* — a particular quorum choice, delivery order, drop pattern and
crash point — is exercised only with its sampling probability, which for
the schedules that matter is essentially zero.  This module is the
complement the roadmap calls for: at tiny configurations (3–5 servers, 2–3
operations, ≤2 faults) it enumerates **every** schedule and asserts the
safety properties the selection rule must provide *deterministically*, on
all of them:

* **no fabrication** — a read never returns a value/timestamp pair no
  honest client wrote (forgers may try; thresholds and signatures must
  stop them);
* **no unforced staleness / emptiness** — whenever the replies a read
  actually collected contain at least ``threshold`` votes for some written
  version, the read returns a version at least that fresh (this is the
  register's regularity obligation *given its evidence*; missing the
  evidence entirely is the ε-probability event the paper prices, not a
  rule bug);
* **threshold discipline** — an accepted value always carries at least
  ``threshold`` vouching votes.

The explorer is *stateless* model checking: it re-executes the scenario
from scratch along every decision prefix (cheap at this scale) instead of
checkpointing object graphs.  A DFS over the decision tree is driven by a
choice script; states reached at fresh choice points are canonically
hashed — optionally quotienting by server permutations, which is sound
because every size-``q`` quorum is enumerated, so the config is symmetric
under relabelling — and revisited states prune the subtree.  On a
violation the offending script is greedily minimised (every surviving
non-default decision is necessary) and reported as a readable trace.

Execution reuses the *real* protocol substrate: :class:`ReplicaServer`
with the production behaviours, the production
:class:`~repro.protocol.signatures.SignatureScheme`, and (by default) the
production :func:`~repro.protocol.selection.select_credible_value` — the
``selection_rule`` hook exists so the test suite can inject a seeded
mutant and prove the explorer catches it.  Message delivery runs through
:class:`ControlledScheduler`, the model checker's implementation of the
shared :class:`~repro.simulation.events.Scheduler` interface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError, SimulationError
from repro.protocol.selection import SelectedValue, select_credible_value, tiebreak_key
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.events import EventHandle, Scheduler, _ScheduledEvent
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    ReplicaServer,
    StoredValue,
)

SelectionRule = Callable[..., Optional[SelectedValue]]


class ControlledScheduler(Scheduler):
    """A :class:`Scheduler` that exposes *every* enabled event as a choice.

    Where :class:`~repro.simulation.events.EventScheduler` always fires the
    earliest pending event, this scheduler lets its caller fire any enabled
    (non-cancelled) event via :meth:`step_event` — the primitive the
    explorer's schedule enumeration is built on.  With no explicit choice,
    :meth:`step` fires the ``(time, sequence)``-minimal event, making the
    default behaviour observationally identical to the event scheduler
    (pinned by the scheduler-determinism tests).
    """

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[_ScheduledEvent] = []

    def __len__(self) -> int:
        return sum(1 for event in self._pending if not event.cancelled)

    def schedule(self, delay: float, callback) -> EventHandle:
        self._validate_delay(delay)
        event = self._new_event(self._now + delay, callback)
        self._pending.append(event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback) -> EventHandle:
        self._validate_time(time)
        event = self._new_event(time, callback)
        self._pending.append(event)
        return EventHandle(event)

    def enabled(self) -> List[_ScheduledEvent]:
        """The non-cancelled pending events in ``(time, sequence)`` order."""
        self._pending = [event for event in self._pending if not event.cancelled]
        return sorted(self._pending)

    def step_event(self, event: _ScheduledEvent) -> None:
        """Fire one specific enabled event (time never runs backwards)."""
        if event.cancelled or event not in self._pending:
            raise SimulationError("cannot fire a cancelled or unknown event")
        self._pending.remove(event)
        self._now = max(self._now, event.time)
        self._processed += 1
        event.callback()

    def step(self) -> bool:
        enabled = self.enabled()
        if not enabled:
            return False
        self.step_event(enabled[0])
        return True


# ---------------------------------------------------------------------------
# Scenario description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WriteOp:
    """One client write of ``value`` by logical writer ``writer``."""

    writer: int
    value: Any


@dataclass(frozen=True)
class ReadOp:
    """One client read of the variable."""


Op = Union[WriteOp, ReadOp]

#: register kinds the explorer models (mirrors ScenarioSpec's vocabulary).
EXPLORE_REGISTER_KINDS = ("plain", "dissemination", "masking")


@dataclass(frozen=True)
class ExploreSpec:
    """A tiny, exhaustively checkable configuration.

    Faulty servers occupy the lowest ids (forgers, then silent, then
    replay) — with ``symmetry`` on and every quorum enumerated this loses
    no generality.  ``max_crashes`` / ``max_drops`` budget the *additional*
    adversarial moves the explorer may inject at any point of any schedule.
    """

    n: int = 4
    quorum_size: int = 3
    register_kind: str = "masking"
    threshold: int = 2
    ops: Tuple[Op, ...] = (WriteOp(0, "a"), ReadOp())
    forgers: int = 0
    silent: int = 0
    replay: int = 0
    fabricated_value: Any = "FORGED"
    fabricated_timestamp: Any = None
    max_crashes: int = 0
    max_drops: int = 0
    symmetry: bool = True
    variable: str = "x"

    def __post_init__(self) -> None:
        if not 2 <= self.n <= 6:
            raise ConfigurationError(
                f"the explorer is for tiny configs (2 <= n <= 6), got n={self.n}"
            )
        if not 1 <= self.quorum_size <= self.n:
            raise ConfigurationError(
                f"quorum size must lie in [1, {self.n}], got {self.quorum_size}"
            )
        if self.register_kind not in EXPLORE_REGISTER_KINDS:
            raise ConfigurationError(
                f"unknown register kind {self.register_kind!r}; "
                f"expected one of {EXPLORE_REGISTER_KINDS}"
            )
        if self.threshold < 1:
            raise ConfigurationError(f"vote threshold must be positive, got {self.threshold}")
        if self.register_kind in ("plain", "dissemination") and self.threshold != 1:
            raise ConfigurationError(
                f"{self.register_kind} reads believe any (verified) reply; threshold "
                f"must be 1, got {self.threshold}"
            )
        if not 1 <= len(self.ops) <= 4:
            raise ConfigurationError(
                f"the explorer handles 1-4 operations, got {len(self.ops)}"
            )
        if min(self.forgers, self.silent, self.replay) < 0:
            raise ConfigurationError("fault counts must be non-negative")
        if self.forgers + self.silent + self.replay > self.n:
            raise ConfigurationError("more faulty servers than servers")
        if self.max_crashes < 0 or self.max_drops < 0:
            raise ConfigurationError("adversary budgets must be non-negative")

    @property
    def verify_signatures(self) -> bool:
        """Whether replies are signature-checked (the Section 4 read)."""
        return self.register_kind == "dissemination"

    def forged_timestamp(self) -> Any:
        """The timestamp forgers attach (default: the maximal forgery)."""
        if self.fabricated_timestamp is not None:
            return self.fabricated_timestamp
        return Timestamp.forged_maximum()

    def describe(self) -> str:
        """One-line summary used by the runner's report."""
        faults = []
        if self.forgers:
            faults.append(f"forgers={self.forgers}")
        if self.silent:
            faults.append(f"silent={self.silent}")
        if self.replay:
            faults.append(f"replay={self.replay}")
        if self.max_crashes:
            faults.append(f"crashes<={self.max_crashes}")
        if self.max_drops:
            faults.append(f"drops<={self.max_drops}")
        return (
            f"ExploreSpec({self.register_kind}, n={self.n}, q={self.quorum_size}, "
            f"k={self.threshold}, ops={len(self.ops)}"
            + (", " + ", ".join(faults) if faults else "")
            + ")"
        )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """A safety violation with its (minimised) witness schedule."""

    property: str
    message: str
    script: Tuple[int, ...]
    trace: Tuple[str, ...]

    def render(self) -> str:
        """The human-readable counterexample report."""
        lines = [f"VIOLATION [{self.property}]: {self.message}", "schedule:"]
        lines.extend(f"  {index:2d}. {step}" for index, step in enumerate(self.trace))
        return "\n".join(lines)


@dataclass(frozen=True)
class ExploreResult:
    """Outcome of one exhaustive exploration."""

    spec: ExploreSpec
    states_explored: int
    schedules: int
    violation: Optional[Violation] = None

    @property
    def safe(self) -> bool:
        """Whether every enumerated schedule satisfied the safety checks."""
        return self.violation is None


class _Pruned(Exception):
    """Internal: the current run re-entered a visited state."""


class _InvalidScript(Exception):
    """Internal: a minimisation candidate picked an out-of-range option."""


@dataclass(frozen=True)
class _Option:
    label: str
    kind: str
    payload: Any = None


class _RunViolation(Exception):
    """Internal: carries a violation out of a run's read check."""

    def __init__(self, property_name: str, message: str) -> None:
        super().__init__(message)
        self.property_name = property_name
        self.message = message


# ---------------------------------------------------------------------------
# One schedule execution
# ---------------------------------------------------------------------------


class _Run:
    """Execute the spec once, asking ``choose`` at every branching point."""

    def __init__(
        self,
        spec: ExploreSpec,
        selection_rule: SelectionRule,
        choose: Callable[[List[_Option], Optional[tuple]], _Option],
    ) -> None:
        self.spec = spec
        self.rule = selection_rule
        self.choose = choose
        self.scheduler = ControlledScheduler()
        self.signer = SignatureScheme()
        self.trace: List[str] = []
        self.drops_left = spec.max_drops
        self.crashes_left = spec.max_crashes
        #: (tiebreak_key(value), timestamp) of every honest write so far.
        self.written: List[Tuple[str, Any]] = []
        self.roles: List[str] = []
        self.servers: List[ReplicaServer] = []
        self._event_targets: Dict[int, int] = {}
        self._event_handles: Dict[int, EventHandle] = {}
        forged_ts = spec.forged_timestamp()
        for server_id in range(spec.n):
            if server_id < spec.forgers:
                behavior, role = (
                    ByzantineForgeBehavior(spec.fabricated_value, forged_ts),
                    "forger",
                )
            elif server_id < spec.forgers + spec.silent:
                behavior, role = ByzantineSilentBehavior(), "silent"
            elif server_id < spec.forgers + spec.silent + spec.replay:
                behavior, role = ByzantineReplayBehavior(), "replay"
            else:
                behavior, role = None, "correct"
            self.servers.append(ReplicaServer(server_id, behavior))
            self.roles.append(role)

    # -- execution ---------------------------------------------------------------

    def execute(self) -> None:
        """Run every operation; raises :class:`_RunViolation` on a violation."""
        for op_index, op in enumerate(self.spec.ops):
            if isinstance(op, WriteOp):
                self._execute_write(op_index, op)
            else:
                self._execute_read(op_index)

    def _execute_write(self, op_index: int, op: WriteOp) -> None:
        spec = self.spec
        timestamp = Timestamp(op_index + 1, op.writer)
        signature = (
            self.signer.sign(spec.variable, op.value, timestamp)
            if spec.verify_signatures
            else None
        )
        quorum = self._choose_quorum(op_index, "write")

        def deliver(server_id: int) -> None:
            self.servers[server_id].handle_write(
                spec.variable, op.value, timestamp, signature
            )

        self._scatter(quorum, deliver)
        self._drain(op_index, "write")
        self.written.append((tiebreak_key(op.value), timestamp))

    def _execute_read(self, op_index: int) -> None:
        spec = self.spec
        quorum = self._choose_quorum(op_index, "read")
        replies: Dict[int, StoredValue] = {}

        def deliver(server_id: int) -> None:
            stored = self.servers[server_id].handle_read(spec.variable)
            if stored is not None:
                replies[server_id] = stored

        self._scatter(quorum, deliver)
        self._drain(op_index, "read", replies)
        if spec.verify_signatures:
            replies = {
                server_id: stored
                for server_id, stored in replies.items()
                if self.signer.verify(
                    spec.variable, stored.value, stored.timestamp, stored.signature
                )
            }
        selected = self.rule(replies, spec.threshold)
        self._check_read(selected, replies)

    # -- decision points ---------------------------------------------------------

    def _choose_quorum(self, op_index: int, kind: str) -> Tuple[int, ...]:
        options = [
            _Option(f"op{op_index}:{kind} quorum={combo}", "quorum", combo)
            for combo in itertools.combinations(range(self.spec.n), self.spec.quorum_size)
        ]
        picked = self.choose(options, self._state_key(("quorum", op_index, kind)))
        self.trace.append(picked.label)
        return picked.payload

    def _scatter(self, quorum: Sequence[int], deliver: Callable[[int], None]) -> None:
        """Schedule one message per quorum member on the controlled scheduler."""
        for server_id in quorum:
            handle = self.scheduler.schedule(
                0.0, lambda server_id=server_id: deliver(server_id)
            )
            event = handle._event
            self._event_targets[event.sequence] = server_id
            self._event_handles[event.sequence] = handle

    def _drain(
        self,
        op_index: int,
        kind: str,
        replies: Optional[Mapping[int, StoredValue]] = None,
    ) -> None:
        """Resolve every pending message, one adversary-chosen move at a time."""
        while True:
            enabled = self.scheduler.enabled()
            if not enabled:
                return
            options: List[_Option] = []
            for event in enabled:
                target = self._event_targets[event.sequence]
                options.append(
                    _Option(f"op{op_index}: deliver {kind}->s{target}", "deliver", event)
                )
            if self.drops_left > 0:
                for event in enabled:
                    target = self._event_targets[event.sequence]
                    options.append(
                        _Option(f"op{op_index}: drop {kind}->s{target}", "drop", event)
                    )
            if self.crashes_left > 0:
                # Crashing only servers with a message in flight loses no
                # outcomes: an earlier crash of an untouched server commutes
                # with every move until its next message, and a crash after
                # a server's last delivery is unobservable.
                for server_id in sorted(
                    {self._event_targets[event.sequence] for event in enabled}
                ):
                    if not self.servers[server_id].is_crashed:
                        options.append(
                            _Option(f"op{op_index}: crash s{server_id}", "crash", server_id)
                        )
            picked = self.choose(
                options, self._state_key(("drain", op_index, kind), replies)
            )
            self.trace.append(picked.label)
            if picked.kind == "deliver":
                self.scheduler.step_event(picked.payload)
            elif picked.kind == "drop":
                self._event_handles[picked.payload.sequence].cancel()
                self.drops_left -= 1
            else:
                self.servers[picked.payload].crash()
                self.crashes_left -= 1

    # -- safety checks -----------------------------------------------------------

    def _check_read(
        self, selected: Optional[SelectedValue], replies: Mapping[int, StoredValue]
    ) -> None:
        threshold = self.spec.threshold
        written = set(self.written)
        if selected is not None:
            selected_key = (tiebreak_key(selected.value), selected.timestamp)
            if selected_key not in written:
                raise _RunViolation(
                    "fabrication",
                    f"read accepted {selected.value!r}@{selected.timestamp!r}, which "
                    f"no honest client ever wrote (votes={selected.votes})",
                )
            if selected.votes < threshold:
                raise _RunViolation(
                    "threshold",
                    f"read accepted {selected.value!r} with {selected.votes} votes, "
                    f"below the threshold {threshold}",
                )
        # Evidence regularity: among the *collected* replies, find the
        # freshest written version with >= threshold votes; the read must
        # return something at least that fresh.  (A read whose replies
        # simply lack such evidence is the ε event, not a rule violation.)
        votes: Dict[Tuple[str, Any], int] = {}
        for stored in replies.values():
            key = (tiebreak_key(stored.value), stored.timestamp)
            if key in written:
                votes[key] = votes.get(key, 0) + 1
        evidenced = [key for key, count in votes.items() if count >= threshold]
        if not evidenced:
            return
        best = max(evidenced, key=lambda key: key[1])
        if selected is None:
            raise _RunViolation(
                "regularity",
                f"read returned nothing despite {votes[best]} replies vouching "
                f"for written version @{best[1]!r}",
            )
        if selected.timestamp < best[1]:
            raise _RunViolation(
                "regularity",
                f"read returned stale @{selected.timestamp!r} despite {votes[best]} "
                f"replies vouching for written version @{best[1]!r}",
            )

    # -- state hashing -----------------------------------------------------------

    def _state_key(
        self, phase: tuple, replies: Optional[Mapping[int, StoredValue]] = None
    ) -> tuple:
        """A canonical, hashable encoding of everything that shapes the future."""
        spec = self.spec
        descriptors = []
        for server in self.servers:
            server_id = server.server_id
            stored = server.storage.get(spec.variable)
            stored_key = (
                None if stored is None else (tiebreak_key(stored.value), stored.timestamp)
            )
            behavior = server.behavior
            first_key = None
            if isinstance(behavior, ByzantineReplayBehavior):
                first = behavior._first_seen.get(spec.variable)
                if first is not None:
                    first_key = (tiebreak_key(first.value), first.timestamp)
            pending = tuple(
                sorted(
                    "msg"
                    for event in self.scheduler.enabled()
                    if self._event_targets[event.sequence] == server_id
                )
            )
            reply_key = None
            if replies is not None and server_id in replies:
                stored_reply = replies[server_id]
                reply_key = (tiebreak_key(stored_reply.value), stored_reply.timestamp)
            descriptors.append(
                (
                    self.roles[server_id],
                    server.is_crashed,
                    stored_key,
                    first_key,
                    pending,
                    reply_key,
                )
            )
        if spec.symmetry:
            descriptors = sorted(descriptors, key=repr)
        return (phase, tuple(descriptors), self.drops_left, self.crashes_left)


# ---------------------------------------------------------------------------
# The exploration driver
# ---------------------------------------------------------------------------


def run_schedule(
    spec: ExploreSpec,
    script: Sequence[int],
    selection_rule: Optional[SelectionRule] = None,
) -> Tuple[Optional[Violation], Tuple[str, ...]]:
    """Execute one schedule (decisions beyond ``script`` default to 0).

    Returns the violation (if the schedule triggers one) and the readable
    trace.  Used by the minimiser and by tests replaying counterexamples.
    """
    rule = selection_rule or select_credible_value
    cursor = 0

    def choose(options: List[_Option], _state_key: Optional[tuple]) -> _Option:
        nonlocal cursor
        index = script[cursor] if cursor < len(script) else 0
        cursor += 1
        if not 0 <= index < len(options):
            raise _InvalidScript(f"decision {cursor - 1} out of range")
        return options[index]

    run = _Run(spec, rule, choose)
    try:
        run.execute()
    except _RunViolation as caught:
        violation = Violation(
            property=caught.property_name,
            message=caught.message,
            script=tuple(script),
            trace=tuple(run.trace),
        )
        return violation, tuple(run.trace)
    return None, tuple(run.trace)


def _minimize(
    spec: ExploreSpec, script: Sequence[int], selection_rule: Optional[SelectionRule]
) -> Violation:
    """Greedily shrink a violating script: flip every droppable decision to 0.

    The result is locally minimal — resetting any remaining non-default
    decision to the benign default makes the violation disappear.
    """
    current = list(script)
    original, _ = run_schedule(spec, current, selection_rule)
    assert original is not None, "minimisation needs a violating script"
    changed = True
    while changed:
        changed = False
        for index in range(len(current) - 1, -1, -1):
            if current[index] == 0:
                continue
            candidate = list(current)
            candidate[index] = 0
            try:
                violation, _ = run_schedule(spec, candidate, selection_rule)
            except _InvalidScript:
                continue
            if violation is not None and violation.property == original.property:
                current = candidate
                changed = True
    while current and current[-1] == 0:
        current.pop()
    final, _ = run_schedule(spec, current, selection_rule)
    assert final is not None
    return final


def explore(
    spec: ExploreSpec,
    selection_rule: Optional[SelectionRule] = None,
    max_schedules: int = 1_000_000,
) -> ExploreResult:
    """Exhaustively enumerate every schedule of ``spec``; stop at a violation.

    The returned result carries the number of distinct canonical states and
    complete schedules; on a violation, a minimised counterexample.
    """
    rule = selection_rule or select_credible_value
    visited: set = set()
    stack: List[List[int]] = []
    schedules = 0
    violation: Optional[Violation] = None
    while True:
        depth = 0

        def choose(options: List[_Option], state_key: Optional[tuple]) -> _Option:
            nonlocal depth
            index = depth
            depth += 1
            if index < len(stack):
                return options[stack[index][0]]
            if state_key is not None:
                if state_key in visited:
                    raise _Pruned()
                visited.add(state_key)
            stack.append([0, len(options)])
            return options[0]

        run = _Run(spec, rule, choose)
        try:
            run.execute()
            schedules += 1
        except _Pruned:
            pass
        except _RunViolation:
            schedules += 1
            script = [entry[0] for entry in stack]
            violation = _minimize(spec, script, selection_rule)
            break
        if schedules > max_schedules:
            raise SimulationError(
                f"exploration exceeded {max_schedules} schedules; shrink the spec "
                f"({spec.describe()})"
            )
        while stack and stack[-1][0] + 1 >= stack[-1][1]:
            stack.pop()
        if not stack:
            break
        stack[-1][0] += 1
    return ExploreResult(
        spec=spec,
        states_explored=len(visited),
        schedules=schedules,
        violation=violation,
    )


# ---------------------------------------------------------------------------
# The pinned small-config grid (CI's explore-smoke job)
# ---------------------------------------------------------------------------


def small_config_grid() -> Dict[str, ExploreSpec]:
    """The pinned benign/crash/forger × masking/dissemination grid.

    Every cell must explore with zero violations: these are exactly the
    adversaries the shipped selection rule claims to defeat
    *deterministically* (fabrication never; staleness only when the
    evidence itself is missing).
    """
    ops = (WriteOp(0, "a"), ReadOp())
    masking = dict(n=4, quorum_size=3, register_kind="masking", threshold=2, ops=ops)
    dissemination = dict(
        n=4, quorum_size=3, register_kind="dissemination", threshold=1, ops=ops
    )
    grid = {}
    for name, base in (("masking", masking), ("dissemination", dissemination)):
        grid[f"{name}-benign"] = ExploreSpec(max_drops=1, **base)
        grid[f"{name}-crash"] = ExploreSpec(max_crashes=1, **base)
        grid[f"{name}-forger"] = ExploreSpec(forgers=1, **base)
    return grid


def explore_grid(
    grid: Optional[Mapping[str, ExploreSpec]] = None,
    selection_rule: Optional[SelectionRule] = None,
) -> Dict[str, ExploreResult]:
    """Explore every cell of a grid (default: :func:`small_config_grid`)."""
    cells = grid if grid is not None else small_config_grid()
    return {name: explore(spec, selection_rule) for name, spec in cells.items()}
