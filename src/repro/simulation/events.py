"""A minimal discrete-event scheduler.

The simulation substrate needs a notion of simulated time for two purposes:
message latency in :mod:`repro.simulation.network` and periodic gossip
rounds in :mod:`repro.simulation.diffusion`.  The scheduler is a classic
priority-queue design: events are ``(time, sequence, callback)`` triples,
processed in time order, with the sequence number breaking ties
deterministically (insertion order), which keeps simulations reproducible
for a fixed random seed.

Two implementations share the :class:`Scheduler` interface:

* :class:`EventScheduler` — the production priority queue, which always
  fires the earliest pending event (insertion order on ties).
* ``ControlledScheduler`` in :mod:`repro.simulation.explore` — the model
  checker's scheduler, which exposes *every* enabled event as a branching
  choice so the explorer can enumerate all delivery orders.

Everything above the scheduler (network, diffusion, cluster) talks only to
the interface, so the same protocol code runs unmodified under both.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True


class Scheduler(abc.ABC):
    """The discrete-event scheduling interface the simulation layers use.

    Implementations own the pending-event store and the policy that picks
    which enabled event :meth:`step` fires next; the shared driver methods
    (:meth:`run`, :meth:`schedule`'s validation) are defined here so every
    scheduler rejects the same malformed inputs and counts events the same
    way.  Delay/time validation lives in :meth:`_validate_delay` /
    :meth:`_validate_time`: non-finite values (NaN, ±inf) would silently
    corrupt heap ordering — NaN compares false against everything, so a
    poisoned entry wanders the heap unpredictably — and therefore raise
    :class:`~repro.exceptions.SimulationError` up front.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (useful for progress assertions)."""
        return self._processed

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""

    @abc.abstractmethod
    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""

    @abc.abstractmethod
    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""

    @abc.abstractmethod
    def step(self) -> bool:
        """Process one pending event; return ``False`` if none remain."""

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` is hit); return events run."""
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                break
            count += 1
        return count

    # -- shared validation --------------------------------------------------------

    def _validate_delay(self, delay: float) -> None:
        if not math.isfinite(delay):
            raise SimulationError(
                f"event delay must be finite, got {delay} (NaN/inf would corrupt "
                f"the event ordering)"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")

    def _validate_time(self, time: float) -> None:
        if not math.isfinite(time):
            raise SimulationError(
                f"event time must be finite, got {time} (NaN/inf would corrupt "
                f"the event ordering)"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )

    def _new_event(self, time: float, callback: EventCallback) -> _ScheduledEvent:
        return _ScheduledEvent(time, next(self._counter), callback)


class EventScheduler(Scheduler):
    """Priority-queue discrete-event scheduler with deterministic tie-breaking."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: List[_ScheduledEvent] = []

    def __len__(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        self._validate_delay(delay)
        event = self._new_event(self._now + delay, callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        self._validate_time(time)
        event = self._new_event(time, callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Process the next pending event; return ``False`` if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run_until(self, time: float, max_events: int = 1_000_000) -> int:
        """Run events with firing time ``<= time``; advance the clock to ``time``.

        ``max_events`` guards against runaway event loops (e.g. a gossip
        engine that keeps rescheduling itself): the call processes at most
        ``max_events`` events and raises
        :class:`~repro.exceptions.SimulationError` rather than process one
        more.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (time={time}, now={self._now})")
        count = 0
        while True:
            upcoming = self._peek()
            if upcoming is None or upcoming.time > time:
                break
            if count >= max_events:
                raise SimulationError(
                    f"run_until({time}) would process more than {max_events} events"
                )
            self.step()
            count += 1
        self._now = max(self._now, time)
        return count

    def _peek(self) -> Optional[_ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
