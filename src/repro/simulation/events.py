"""A minimal discrete-event scheduler.

The simulation substrate needs a notion of simulated time for two purposes:
message latency in :mod:`repro.simulation.network` and periodic gossip
rounds in :mod:`repro.simulation.diffusion`.  The scheduler is a classic
priority-queue design: events are ``(time, sequence, callback)`` triples,
processed in time order, with the sequence number breaking ties
deterministically (insertion order), which keeps simulations reproducible
for a fixed random seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True


class EventScheduler:
    """Priority-queue discrete-event scheduler with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (useful for progress assertions)."""
        return self._processed

    def __len__(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )
        event = _ScheduledEvent(time, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Process the next pending event; return ``False`` if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` is hit); return events run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time: float, max_events: int = 1_000_000) -> int:
        """Run events with firing time ``<= time``; advance the clock to ``time``.

        ``max_events`` guards against runaway event loops (e.g. a gossip
        engine that keeps rescheduling itself); exceeding it raises
        :class:`SimulationError` rather than hanging the caller.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (time={time}, now={self._now})")
        count = 0
        while self._queue:
            upcoming = self._peek()
            if upcoming is None or upcoming.time > time:
                break
            self.step()
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"run_until({time}) processed more than {max_events} events"
                )
        self._now = max(self._now, time)
        return count

    def _peek(self) -> Optional[_ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
