"""Replica servers with pluggable failure behaviour.

Each server stores, per replicated variable, the last value/timestamp pair it
accepted (plus the signature when the protocol uses self-verifying data) and
answers read and write requests according to its *behaviour*:

* :class:`CorrectBehavior` — follows the protocol: accepts writes with newer
  timestamps, returns its stored copy on reads;
* :class:`CrashedBehavior` — answers nothing (a benign, fail-stop failure);
* :class:`ByzantineSilentBehavior` — acknowledges nothing and suppresses its
  state (the strongest attack possible against *self-verifying* data);
* :class:`ByzantineReplayBehavior` — returns the oldest value it ever
  accepted, i.e. serves stale but once-valid data;
* :class:`ByzantineForgeBehavior` — fabricates a value with a sky-high
  timestamp; colluding forgers can be given the same fabricated value so
  they have the best possible chance of defeating a masking threshold.

Timestamps are treated as opaque, totally ordered objects, so the same
server code serves the plain, dissemination and masking protocols.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import SimulationError
from repro.types import ServerId


@dataclass(frozen=True)
class StoredValue:
    """One replica's copy of a variable: value, timestamp and optional signature."""

    value: Any
    timestamp: Any
    signature: Optional[bytes] = None


class ServerBehavior(abc.ABC):
    """How a server responds to protocol messages."""

    #: Whether the behaviour models a Byzantine (arbitrary) failure.
    byzantine: bool = False

    @abc.abstractmethod
    def on_write(
        self, server: "ReplicaServer", variable: str, stored: StoredValue
    ) -> bool:
        """Handle a write request; return ``True`` to acknowledge it."""

    @abc.abstractmethod
    def on_read(
        self, server: "ReplicaServer", variable: str
    ) -> Optional[StoredValue]:
        """Handle a read request; return a reply or ``None`` for silence."""

    def for_trial(self) -> "ServerBehavior":
        """A behaviour instance safe to install for one independent trial.

        Stateless behaviours return themselves; stateful ones (replay's
        first-seen cache, a gray node's drop sequence) return a fresh copy so
        a :class:`~repro.simulation.failures.FailurePlan` reused across
        trials cannot leak one trial's state into the next.
        """
        return self


class CorrectBehavior(ServerBehavior):
    """A correct server: stores the freshest write, returns its copy on reads."""

    def on_write(self, server: "ReplicaServer", variable: str, stored: StoredValue) -> bool:
        current = server.storage.get(variable)
        if current is None or stored.timestamp > current.timestamp:
            server.storage[variable] = stored
        return True

    def on_read(self, server: "ReplicaServer", variable: str) -> Optional[StoredValue]:
        return server.storage.get(variable)


class CrashedBehavior(ServerBehavior):
    """A crashed server: never replies."""

    def on_write(self, server: "ReplicaServer", variable: str, stored: StoredValue) -> bool:
        return False

    def on_read(self, server: "ReplicaServer", variable: str) -> Optional[StoredValue]:
        return None


class ByzantineSilentBehavior(ServerBehavior):
    """Accepts nothing and says nothing: suppression of self-verifying data."""

    byzantine = True

    def on_write(self, server: "ReplicaServer", variable: str, stored: StoredValue) -> bool:
        return False

    def on_read(self, server: "ReplicaServer", variable: str) -> Optional[StoredValue]:
        return None


class ByzantineReplayBehavior(ServerBehavior):
    """Serves the *first* value it ever accepted — stale but correctly signed data."""

    byzantine = True

    def __init__(self) -> None:
        self._first_seen: Dict[str, StoredValue] = {}

    def for_trial(self) -> "ByzantineReplayBehavior":
        return ByzantineReplayBehavior()

    def on_write(self, server: "ReplicaServer", variable: str, stored: StoredValue) -> bool:
        self._first_seen.setdefault(variable, stored)
        # It still updates its visible storage so that later replays are plausible.
        server.storage[variable] = stored
        return True

    def on_read(self, server: "ReplicaServer", variable: str) -> Optional[StoredValue]:
        return self._first_seen.get(variable, server.storage.get(variable))


class ByzantineForgeBehavior(ServerBehavior):
    """Fabricates values with a maximal timestamp (and no valid signature).

    Parameters
    ----------
    fabricated_value:
        The value the forger claims.  Give every colluding forger the same
        value to model the strongest attack against a masking threshold.
    fabricated_timestamp:
        The timestamp attached to the forgery.  It should compare greater
        than every honest timestamp; the protocol layer's
        ``Timestamp.forged_maximum()`` provides such a value.
    """

    byzantine = True

    def __init__(self, fabricated_value: Any, fabricated_timestamp: Any) -> None:
        self.fabricated_value = fabricated_value
        self.fabricated_timestamp = fabricated_timestamp

    def on_write(self, server: "ReplicaServer", variable: str, stored: StoredValue) -> bool:
        # Pretends to accept the write (so the writer's quorum completes) but
        # discards the data.
        return True

    def on_read(self, server: "ReplicaServer", variable: str) -> Optional[StoredValue]:
        return StoredValue(
            value=self.fabricated_value,
            timestamp=self.fabricated_timestamp,
            signature=b"forged",
        )


class GrayBehavior(ServerBehavior):
    """A *gray* (flaky / slow-to-the-point-of-timeout) but honest server.

    Each request is independently lost with probability ``drop_p``: a
    dropped write is never stored (and never acknowledged), a dropped read
    times out.  The requests that do get through are served correctly —
    gray nodes are benign (``byzantine = False``), they just erode
    availability, which is exactly the failure mode the ε-availability
    analysis of Section 3 must absorb without any fabrication risk.

    The drop sequence is drawn from a private seeded generator so a plan is
    reproducible; :meth:`for_trial` restarts the sequence, keeping trials
    that reuse one plan independent and identically distributed.
    """

    def __init__(self, drop_p: float, seed: int = 0) -> None:
        if not 0.0 <= drop_p <= 1.0:
            raise SimulationError(f"drop probability must lie in [0, 1], got {drop_p}")
        self.drop_p = float(drop_p)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def for_trial(self) -> "GrayBehavior":
        return GrayBehavior(self.drop_p, self.seed)

    def _delivered(self) -> bool:
        return self._rng.random() >= self.drop_p

    def on_write(self, server: "ReplicaServer", variable: str, stored: StoredValue) -> bool:
        if not self._delivered():
            return False
        current = server.storage.get(variable)
        if current is None or stored.timestamp > current.timestamp:
            server.storage[variable] = stored
        return True

    def on_read(self, server: "ReplicaServer", variable: str) -> Optional[StoredValue]:
        if not self._delivered():
            return None
        return server.storage.get(variable)


class ReplicaServer:
    """A single replica server: storage plus a behaviour.

    The server itself is behaviour-agnostic; crash/recover toggles simply
    swap the behaviour, which keeps failure injection trivial for the test
    suite and the Monte-Carlo harness.
    """

    def __init__(
        self,
        server_id: ServerId,
        behavior: Optional[ServerBehavior] = None,
    ) -> None:
        if server_id < 0:
            raise SimulationError(f"server ids must be non-negative, got {server_id}")
        self.server_id = int(server_id)
        self.storage: Dict[str, StoredValue] = {}
        self._behavior: ServerBehavior = behavior or CorrectBehavior()
        self._saved_behavior: Optional[ServerBehavior] = None
        self.writes_handled = 0
        self.reads_handled = 0

    # -- behaviour management ---------------------------------------------------

    @property
    def behavior(self) -> ServerBehavior:
        """The currently installed behaviour."""
        return self._behavior

    @behavior.setter
    def behavior(self, value: ServerBehavior) -> None:
        self._behavior = value

    @property
    def is_crashed(self) -> bool:
        """Whether the server currently runs the crashed behaviour."""
        return isinstance(self._behavior, CrashedBehavior)

    @property
    def is_byzantine(self) -> bool:
        """Whether the server's behaviour is Byzantine."""
        return self._behavior.byzantine

    def crash(self) -> None:
        """Crash the server (its storage survives for a later recovery)."""
        if not self.is_crashed:
            self._saved_behavior = self._behavior
            self._behavior = CrashedBehavior()

    def recover(self) -> None:
        """Recover from a crash, restoring the pre-crash behaviour."""
        if self.is_crashed:
            self._behavior = self._saved_behavior or CorrectBehavior()
            self._saved_behavior = None

    # -- protocol entry points ----------------------------------------------------

    def handle_write(
        self,
        variable: str,
        value: Any,
        timestamp: Any,
        signature: Optional[bytes] = None,
    ) -> bool:
        """Apply a write request through the behaviour; return the ack flag."""
        self.writes_handled += 1
        stored = StoredValue(value=value, timestamp=timestamp, signature=signature)
        return self._behavior.on_write(self, variable, stored)

    def handle_read(self, variable: str) -> Optional[StoredValue]:
        """Answer a read request through the behaviour (``None`` = no reply)."""
        self.reads_handled += 1
        return self._behavior.on_read(self, variable)

    # -- gossip support -----------------------------------------------------------

    def merge(self, variable: str, incoming: StoredValue) -> bool:
        """Anti-entropy merge: adopt ``incoming`` if it is newer; only for correct servers.

        Returns whether the local copy changed.  Byzantine and crashed
        servers ignore gossip (a Byzantine server is free to do anything, and
        ignoring the update is the most adversarial choice for freshness).
        """
        if self.is_crashed or self.is_byzantine:
            return False
        current = self.storage.get(variable)
        if current is None or incoming.timestamp > current.timestamp:
            self.storage[variable] = incoming
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ReplicaServer(id={self.server_id}, behavior={type(self._behavior).__name__})"
