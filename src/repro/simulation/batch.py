"""Batched Monte-Carlo trial engine: vectorised consistency estimation.

The sequential estimators in :mod:`repro.simulation.monte_carlo` drive the
full protocol stack — one cluster of server objects, one register, one
failure plan per trial.  That path is the semantic oracle, but almost all
of its time goes into Python object churn that the paper's experiments do
not need: for the uniform constructions a trial is completely described by
*which servers* the write quorum, the read quorum and the failure masks
touch.

:class:`BatchTrialEngine` exploits that.  Access sets are drawn as
``(trials, q)`` index matrices in one call (ranking a matrix of uniforms —
see :func:`repro.quorum.base.sample_subset_batch`), failure plans become
boolean ``(trials, n)`` masks (:meth:`FailureModel.sample_masks`), and the
freshness / fabrication / staleness classification of every trial reduces
to set-membership logic over those arrays.  Gossip between writes runs
through the vectorised kernel in
:func:`repro.simulation.diffusion.gossip_rounds_batch`.

All three of the paper's read protocols are modelled, driven by the
:class:`~repro.core.probabilistic.ReadSemantics` the quorum system (or an
explicit :class:`~repro.simulation.scenario.ScenarioSpec`) declares:

* **benign** (Section 3.1) — any single reply is believed; the highest
  timestamp wins (``threshold=1``);
* **dissemination** (Section 4) — replies are signature-checked, so forged
  values are discarded before the comparison (``self_verifying=True``;
  Byzantine servers can only suppress or replay);
* **masking** (Section 5) — a value/timestamp pair needs at least ``k``
  vouching votes from the read quorum, computed here as vectorised
  per-trial vote counts over the boolean membership masks
  (:func:`classify_threshold_votes`).

Reproducibility and memory
--------------------------

Trials are processed in fixed-size chunks.  Each chunk gets its own RNG
substream via ``numpy.random.SeedSequence(seed).spawn(...)``, so a run is
fully determined by ``(seed, chunk_size)`` and peak memory stays bounded at
``O(chunk_size * n)`` regardless of the trial count.

Within one estimator run the engine also *reuses* its per-chunk buffers:
profiling the hot loop showed the top repeated allocations were the two
``(chunk, n)`` quorum-membership matrices and the boolean vote-mask
temporaries re-created for every block, so the engine keeps one workspace
(:class:`_Workspace`) and fills the same arrays in place across blocks
(membership via the strategies' ``out=`` parameter, vote intersection via
``np.logical_and(..., out=...)``).  Buffer contents never cross chunk
boundaries — every array is fully overwritten before it is read — so the
estimates are bit-identical to the allocating path.

The classification mirrors the sequential reads: with one write of
timestamp ``ts₁``, a trial is *fresh* when at least ``k`` responsive
storers of the read quorum saw the write and no accepted forgery outranks
``ts₁``; *fabricated* when a forgery clears the filter (``k`` forger votes,
valid only where data is not self-verifying) and outranks the write;
*stale* when only an out-ranked forgery cleared it; *empty* when nothing
did.  Equivalence with the sequential engine (same scenario) is asserted by
``tests/simulation/test_batch_engine.py`` at 10k trials within
Chernoff-derived tolerances for all three protocols.
"""

from __future__ import annotations

import inspect
from typing import Iterator, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.probabilistic import ProbabilisticQuorumSystem, ReadSemantics
from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.rngs import chunked_substreams
from repro.simulation.diffusion import gossip_rounds_batch
from repro.simulation.failures import BatchFailureMasks, FailureModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.scenario import ScenarioSpec

#: Default number of trials processed per vectorised chunk.  4096 trials over
#: a 1000-server universe is ~4 MB of boolean masks — large enough to
#: amortise NumPy dispatch, small enough to stay cache- and memory-friendly.
DEFAULT_CHUNK_SIZE = 4096


def _accepts_keyword(callable_obj, name: str) -> bool:
    """Whether ``callable_obj`` can be called with keyword ``name``."""
    try:
        parameters = inspect.signature(callable_obj).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/extensions
        return False
    if name in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class _Workspace:
    """Named reusable scratch arrays, keyed by (name, shape, dtype).

    ``array(...)`` hands back the same buffer on every chunk of the same
    size and allocates only when the shape changes (i.e. the final short
    chunk).  Callers must fully overwrite a buffer before reading it.
    """

    __slots__ = ("_arrays",)

    def __init__(self) -> None:
        self._arrays: dict = {}

    def array(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (name, shape, np.dtype(dtype))
        array = self._arrays.get(key)
        if array is None:
            array = np.empty(shape, dtype=dtype)
            self._arrays[key] = array
        return array


def _timestamp_rank(fabricated_timestamp, writer_id: int, writes: int) -> int:
    """How many of the honest timestamps ``1..writes`` a forgery outranks.

    Honest write ``v`` (0-based) carries ``Timestamp(v + 1, writer_id)``;
    the returned rank ``r`` means the forgery beats exactly the first ``r``
    honest versions, so it wins a read iff the best honest reply is older
    than version ``r`` (0-based index ``< r``).  Timestamps that do not
    compare against :class:`Timestamp` are treated as outranking everything
    (the strongest fabrication, matching ``Timestamp.forged_maximum``).
    """
    rank = 0
    for counter in range(1, writes + 1):
        try:
            below = Timestamp(counter, writer_id) < fabricated_timestamp
        except TypeError:
            below = True
        if below:
            rank += 1
    return rank


def _concurrent_timestamp_rank(
    fabricated_timestamp, writer_id: int, writers: int
) -> int:
    """How many of ``writers`` concurrent honest timestamps a forgery outranks.

    Concurrent writer ``w`` carries ``Timestamp(1, writer_id + w)``, so the
    honest timestamps ascend with the writer index; rank ``r`` means the
    forgery beats exactly writers ``0..r-1`` and wins a read iff the best
    credible honest version is below ``r``.  Incomparable timestamps count
    as outranking everything (matching :func:`_timestamp_rank`).
    """
    rank = 0
    for index in range(writers):
        try:
            below = Timestamp(1, writer_id + index) < fabricated_timestamp
        except TypeError:
            below = True
        if below:
            rank += 1
    return rank


def classify_threshold_votes(
    honest_votes: np.ndarray,
    forged_votes: np.ndarray,
    threshold: int,
    forgery_outranks: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The threshold-vote read classification kernel (Section 5, Read).

    Given per-trial vote counts for the honest value/timestamp pair and the
    (colluding) forged pair, returns the four outcome masks
    ``(fresh, stale, empty, fabricated)`` of the highest-timestamp-wins rule
    applied to the candidates that collected at least ``threshold`` votes:

    * both candidates clear — the forgery wins iff it outranks the honest
      timestamp (``forgery_outranks``);
    * only one clears — it wins; a winning *out-ranked* forgery carries an
      honest-looking but older timestamp, which the shared classifier labels
      stale;
    * neither clears — the read returns ⊥ (empty).

    With ``threshold=1`` this is exactly the benign Section 3.1 classifier
    (a vote count ``>= 1`` is set membership), which the hypothesis property
    tests pin down.  The masks partition every trial.
    """
    if threshold < 1:
        raise ConfigurationError(f"vote threshold must be positive, got {threshold}")
    honest_ok = honest_votes >= threshold
    forged_ok = forged_votes >= threshold
    fresh = honest_ok & ~(forged_ok & forgery_outranks)
    fabricated = forged_ok & forgery_outranks
    stale = forged_ok & ~forgery_outranks & ~honest_ok
    empty = ~honest_ok & ~forged_ok
    return fresh, stale, empty, fabricated


def classify_tying_votes(
    honest_votes: np.ndarray,
    forged_votes: np.ndarray,
    threshold: int,
    forged_key_wins: bool,
    values_collide: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Classification when the forged timestamp *ties* the honest write's.

    Mirrors the deterministic tie rule of
    :func:`repro.protocol.selection.select_credible_value`: both pairs carry
    the winning timestamp, so among the candidates that clear ``threshold``
    the larger vote count wins, and an exhausted tie goes to the pair with
    the larger tiebreak key (``forged_key_wins`` says which that is).  When
    the forged value equals the written value the two pairs are one
    candidate (``values_collide``): the read is fresh iff the combined votes
    clear the threshold, and fabrication is impossible.  Nothing can be
    stale in a tie — a losing forgery carries the *winning* timestamp.
    """
    if threshold < 1:
        raise ConfigurationError(f"vote threshold must be positive, got {threshold}")
    zeros = np.zeros(honest_votes.shape, dtype=bool)
    if values_collide:
        fresh = (honest_votes + forged_votes) >= threshold
        return fresh, zeros, ~fresh, zeros.copy()
    honest_ok = honest_votes >= threshold
    forged_ok = forged_votes >= threshold
    forged_prefers = (forged_votes > honest_votes) | (
        (forged_votes == honest_votes) & forged_key_wins
    )
    fresh = honest_ok & ~(forged_ok & forged_prefers)
    fabricated = forged_ok & (~honest_ok | forged_prefers)
    empty = ~honest_ok & ~forged_ok
    return fresh, zeros, empty, fabricated


class BatchTrialEngine:
    """Vectorised Monte-Carlo trials over a probabilistic quorum system.

    Parameters
    ----------
    system:
        The quorum system whose access strategy draws the per-trial write
        and read quorums.  Any strategy works (the base class has a
        compatible fallback), but the uniform and explicit strategies are
        fully vectorised.
    failure_model:
        Declarative distribution over failures (default: no failures).
    seed:
        Root seed of the ``SeedSequence`` substream tree.
    chunk_size:
        Trials per vectorised chunk (memory/dispatch trade-off).
    writer_id:
        Writer identity baked into honest timestamps, matching the default
        register configuration of the sequential engine.
    semantics:
        Read-protocol semantics (threshold ``k``, signature verifiability).
        Defaults to ``system.read_semantics()``, so a masking system gets
        the threshold read and a dissemination system the signature-checked
        read — the same resolution the sequential engine applies through
        :class:`~repro.simulation.scenario.ScenarioSpec`.
    written_value:
        The value honest writes carry (the scenario workload's value).  Only
        consulted when a forged timestamp *ties* an honest one, where the
        deterministic tie rule compares the two values' tiebreak keys.
    writers:
        Concurrent writers per consistency trial.  Writer ``w`` writes with
        ``Timestamp(1, writer_id + w)``, so writer-id order is timestamp
        order and the highest id is the deterministic winner; the read is
        fresh only when that winner clears the vote threshold.
    anti_entropy:
        Optional :class:`~repro.simulation.scenario.AntiEntropySpec`: run
        its gossip rounds (vectorised, via
        :func:`~repro.simulation.diffusion.gossip_rounds_batch`) between the
        write settling and the read, mirroring the sequential engine's
        :class:`~repro.simulation.diffusion.DiffusionEngine` pass.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        failure_model: Optional[FailureModel] = None,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        writer_id: int = 0,
        semantics: Optional[ReadSemantics] = None,
        written_value: object = "v",
        writers: int = 1,
        anti_entropy=None,
    ) -> None:
        if not isinstance(system, ProbabilisticQuorumSystem):
            raise ConfigurationError(
                "the batch engine samples through the system's access strategy; "
                f"pass a ProbabilisticQuorumSystem, got {type(system).__name__}"
            )
        if failure_model is not None and not isinstance(failure_model, FailureModel):
            raise ConfigurationError(
                "the batch engine needs a declarative FailureModel "
                f"(got {type(failure_model).__name__}); use engine='sequential' "
                "for arbitrary plan factories"
            )
        if chunk_size < 1:
            raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
        if writers < 1:
            raise ConfigurationError(f"need at least one writer, got {writers}")
        self.system = system
        self.model = failure_model or FailureModel.none()
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        self.writer_id = int(writer_id)
        self.writers = int(writers)
        if anti_entropy is not None:
            from repro.simulation.scenario import AntiEntropySpec

            if not isinstance(anti_entropy, AntiEntropySpec):
                raise ConfigurationError(
                    "anti_entropy must be an AntiEntropySpec (or None), "
                    f"got {type(anti_entropy).__name__}"
                )
        self.anti_entropy = anti_entropy
        self.semantics = semantics if semantics is not None else system.read_semantics()
        self.written_value = written_value
        self._workspace = _Workspace()
        # Custom strategies may override sample_batch_membership with the
        # pre-`out=` three-argument signature (explicitly supported: "any
        # custom strategy stays batch-compatible"); detect once whether the
        # buffer-reuse keyword can be passed.
        self._membership_takes_out = _accepts_keyword(
            self.system.strategy.sample_batch_membership, "out"
        )

    @classmethod
    def from_spec(
        cls,
        spec: "ScenarioSpec",
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "BatchTrialEngine":
        """Build the engine for a declarative scenario description."""
        return cls(
            spec.system,
            failure_model=spec.failure_model,
            seed=seed,
            chunk_size=chunk_size,
            writer_id=spec.writer_id,
            semantics=spec.read_semantics(),
            written_value=spec.workload.written_value,
            writers=spec.writers,
            anti_entropy=spec.anti_entropy,
        )

    # -- chunked substreams -------------------------------------------------------

    def _chunks(self, trials: int) -> Iterator[Tuple[np.random.Generator, int]]:
        """Yield ``(generator, chunk_trials)`` pairs with spawned substreams."""
        return chunked_substreams(self.seed, trials, self.chunk_size)

    def _forgery_ties_write(self, version_counter: int) -> bool:
        """Whether the forged timestamp equals honest write ``version_counter``.

        Since the registers resolve such ties with the deterministic rule of
        :mod:`repro.protocol.selection`, the single-write consistency
        estimator models them exactly (see :func:`classify_tying_votes`);
        only multi-write staleness histories remain fenced
        (:meth:`_reject_tying_forgery`).
        """
        if not self.model.forges_values or self.semantics.self_verifying:
            return False
        return self.model.fabricated_timestamp == Timestamp(version_counter, self.writer_id)

    def _reject_tying_forgery(self, writes: int) -> None:
        """Refuse multi-write histories whose forged timestamp ties a write.

        The staleness estimators identify the version a read returned by its
        timestamp alone (the sequential path looks the timestamp up in the
        write history), so a forgery that ties an intermediate version is
        indistinguishable from that version in the lag accounting.  The
        single-write consistency estimator models ties exactly via the
        deterministic tie rule; histories keep the explicit fence.
        ``Timestamp.forged_maximum()`` and any other non-tying timestamp are
        unaffected, and self-verifying scenarios are exempt (the forgery is
        discarded before any comparison, tie or not).
        """
        if not self.model.forges_values or self.semantics.self_verifying:
            return
        for counter in range(1, writes + 1):
            if self.model.fabricated_timestamp == Timestamp(counter, self.writer_id):
                raise ConfigurationError(
                    f"fabricated timestamp {self.model.fabricated_timestamp!r} ties a "
                    f"timestamp of the {writes}-write history; version lags are "
                    f"identified by timestamp, so tying forgeries are only modelled "
                    f"by the single-write estimator or engine='sequential'"
                )

    def _reject_tying_multiwriter(self) -> None:
        """Refuse contention rounds whose forged timestamp ties a writer's.

        The multi-writer kernel attributes a read to a writer by timestamp
        alone (the per-server latest/first-seen version index), so a forgery
        that ties one of the concurrent honest timestamps is
        indistinguishable from that writer in the vote accounting; such
        configurations need ``engine='sequential'`` (where values break the
        tie through the deterministic rule).
        """
        if not self.model.forges_values or self.semantics.self_verifying:
            return
        for index in range(self.writers):
            if self.model.fabricated_timestamp == Timestamp(1, self.writer_id + index):
                raise ConfigurationError(
                    f"fabricated timestamp {self.model.fabricated_timestamp!r} ties "
                    f"concurrent writer {self.writer_id + index}'s timestamp; the "
                    f"multi-writer kernel identifies writers by timestamp, so tying "
                    f"forgeries under contention need engine='sequential'"
                )

    def _reject_gray(self, kernel: str) -> None:
        """Refuse gray nodes on kernels where the per-trial fold is inexact.

        :meth:`FailureModel.sample_masks` folds a gray server's independent
        per-request drops into one per-trial crash draw — exact for a single
        write followed by a single read (honest contribution iff both get
        through), but wrong as soon as a trial issues more operations
        (gossip pushes, write histories, concurrent writers), where the
        drops decorrelate across operations.  Those workloads run gray
        nodes through ``engine='sequential'``.
        """
        if self.model.kind == "gray_nodes":
            raise ConfigurationError(
                f"gray nodes draw drops per request, which the {kernel} kernel "
                "cannot fold into per-trial masks; use engine='sequential'"
            )

    def _draw_membership(
        self, size: int, generator: np.random.Generator, buffer_name: str
    ) -> np.ndarray:
        """One membership batch, drawn into a reusable buffer when supported."""
        n = self.system.n
        if self._membership_takes_out:
            return self.system.strategy.sample_batch_membership(
                n, size, generator, out=self._workspace.array(buffer_name, (size, n), bool)
            )
        return self.system.strategy.sample_batch_membership(n, size, generator)

    def _sample_round(
        self, generator: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray, BatchFailureMasks]:
        """Failure masks plus one write- and one read-quorum batch.

        The two membership matrices are drawn into per-engine reusable
        buffers (the hot loop's top repeated allocation), so consecutive
        equal-size chunks touch the same memory.
        """
        masks = self.model.sample_masks(self.system.n, size, generator)
        member_w = self._draw_membership(size, generator, "member_w")
        member_r = self._draw_membership(size, generator, "member_r")
        return member_w, member_r, masks

    def _forged_votes(self, member_r: np.ndarray, masks: BatchFailureMasks) -> np.ndarray:
        """Per-trial forger vote counts; zero where signatures filter them out."""
        if self.semantics.self_verifying:
            return np.zeros(member_r.shape[0], dtype=np.int64)
        forged = self._workspace.array("forged", member_r.shape, bool)
        np.logical_and(member_r, masks.forgers, out=forged)
        return forged.sum(axis=1)

    # -- estimators ---------------------------------------------------------------

    def estimate_read_consistency(self, trials: int) -> "ConsistencyReport":
        """One write, one read per trial; classify every outcome.

        Matches the sequential estimator in distribution: both sample the
        write quorum, the read quorum and the failure plan independently
        per trial from the same distributions and apply the same read rule
        (benign, signature-checked or threshold-vote, per the semantics).
        """
        from repro.protocol.selection import tiebreak_key
        from repro.simulation.monte_carlo import ConsistencyReport

        if trials <= 0:
            raise ConfigurationError(f"trial count must be positive, got {trials}")
        if self.writers > 1:
            return self._estimate_multiwriter_consistency(trials)
        if self.anti_entropy is not None and self.anti_entropy.gossips:
            return self._estimate_gossiped_consistency(trials)
        fab_beats = _timestamp_rank(self.model.fabricated_timestamp, self.writer_id, 1) >= 1
        ties = self._forgery_ties_write(1)
        if ties:
            forged_key = tiebreak_key(self.model.fabricated_value)
            honest_key = tiebreak_key(self.written_value)
            forged_key_wins = forged_key > honest_key
            values_collide = forged_key == honest_key
        threshold = self.semantics.threshold
        fresh = stale = empty = fabricated = 0
        for generator, size in self._chunks(trials):
            member_w, member_r, masks = self._sample_round(generator, size)
            vouchers = self._workspace.array("vouchers", (size, self.system.n), bool)
            np.logical_and(member_r, member_w, out=vouchers)
            np.logical_and(vouchers, masks.responsive_storers, out=vouchers)
            honest_votes = vouchers.sum(axis=1)
            forged_votes = self._forged_votes(member_r, masks)
            if ties:
                fresh_mask, stale_mask, empty_mask, fab_mask = classify_tying_votes(
                    honest_votes, forged_votes, threshold, forged_key_wins, values_collide
                )
            else:
                fresh_mask, stale_mask, empty_mask, fab_mask = classify_threshold_votes(
                    honest_votes, forged_votes, threshold, fab_beats
                )
            fresh += int(fresh_mask.sum())
            fabricated += int(fab_mask.sum())
            stale += int(stale_mask.sum())
            empty += int(empty_mask.sum())
        return ConsistencyReport(
            trials=trials, fresh=fresh, stale=stale, empty=empty, fabricated=fabricated
        )

    def _estimate_gossiped_consistency(self, trials: int) -> "ConsistencyReport":
        """One write, anti-entropy gossip rounds, one read per trial.

        The non-gossip kernel counts votes directly from the write/read
        quorum intersection; with diffusion the holder set grows beyond the
        write quorum, so this kernel tracks per-server version matrices the
        way the staleness estimator does (``writes=1``), runs the spec's
        gossip rounds through :func:`gossip_rounds_batch` over the correct
        servers (crashed neither push nor receive, Byzantine ignore gossip
        and their pushes are never trusted — exactly
        :class:`~repro.simulation.diffusion.DiffusionEngine`'s rules), and
        classifies with the same best-credible-version accounting.
        """
        from repro.simulation.monte_carlo import ConsistencyReport

        # Versions are identified by timestamp here (as in the staleness
        # kernel), so a forgery tying the write's timestamp stays fenced.
        self._reject_tying_forgery(1)
        self._reject_gray("anti-entropy")
        n = self.system.n
        diffusion = self.anti_entropy
        fab_rank = _timestamp_rank(self.model.fabricated_timestamp, self.writer_id, 1)
        fab_outranks = fab_rank >= 1
        threshold = self.semantics.threshold
        workspace = self._workspace
        fresh = stale = empty = fabricated = 0
        for generator, size in self._chunks(trials):
            masks = self.model.sample_masks(n, size, generator)
            correct = ~(masks.crashed | masks.byzantine)
            latest = np.full((size, n), -1, dtype=np.int32)
            first_seen = np.full((size, n), -1, dtype=np.int32)
            touched = workspace.array("touched", (size, n), bool)
            member_w = self._draw_membership(size, generator, "member_w")
            np.logical_and(member_w, masks.responsive_storers, out=touched)
            latest[touched] = 0
            first_seen[touched] = 0
            latest = gossip_rounds_batch(
                latest, correct, diffusion.fanout, diffusion.rounds, generator
            )
            member_r = self._draw_membership(size, generator, "member_r")
            best = self._best_credible_version(member_r, masks, latest, first_seen, 1)
            forged_votes = self._forged_votes(member_r, masks)
            forged_wins = (forged_votes >= threshold) & (best < fab_rank)
            fresh_mask = (best == 0) & ~forged_wins
            stale_mask = forged_wins & ~fab_outranks
            empty_mask = (best < 0) & ~forged_wins
            fabricated_mask = forged_wins & fab_outranks
            fresh += int(fresh_mask.sum())
            stale += int(stale_mask.sum())
            empty += int(empty_mask.sum())
            fabricated += int(fabricated_mask.sum())
        return ConsistencyReport(
            trials=trials, fresh=fresh, stale=stale, empty=empty, fabricated=fabricated
        )

    def _estimate_multiwriter_consistency(self, trials: int) -> "ConsistencyReport":
        """Concurrent writers, one read per trial (the contention kernel).

        Writer ``w`` writes ``Timestamp(1, writer_id + w)`` to its own
        strategy-drawn quorum; membership batches are applied in ascending
        writer order — the canonical interleaving the sequential oracle also
        uses — so the per-server ``latest``/``first_seen`` version indices
        mean exactly what they mean in the staleness kernel, with "version"
        reinterpreted as "writer index".  The read is *fresh* only when the
        deterministic winner (the highest writer id) clears the vote
        threshold and no accepted forgery outranks it; a read attributed to
        a lower writer is *stale*, exactly how the shared classifier labels
        a concurrent-but-losing honest value.
        """
        from repro.simulation.monte_carlo import ConsistencyReport

        self._reject_tying_multiwriter()
        self._reject_gray("multi-writer")
        writers = self.writers
        n = self.system.n
        threshold = self.semantics.threshold
        fab_rank = _concurrent_timestamp_rank(
            self.model.fabricated_timestamp, self.writer_id, writers
        )
        fab_outranks_winner = fab_rank >= writers
        workspace = self._workspace
        fresh = stale = empty = fabricated = 0
        for generator, size in self._chunks(trials):
            masks = self.model.sample_masks(n, size, generator)
            storers = masks.responsive_storers
            latest = np.full((size, n), -1, dtype=np.int32)
            first_seen = np.full((size, n), -1, dtype=np.int32)
            touched = workspace.array("touched", (size, n), bool)
            for index in range(writers):
                member_w = self._draw_membership(size, generator, "member_w")
                np.logical_and(member_w, storers, out=touched)
                first_seen[touched & (first_seen < 0)] = index
                latest[touched] = index
            if self.anti_entropy is not None and self.anti_entropy.gossips:
                correct = ~(masks.crashed | masks.byzantine)
                latest = gossip_rounds_batch(
                    latest,
                    correct,
                    self.anti_entropy.fanout,
                    self.anti_entropy.rounds,
                    generator,
                )
            member_r = self._draw_membership(size, generator, "member_r")
            best = self._best_credible_version(
                member_r, masks, latest, first_seen, writers
            )
            forged_votes = self._forged_votes(member_r, masks)
            forged_wins = (forged_votes >= threshold) & (best < fab_rank)
            fresh_mask = (best == writers - 1) & ~forged_wins
            stale_mask = ((best >= 0) & (best < writers - 1) & ~forged_wins) | (
                forged_wins & ~fab_outranks_winner
            )
            empty_mask = (best < 0) & ~forged_wins
            fabricated_mask = forged_wins & fab_outranks_winner
            fresh += int(fresh_mask.sum())
            stale += int(stale_mask.sum())
            empty += int(empty_mask.sum())
            fabricated += int(fabricated_mask.sum())
        return ConsistencyReport(
            trials=trials, fresh=fresh, stale=stale, empty=empty, fabricated=fabricated
        )

    def _best_credible_version(
        self,
        member_r: np.ndarray,
        masks: BatchFailureMasks,
        latest: np.ndarray,
        first_seen: np.ndarray,
        writes: int,
    ) -> np.ndarray:
        """Highest write version that clears the vote threshold (-1 if none).

        Correct servers vouch for their (possibly gossip-updated) latest
        version, replay servers for the first version they accepted; the
        value attached to a version is the same at every honest holder, so
        per-version vote counting over the membership masks reproduces the
        sequential register's ``Counter`` over value/timestamp pairs.
        """
        correct = ~(masks.crashed | masks.byzantine)
        honest = np.where(member_r & correct, latest, -1)
        replayed = np.where(member_r & masks.replay, first_seen, -1)
        threshold = self.semantics.threshold
        if threshold <= 1:
            return np.maximum(honest, replayed).max(axis=1)
        best = np.full(member_r.shape[0], -1, dtype=np.int64)
        for version in range(writes):
            votes = ((honest == version) | (replayed == version)).sum(axis=1)
            best = np.where(votes >= threshold, version, best)
        return best

    def estimate_staleness_distribution(
        self,
        trials: int,
        writes: int = 5,
        gossip_rounds_between_writes: int = 0,
        gossip_fanout: int = 2,
    ) -> "StalenessReport":
        """A write history followed by one read; measure the version lag."""
        from repro.simulation.monte_carlo import StalenessReport

        if self.writers > 1:
            raise ConfigurationError(
                "staleness histories are single-writer; the contention axis is "
                "measured by estimate_read_consistency "
                f"(engine declares writers={self.writers})"
            )
        if writes < 1:
            raise ConfigurationError(
                f"the write history needs at least one write, got {writes}"
            )
        if trials <= 0:
            raise ConfigurationError(f"trial count must be positive, got {trials}")
        self._reject_tying_forgery(writes)
        self._reject_gray("staleness-history")
        n = self.system.n
        fab_rank = _timestamp_rank(self.model.fabricated_timestamp, self.writer_id, writes)
        threshold = self.semantics.threshold
        lags: List[np.ndarray] = []
        workspace = self._workspace
        for generator, size in self._chunks(trials):
            masks = self.model.sample_masks(n, size, generator)
            correct = ~(masks.crashed | masks.byzantine)
            storers = masks.responsive_storers
            latest = np.full((size, n), -1, dtype=np.int32)
            first_seen = np.full((size, n), -1, dtype=np.int32)
            touched = workspace.array("touched", (size, n), bool)
            for version in range(writes):
                member_w = self._draw_membership(size, generator, "member_w")
                np.logical_and(member_w, storers, out=touched)
                first_seen[touched & (first_seen < 0)] = version
                latest[touched] = version
                if gossip_rounds_between_writes > 0:
                    latest = gossip_rounds_batch(
                        latest, correct, gossip_fanout, gossip_rounds_between_writes, generator
                    )
            member_r = self._draw_membership(size, generator, "member_r")
            best_version = self._best_credible_version(
                member_r, masks, latest, first_seen, writes
            )
            forged_votes = self._forged_votes(member_r, masks)
            forged_wins = (forged_votes >= threshold) & (best_version < fab_rank)
            lag = np.where(best_version >= 0, writes - 1 - best_version, writes)
            lag = np.where(forged_wins, writes, lag)
            lags.append(lag.astype(np.int64))
        versions_behind = np.concatenate(lags).tolist()
        return StalenessReport(trials=trials, versions_behind=versions_behind)
