"""Failure injection: crash schedules and Byzantine set selection.

A :class:`FailurePlan` describes, declaratively, which servers misbehave and
how.  The cluster applies the plan when it is constructed (for static plans)
and at simulated times (for crash/recover schedules).  Plans are the single
knob the Monte-Carlo harness, the examples and the benchmark workloads use
to stress the protocols, so keeping them declarative keeps the experiment
configurations readable.

A :class:`FailureModel` sits one level up: it is a *distribution* over
failure plans.  The sequential Monte-Carlo engine draws one
:class:`FailurePlan` from it per trial (``model.bind(n)`` yields an
ordinary plan factory), while the batched engine draws the whole batch at
once as boolean server masks (:class:`BatchFailureMasks`) without
materialising per-trial plan objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.exceptions import ConfigurationError
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    GrayBehavior,
    ServerBehavior,
)
from repro.types import ServerId


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled crash (or recovery) of one server at a simulated time."""

    time: float
    server: ServerId
    recover: bool = False


class _FrozenBehaviorMap(Mapping):
    """An immutable ``{server_id: behaviour}`` mapping.

    :class:`FailurePlan` is frozen, so its behaviour assignment must be
    too — a plain dict would let one trial's mutation leak into every later
    trial sharing the plan.  The map pickles as a plain dict (plans ride
    inside scenario payloads across the multi-process deployment boundary)
    and compares as one, but offers no mutation surface.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[ServerId, ServerBehavior]) -> None:
        self._data: Dict[ServerId, ServerBehavior] = dict(data)

    def __getitem__(self, key: ServerId) -> ServerBehavior:
        return self._data[key]

    def __iter__(self) -> Iterator[ServerId]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _FrozenBehaviorMap):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __reduce__(self):
        return (_FrozenBehaviorMap, (self._data,))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"_FrozenBehaviorMap({self._data!r})"


@dataclass(frozen=True)
class FailurePlan:
    """A declarative, immutable description of which servers fail and how.

    The plan is frozen end to end — ``crashed`` is a frozenset, ``schedule``
    a tuple and ``byzantine`` an immutable mapping — because plan factories
    and static scenarios share one plan object across many trials; with a
    mutable plan, a trial that (even accidentally) edited the behaviour
    table would corrupt every subsequent trial.  Per-trial *state* isolation
    is handled separately: appliers call
    :meth:`~repro.simulation.server.ServerBehavior.for_trial` on each
    behaviour, so stateful behaviours (replay, gray) get a fresh instance
    per trial while the plan itself never changes.

    Attributes
    ----------
    crashed:
        Servers that are crashed from the start.
    byzantine:
        Mapping from server id to the behaviour override it runs.  Despite
        the (historical) name this may include benign overrides such as
        :class:`~repro.simulation.server.GrayBehavior`; the
        :attr:`byzantine_servers` property filters by each behaviour's
        ``byzantine`` flag.
    schedule:
        Time-ordered crash / recovery events applied by the cluster's
        scheduler (used by availability experiments).
    shuffle_delivery:
        When set, quorum RPCs contact servers in a randomly shuffled order
        instead of the quorum's canonical order (the message-reordering
        adversary).  Outcome classification must be order-invariant, which
        is exactly what this knob lets the equivalence tests assert.
    """

    crashed: FrozenSet[ServerId] = frozenset()
    byzantine: Mapping[ServerId, ServerBehavior] = field(default_factory=dict)
    schedule: Tuple[CrashEvent, ...] = ()
    shuffle_delivery: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashed", frozenset(self.crashed))
        if not isinstance(self.byzantine, _FrozenBehaviorMap):
            object.__setattr__(self, "byzantine", _FrozenBehaviorMap(self.byzantine))
        object.__setattr__(self, "schedule", tuple(self.schedule))
        overlap = set(self.crashed) & set(self.byzantine)
        if overlap:
            raise ConfigurationError(
                f"servers {sorted(overlap)} cannot be both crashed and Byzantine"
            )

    @property
    def byzantine_servers(self) -> FrozenSet[ServerId]:
        """Server ids whose override is actually Byzantine (gray nodes are not)."""
        return frozenset(
            server for server, behavior in self.byzantine.items() if behavior.byzantine
        )

    @property
    def faulty_servers(self) -> FrozenSet[ServerId]:
        """All initially degraded servers (crashed or running any override).

        Deliberately conservative — it includes benign overrides like gray
        nodes — because its callers (churn selection, liveness accounting)
        need the set of servers that cannot be relied on to answer.
        """
        return frozenset(self.crashed) | frozenset(self.byzantine)

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        return (
            f"FailurePlan(crashed={len(self.crashed)}, byzantine={len(self.byzantine)}, "
            f"scheduled={len(self.schedule)}"
            + (", shuffled" if self.shuffle_delivery else "")
            + ")"
        )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def none(cls) -> "FailurePlan":
        """No failures at all."""
        return cls()

    @classmethod
    def random_crashes(
        cls, n: int, count: int, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """Crash ``count`` servers chosen uniformly at random."""
        _validate_counts(n, count)
        rng = rng or random.Random()
        return cls(crashed=frozenset(rng.sample(range(n), count)))

    @classmethod
    def independent_crashes(
        cls, n: int, p: float, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """Crash each server independently with probability ``p``.

        This is exactly the failure model of Definition 2.6 / 3.8 and is what
        the Monte-Carlo availability experiments use.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
        rng = rng or random.Random()
        crashed = frozenset(s for s in range(n) if rng.random() < p)
        return cls(crashed=crashed)

    @classmethod
    def random_byzantine(
        cls,
        n: int,
        count: int,
        behavior_factory: Callable[[], ServerBehavior] = ByzantineSilentBehavior,
        rng: Optional[random.Random] = None,
    ) -> "FailurePlan":
        """Make ``count`` uniformly random servers Byzantine.

        ``behavior_factory`` is called once per faulty server, so stateful
        behaviours (e.g. replay) are not accidentally shared.
        """
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(byzantine={server: behavior_factory() for server in chosen})

    @classmethod
    def colluding_forgers(
        cls,
        n: int,
        count: int,
        fabricated_value,
        fabricated_timestamp,
        rng: Optional[random.Random] = None,
    ) -> "FailurePlan":
        """``count`` Byzantine servers that all forge the *same* value.

        This is the strongest adversary against a masking threshold: the
        forged value is reported by every faulty server the read quorum
        touches, so it passes the threshold ``k`` exactly when
        ``|Q ∩ B| >= k`` — the event bounded by Lemma 5.7.
        """
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(
            byzantine={
                server: ByzantineForgeBehavior(fabricated_value, fabricated_timestamp)
                for server in chosen
            }
        )

    @classmethod
    def replay_attack(
        cls, n: int, count: int, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """``count`` Byzantine servers that serve stale (but once valid) data."""
        return cls.random_byzantine(n, count, ByzantineReplayBehavior, rng)

    @classmethod
    def gray_nodes(
        cls, n: int, count: int, drop_p: float, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """``count`` gray servers, each dropping every message w.p. ``drop_p``."""
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(
            byzantine={
                server: GrayBehavior(drop_p, seed=rng.getrandbits(32))
                for server in chosen
            }
        )

    @classmethod
    def targeted_partition(cls, n: int, targets: Iterable[ServerId]) -> "FailurePlan":
        """A fixed set of servers made unreachable from every client.

        Partitioning a server away from the clients is observationally a
        crash for the access protocols (requests and replies are both
        lost), so the plan lowers to the crash machinery — which every
        execution layer already implements identically.
        """
        target_set = frozenset(targets)
        for server in target_set:
            if not 0 <= server < n:
                raise ConfigurationError(
                    f"partition target {server} outside the universe of size {n}"
                )
        return cls(crashed=target_set)

    def with_schedule(self, events: Iterable[CrashEvent]) -> "FailurePlan":
        """Return a copy of the plan with an added crash/recovery schedule."""
        ordered = tuple(sorted(events, key=lambda e: e.time))
        return FailurePlan(
            crashed=self.crashed,
            byzantine=self.byzantine,
            schedule=ordered,
            shuffle_delivery=self.shuffle_delivery,
        )


def _validate_counts(n: int, count: int) -> None:
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 0 <= count <= n:
        raise ConfigurationError(f"failure count must lie in [0, {n}], got {count}")


# ---------------------------------------------------------------------------
# Failure models: distributions over failure plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchFailureMasks:
    """One batch of sampled failures as boolean ``(trials, n)`` server masks.

    Each mask marks, per trial, which servers run the corresponding
    behaviour; a server is marked in at most one mask.  The forger fields
    carry the (shared) fabricated value/timestamp of colluding forgers so
    the batched read classification can rank the forgery against honest
    timestamps without touching server objects.
    """

    crashed: np.ndarray
    silent: np.ndarray
    forgers: np.ndarray
    replay: np.ndarray
    fabricated_value: Any = None
    fabricated_timestamp: Any = None

    @property
    def byzantine(self) -> np.ndarray:
        """Servers running any Byzantine behaviour."""
        return self.silent | self.forgers | self.replay

    @property
    def responsive_storers(self) -> np.ndarray:
        """Servers that store honest writes and answer reads with them.

        Correct servers do both; replay servers accept writes and answer
        (albeit with their first-seen value); crashed, silent and forging
        servers either say nothing or discard the data.
        """
        return ~(self.crashed | self.silent | self.forgers)


@dataclass(frozen=True)
class FailureModel:
    """A declarative distribution over :class:`FailurePlan` draws.

    The constructors mirror the :class:`FailurePlan` ones, but describe the
    *randomised* experiment instead of one sampled outcome, which is what
    lets the batched Monte-Carlo engine sample thousands of trials' failures
    as boolean masks in a single vectorised call.  :meth:`bind` turns a
    model into an ordinary sequential plan factory, so one model drives both
    engines — that is what the batch-vs-sequential equivalence tests rely
    on.
    """

    kind: str = "none"
    p: float = 0.0
    count: int = 0
    fabricated_value: Any = None
    fabricated_timestamp: Any = None
    targets: Tuple[ServerId, ...] = ()

    _KINDS = (
        "none",
        "independent_crashes",
        "random_crashes",
        "random_byzantine",
        "colluding_forgers",
        "replay_attack",
        # -- the adversary fleet (PR 10) ------------------------------------
        "targeted_partition",
        "gray_nodes",
        "message_reordering",
        "timestamp_forging_clique",
    )

    #: Kinds whose count applies to probabilistic per-request behaviour too.
    _COUNT_KINDS = (
        "random_crashes",
        "random_byzantine",
        "colluding_forgers",
        "replay_attack",
        "gray_nodes",
        "timestamp_forging_clique",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown failure model kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind in ("independent_crashes", "gray_nodes") and not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(f"failure probability must lie in [0, 1], got {self.p}")
        if self.kind in self._COUNT_KINDS and self.count < 0:
            raise ConfigurationError(f"failure count must be non-negative, got {self.count}")
        if self.kind == "targeted_partition":
            object.__setattr__(self, "targets", tuple(sorted(set(self.targets))))
            if any(server < 0 for server in self.targets):
                raise ConfigurationError(
                    f"partition targets must be non-negative server ids, got {self.targets}"
                )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def none(cls) -> "FailureModel":
        """No failures in any trial."""
        return cls(kind="none")

    @classmethod
    def independent_crashes(cls, p: float) -> "FailureModel":
        """Each server crashes independently with probability ``p`` per trial."""
        return cls(kind="independent_crashes", p=p)

    @classmethod
    def random_crashes(cls, count: int) -> "FailureModel":
        """``count`` uniformly random servers crash in every trial."""
        return cls(kind="random_crashes", count=count)

    @classmethod
    def random_byzantine(cls, count: int) -> "FailureModel":
        """``count`` uniformly random servers run the silent Byzantine behaviour."""
        return cls(kind="random_byzantine", count=count)

    @classmethod
    def colluding_forgers(
        cls, count: int, fabricated_value: Any, fabricated_timestamp: Any
    ) -> "FailureModel":
        """``count`` uniformly random servers forge the same value per trial."""
        return cls(
            kind="colluding_forgers",
            count=count,
            fabricated_value=fabricated_value,
            fabricated_timestamp=fabricated_timestamp,
        )

    @classmethod
    def replay_attack(cls, count: int) -> "FailureModel":
        """``count`` uniformly random servers serve stale but once-valid data."""
        return cls(kind="replay_attack", count=count)

    # -- the adversary fleet ------------------------------------------------------

    @classmethod
    def targeted_partition(cls, targets: Iterable[ServerId]) -> "FailureModel":
        """A *fixed* set of servers unreachable from clients in every trial.

        Unlike ``random_crashes`` the adversary picks the victims — e.g. a
        whole canonical quorum — which is the worst case for availability
        that uniform sampling essentially never draws.
        """
        return cls(kind="targeted_partition", targets=tuple(targets))

    @classmethod
    def gray_nodes(cls, count: int, drop_p: float) -> "FailureModel":
        """``count`` random gray servers, each losing messages w.p. ``drop_p``."""
        return cls(kind="gray_nodes", count=count, p=drop_p)

    @classmethod
    def message_reordering(cls) -> "FailureModel":
        """No faulty servers, but quorum RPCs land in adversarially shuffled order.

        Outcome classification must be delivery-order invariant; this model
        lets the equivalence suite assert that end to end on every layer.
        """
        return cls(kind="message_reordering")

    @classmethod
    def timestamp_forging_clique(
        cls, count: int, fabricated_value: Any, fabricated_timestamp: Any
    ) -> "FailureModel":
        """``count`` colluding forgers using an *honest-shaped* timestamp.

        ``colluding_forgers`` traditionally forges ``Timestamp.forged_maximum()``
        — absurdly large, so a defence that merely sanity-checked timestamp
        magnitude would (wrongly) appear sufficient.  The clique instead
        forges a plausible ``Timestamp(counter, writer_id)`` that may tie or
        barely exceed honest timestamps, which is precisely the adversary
        the masking threshold (not any magnitude filter) must defeat.
        """
        return cls(
            kind="timestamp_forging_clique",
            count=count,
            fabricated_value=fabricated_value,
            fabricated_timestamp=fabricated_timestamp,
        )

    @property
    def byzantine_count(self) -> int:
        """How many Byzantine servers every sampled plan contains.

        Crash-only models (``none``, partitions, reordering) inject zero;
        gray nodes are benign; the Byzantine kinds inject exactly ``count``
        per trial.  Scenario validation compares this against the read
        protocol's declared tolerance ``b``.
        """
        if self.kind in (
            "random_byzantine",
            "colluding_forgers",
            "replay_attack",
            "timestamp_forging_clique",
        ):
            return self.count
        return 0

    @property
    def forges_values(self) -> bool:
        """Whether sampled plans contain servers fabricating values."""
        return self.kind in ("colluding_forgers", "timestamp_forging_clique")

    # -- sequential bridge --------------------------------------------------------

    def sample_plan_for(self, n: int, rng: random.Random) -> FailurePlan:
        """Draw one concrete plan over a universe of ``n`` servers."""
        if self.kind == "none":
            return FailurePlan.none()
        if self.kind == "independent_crashes":
            return FailurePlan.independent_crashes(n, self.p, rng=rng)
        if self.kind == "random_crashes":
            return FailurePlan.random_crashes(n, self.count, rng=rng)
        if self.kind == "random_byzantine":
            return FailurePlan.random_byzantine(n, self.count, rng=rng)
        if self.kind in ("colluding_forgers", "timestamp_forging_clique"):
            return FailurePlan.colluding_forgers(
                n, self.count, self.fabricated_value, self.fabricated_timestamp, rng=rng
            )
        if self.kind == "targeted_partition":
            return FailurePlan.targeted_partition(n, self.targets)
        if self.kind == "gray_nodes":
            return FailurePlan.gray_nodes(n, self.count, self.p, rng=rng)
        if self.kind == "message_reordering":
            return FailurePlan(shuffle_delivery=True)
        assert self.kind == "replay_attack"
        return FailurePlan.replay_attack(n, self.count, rng=rng)

    def bind(self, n: int) -> Callable[[random.Random], FailurePlan]:
        """A plan factory over a fixed universe (usable as ``plan_factory=``)."""
        return lambda rng: self.sample_plan_for(n, rng)

    # -- batched sampling ---------------------------------------------------------

    def sample_masks(self, n: int, trials: int, generator: np.random.Generator) -> BatchFailureMasks:
        """Draw a whole batch of failures as boolean ``(trials, n)`` masks."""
        if n < 1:
            raise ConfigurationError(f"universe size must be positive, got {n}")
        if trials < 0:
            raise ConfigurationError(f"trial count must be non-negative, got {trials}")
        empty = np.zeros((trials, n), dtype=bool)
        crashed = silent = forgers = replay = empty
        if self.kind == "independent_crashes":
            crashed = generator.random((trials, n)) < self.p
        elif self.kind == "targeted_partition":
            for server in self.targets:
                if not 0 <= server < n:
                    raise ConfigurationError(
                        f"partition target {server} outside the universe of size {n}"
                    )
            crashed = np.zeros((trials, n), dtype=bool)
            if self.targets:
                crashed[:, list(self.targets)] = True
        elif self.kind not in ("none", "message_reordering"):
            _validate_counts(n, self.count)
            chosen = np.zeros((trials, n), dtype=bool)
            if self.count:
                ranks = generator.random((trials, n))
                picks = np.argpartition(ranks, self.count - 1, axis=1)[:, : self.count]
                np.put_along_axis(chosen, picks, True, axis=1)
            if self.kind == "random_crashes":
                crashed = chosen
            elif self.kind == "random_byzantine":
                silent = chosen
            elif self.kind in ("colluding_forgers", "timestamp_forging_clique"):
                forgers = chosen
            elif self.kind == "gray_nodes":
                # A gray server contributes an honest reply iff neither the
                # write nor the read towards it is dropped — probability
                # (1 - p)^2 — and is otherwise indistinguishable from a
                # crashed server within a single write/read trial, so the
                # batch engine folds gray into the crash mask with the
                # complementary per-trial probability.  (Multi-operation
                # batch kernels fence this kind off; see batch.py.)
                effective_p = 1.0 - (1.0 - self.p) ** 2
                unlucky = generator.random((trials, n)) < effective_p
                crashed = chosen & unlucky
            else:
                replay = chosen
        return BatchFailureMasks(
            crashed=crashed,
            silent=silent,
            forgers=forgers,
            replay=replay,
            fabricated_value=self.fabricated_value,
            fabricated_timestamp=self.fabricated_timestamp,
        )

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        if self.kind in ("none", "message_reordering"):
            return f"FailureModel({self.kind})"
        if self.kind == "independent_crashes":
            return f"FailureModel(independent_crashes, p={self.p})"
        if self.kind == "targeted_partition":
            return f"FailureModel(targeted_partition, targets={list(self.targets)})"
        if self.kind == "gray_nodes":
            return f"FailureModel(gray_nodes, count={self.count}, drop_p={self.p})"
        return f"FailureModel({self.kind}, count={self.count})"
