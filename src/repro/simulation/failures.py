"""Failure injection: crash schedules and Byzantine set selection.

A :class:`FailurePlan` describes, declaratively, which servers misbehave and
how.  The cluster applies the plan when it is constructed (for static plans)
and at simulated times (for crash/recover schedules).  Plans are the single
knob the Monte-Carlo harness, the examples and the benchmark workloads use
to stress the protocols, so keeping them declarative keeps the experiment
configurations readable.

A :class:`FailureModel` sits one level up: it is a *distribution* over
failure plans.  The sequential Monte-Carlo engine draws one
:class:`FailurePlan` from it per trial (``model.bind(n)`` yields an
ordinary plan factory), while the batched engine draws the whole batch at
once as boolean server masks (:class:`BatchFailureMasks`) without
materialising per-trial plan objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    ServerBehavior,
)
from repro.types import ServerId


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled crash (or recovery) of one server at a simulated time."""

    time: float
    server: ServerId
    recover: bool = False


@dataclass
class FailurePlan:
    """A declarative description of which servers fail and how.

    Attributes
    ----------
    crashed:
        Servers that are crashed from the start.
    byzantine:
        Mapping from server id to the Byzantine behaviour it runs.
    schedule:
        Time-ordered crash / recovery events applied by the cluster's
        scheduler (used by availability experiments).
    """

    crashed: FrozenSet[ServerId] = frozenset()
    byzantine: Dict[ServerId, ServerBehavior] = field(default_factory=dict)
    schedule: Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        overlap = set(self.crashed) & set(self.byzantine)
        if overlap:
            raise ConfigurationError(
                f"servers {sorted(overlap)} cannot be both crashed and Byzantine"
            )

    @property
    def byzantine_servers(self) -> FrozenSet[ServerId]:
        """The set of Byzantine server ids."""
        return frozenset(self.byzantine)

    @property
    def faulty_servers(self) -> FrozenSet[ServerId]:
        """All initially faulty servers (crashed or Byzantine)."""
        return frozenset(self.crashed) | self.byzantine_servers

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        return (
            f"FailurePlan(crashed={len(self.crashed)}, byzantine={len(self.byzantine)}, "
            f"scheduled={len(self.schedule)})"
        )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def none(cls) -> "FailurePlan":
        """No failures at all."""
        return cls()

    @classmethod
    def random_crashes(
        cls, n: int, count: int, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """Crash ``count`` servers chosen uniformly at random."""
        _validate_counts(n, count)
        rng = rng or random.Random()
        return cls(crashed=frozenset(rng.sample(range(n), count)))

    @classmethod
    def independent_crashes(
        cls, n: int, p: float, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """Crash each server independently with probability ``p``.

        This is exactly the failure model of Definition 2.6 / 3.8 and is what
        the Monte-Carlo availability experiments use.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
        rng = rng or random.Random()
        crashed = frozenset(s for s in range(n) if rng.random() < p)
        return cls(crashed=crashed)

    @classmethod
    def random_byzantine(
        cls,
        n: int,
        count: int,
        behavior_factory: Callable[[], ServerBehavior] = ByzantineSilentBehavior,
        rng: Optional[random.Random] = None,
    ) -> "FailurePlan":
        """Make ``count`` uniformly random servers Byzantine.

        ``behavior_factory`` is called once per faulty server, so stateful
        behaviours (e.g. replay) are not accidentally shared.
        """
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(byzantine={server: behavior_factory() for server in chosen})

    @classmethod
    def colluding_forgers(
        cls,
        n: int,
        count: int,
        fabricated_value,
        fabricated_timestamp,
        rng: Optional[random.Random] = None,
    ) -> "FailurePlan":
        """``count`` Byzantine servers that all forge the *same* value.

        This is the strongest adversary against a masking threshold: the
        forged value is reported by every faulty server the read quorum
        touches, so it passes the threshold ``k`` exactly when
        ``|Q ∩ B| >= k`` — the event bounded by Lemma 5.7.
        """
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(
            byzantine={
                server: ByzantineForgeBehavior(fabricated_value, fabricated_timestamp)
                for server in chosen
            }
        )

    @classmethod
    def replay_attack(
        cls, n: int, count: int, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """``count`` Byzantine servers that serve stale (but once valid) data."""
        return cls.random_byzantine(n, count, ByzantineReplayBehavior, rng)

    def with_schedule(self, events: Iterable[CrashEvent]) -> "FailurePlan":
        """Return a copy of the plan with an added crash/recovery schedule."""
        ordered = tuple(sorted(events, key=lambda e: e.time))
        return FailurePlan(
            crashed=self.crashed, byzantine=dict(self.byzantine), schedule=ordered
        )


def _validate_counts(n: int, count: int) -> None:
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 0 <= count <= n:
        raise ConfigurationError(f"failure count must lie in [0, {n}], got {count}")


# ---------------------------------------------------------------------------
# Failure models: distributions over failure plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchFailureMasks:
    """One batch of sampled failures as boolean ``(trials, n)`` server masks.

    Each mask marks, per trial, which servers run the corresponding
    behaviour; a server is marked in at most one mask.  The forger fields
    carry the (shared) fabricated value/timestamp of colluding forgers so
    the batched read classification can rank the forgery against honest
    timestamps without touching server objects.
    """

    crashed: np.ndarray
    silent: np.ndarray
    forgers: np.ndarray
    replay: np.ndarray
    fabricated_value: Any = None
    fabricated_timestamp: Any = None

    @property
    def byzantine(self) -> np.ndarray:
        """Servers running any Byzantine behaviour."""
        return self.silent | self.forgers | self.replay

    @property
    def responsive_storers(self) -> np.ndarray:
        """Servers that store honest writes and answer reads with them.

        Correct servers do both; replay servers accept writes and answer
        (albeit with their first-seen value); crashed, silent and forging
        servers either say nothing or discard the data.
        """
        return ~(self.crashed | self.silent | self.forgers)


@dataclass(frozen=True)
class FailureModel:
    """A declarative distribution over :class:`FailurePlan` draws.

    The constructors mirror the :class:`FailurePlan` ones, but describe the
    *randomised* experiment instead of one sampled outcome, which is what
    lets the batched Monte-Carlo engine sample thousands of trials' failures
    as boolean masks in a single vectorised call.  :meth:`bind` turns a
    model into an ordinary sequential plan factory, so one model drives both
    engines — that is what the batch-vs-sequential equivalence tests rely
    on.
    """

    kind: str = "none"
    p: float = 0.0
    count: int = 0
    fabricated_value: Any = None
    fabricated_timestamp: Any = None

    _KINDS = (
        "none",
        "independent_crashes",
        "random_crashes",
        "random_byzantine",
        "colluding_forgers",
        "replay_attack",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown failure model kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind == "independent_crashes" and not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {self.p}")
        if self.kind in ("random_crashes", "random_byzantine", "colluding_forgers", "replay_attack"):
            if self.count < 0:
                raise ConfigurationError(f"failure count must be non-negative, got {self.count}")

    # -- constructors -------------------------------------------------------------

    @classmethod
    def none(cls) -> "FailureModel":
        """No failures in any trial."""
        return cls(kind="none")

    @classmethod
    def independent_crashes(cls, p: float) -> "FailureModel":
        """Each server crashes independently with probability ``p`` per trial."""
        return cls(kind="independent_crashes", p=p)

    @classmethod
    def random_crashes(cls, count: int) -> "FailureModel":
        """``count`` uniformly random servers crash in every trial."""
        return cls(kind="random_crashes", count=count)

    @classmethod
    def random_byzantine(cls, count: int) -> "FailureModel":
        """``count`` uniformly random servers run the silent Byzantine behaviour."""
        return cls(kind="random_byzantine", count=count)

    @classmethod
    def colluding_forgers(
        cls, count: int, fabricated_value: Any, fabricated_timestamp: Any
    ) -> "FailureModel":
        """``count`` uniformly random servers forge the same value per trial."""
        return cls(
            kind="colluding_forgers",
            count=count,
            fabricated_value=fabricated_value,
            fabricated_timestamp=fabricated_timestamp,
        )

    @classmethod
    def replay_attack(cls, count: int) -> "FailureModel":
        """``count`` uniformly random servers serve stale but once-valid data."""
        return cls(kind="replay_attack", count=count)

    @property
    def byzantine_count(self) -> int:
        """How many Byzantine servers every sampled plan contains.

        Crash-only models (and ``none``) inject zero; the three Byzantine
        kinds inject exactly ``count`` per trial.  Scenario validation
        compares this against the read protocol's declared tolerance ``b``.
        """
        if self.kind in ("random_byzantine", "colluding_forgers", "replay_attack"):
            return self.count
        return 0

    # -- sequential bridge --------------------------------------------------------

    def sample_plan_for(self, n: int, rng: random.Random) -> FailurePlan:
        """Draw one concrete plan over a universe of ``n`` servers."""
        if self.kind == "none":
            return FailurePlan.none()
        if self.kind == "independent_crashes":
            return FailurePlan.independent_crashes(n, self.p, rng=rng)
        if self.kind == "random_crashes":
            return FailurePlan.random_crashes(n, self.count, rng=rng)
        if self.kind == "random_byzantine":
            return FailurePlan.random_byzantine(n, self.count, rng=rng)
        if self.kind == "colluding_forgers":
            return FailurePlan.colluding_forgers(
                n, self.count, self.fabricated_value, self.fabricated_timestamp, rng=rng
            )
        assert self.kind == "replay_attack"
        return FailurePlan.replay_attack(n, self.count, rng=rng)

    def bind(self, n: int) -> Callable[[random.Random], FailurePlan]:
        """A plan factory over a fixed universe (usable as ``plan_factory=``)."""
        return lambda rng: self.sample_plan_for(n, rng)

    # -- batched sampling ---------------------------------------------------------

    def sample_masks(self, n: int, trials: int, generator: np.random.Generator) -> BatchFailureMasks:
        """Draw a whole batch of failures as boolean ``(trials, n)`` masks."""
        if n < 1:
            raise ConfigurationError(f"universe size must be positive, got {n}")
        if trials < 0:
            raise ConfigurationError(f"trial count must be non-negative, got {trials}")
        empty = np.zeros((trials, n), dtype=bool)
        crashed = silent = forgers = replay = empty
        if self.kind == "independent_crashes":
            crashed = generator.random((trials, n)) < self.p
        elif self.kind != "none":
            _validate_counts(n, self.count)
            chosen = np.zeros((trials, n), dtype=bool)
            if self.count:
                ranks = generator.random((trials, n))
                picks = np.argpartition(ranks, self.count - 1, axis=1)[:, : self.count]
                np.put_along_axis(chosen, picks, True, axis=1)
            if self.kind == "random_crashes":
                crashed = chosen
            elif self.kind == "random_byzantine":
                silent = chosen
            elif self.kind == "colluding_forgers":
                forgers = chosen
            else:
                replay = chosen
        return BatchFailureMasks(
            crashed=crashed,
            silent=silent,
            forgers=forgers,
            replay=replay,
            fabricated_value=self.fabricated_value,
            fabricated_timestamp=self.fabricated_timestamp,
        )

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        if self.kind == "none":
            return "FailureModel(none)"
        if self.kind == "independent_crashes":
            return f"FailureModel(independent_crashes, p={self.p})"
        return f"FailureModel({self.kind}, count={self.count})"
