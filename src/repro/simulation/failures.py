"""Failure injection: crash schedules and Byzantine set selection.

A :class:`FailurePlan` describes, declaratively, which servers misbehave and
how.  The cluster applies the plan when it is constructed (for static plans)
and at simulated times (for crash/recover schedules).  Plans are the single
knob the Monte-Carlo harness, the examples and the benchmark workloads use
to stress the protocols, so keeping them declarative keeps the experiment
configurations readable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    ServerBehavior,
)
from repro.types import ServerId


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled crash (or recovery) of one server at a simulated time."""

    time: float
    server: ServerId
    recover: bool = False


@dataclass
class FailurePlan:
    """A declarative description of which servers fail and how.

    Attributes
    ----------
    crashed:
        Servers that are crashed from the start.
    byzantine:
        Mapping from server id to the Byzantine behaviour it runs.
    schedule:
        Time-ordered crash / recovery events applied by the cluster's
        scheduler (used by availability experiments).
    """

    crashed: FrozenSet[ServerId] = frozenset()
    byzantine: Dict[ServerId, ServerBehavior] = field(default_factory=dict)
    schedule: Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        overlap = set(self.crashed) & set(self.byzantine)
        if overlap:
            raise ConfigurationError(
                f"servers {sorted(overlap)} cannot be both crashed and Byzantine"
            )

    @property
    def byzantine_servers(self) -> FrozenSet[ServerId]:
        """The set of Byzantine server ids."""
        return frozenset(self.byzantine)

    @property
    def faulty_servers(self) -> FrozenSet[ServerId]:
        """All initially faulty servers (crashed or Byzantine)."""
        return frozenset(self.crashed) | self.byzantine_servers

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        return (
            f"FailurePlan(crashed={len(self.crashed)}, byzantine={len(self.byzantine)}, "
            f"scheduled={len(self.schedule)})"
        )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def none(cls) -> "FailurePlan":
        """No failures at all."""
        return cls()

    @classmethod
    def random_crashes(
        cls, n: int, count: int, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """Crash ``count`` servers chosen uniformly at random."""
        _validate_counts(n, count)
        rng = rng or random.Random()
        return cls(crashed=frozenset(rng.sample(range(n), count)))

    @classmethod
    def independent_crashes(
        cls, n: int, p: float, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """Crash each server independently with probability ``p``.

        This is exactly the failure model of Definition 2.6 / 3.8 and is what
        the Monte-Carlo availability experiments use.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
        rng = rng or random.Random()
        crashed = frozenset(s for s in range(n) if rng.random() < p)
        return cls(crashed=crashed)

    @classmethod
    def random_byzantine(
        cls,
        n: int,
        count: int,
        behavior_factory: Callable[[], ServerBehavior] = ByzantineSilentBehavior,
        rng: Optional[random.Random] = None,
    ) -> "FailurePlan":
        """Make ``count`` uniformly random servers Byzantine.

        ``behavior_factory`` is called once per faulty server, so stateful
        behaviours (e.g. replay) are not accidentally shared.
        """
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(byzantine={server: behavior_factory() for server in chosen})

    @classmethod
    def colluding_forgers(
        cls,
        n: int,
        count: int,
        fabricated_value,
        fabricated_timestamp,
        rng: Optional[random.Random] = None,
    ) -> "FailurePlan":
        """``count`` Byzantine servers that all forge the *same* value.

        This is the strongest adversary against a masking threshold: the
        forged value is reported by every faulty server the read quorum
        touches, so it passes the threshold ``k`` exactly when
        ``|Q ∩ B| >= k`` — the event bounded by Lemma 5.7.
        """
        _validate_counts(n, count)
        rng = rng or random.Random()
        chosen = rng.sample(range(n), count)
        return cls(
            byzantine={
                server: ByzantineForgeBehavior(fabricated_value, fabricated_timestamp)
                for server in chosen
            }
        )

    @classmethod
    def replay_attack(
        cls, n: int, count: int, rng: Optional[random.Random] = None
    ) -> "FailurePlan":
        """``count`` Byzantine servers that serve stale (but once valid) data."""
        return cls.random_byzantine(n, count, ByzantineReplayBehavior, rng)

    def with_schedule(self, events: Iterable[CrashEvent]) -> "FailurePlan":
        """Return a copy of the plan with an added crash/recovery schedule."""
        ordered = tuple(sorted(events, key=lambda e: e.time))
        return FailurePlan(
            crashed=self.crashed, byzantine=dict(self.byzantine), schedule=ordered
        )


def _validate_counts(n: int, count: int) -> None:
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 0 <= count <= n:
        raise ConfigurationError(f"failure count must lie in [0, {n}], got {count}")
