"""Declarative scenario descriptions consumed by both Monte-Carlo engines.

A :class:`ScenarioSpec` is the single description of one consistency
experiment: which quorum system (and therefore which of the paper's three
access protocols), which :class:`~repro.simulation.failures.FailureModel`,
and which workload (write history, gossip schedule, written value).  The
sequential engine lowers a spec to register/cluster objects via
:meth:`ScenarioSpec.register_factory`; the batched engine reads the same
spec's :meth:`read_semantics` — threshold ``k`` and signature verifiability,
exposed declaratively by the core systems — and classifies trials with
vectorised kernels.  One spec, two independent execution semantics, which is
what keeps the engines' equivalence testable as new workloads are added.

The register kind defaults to ``"auto"``: a system exposing a masking
``read_threshold`` gets the Section 5 threshold read, a system whose
:meth:`~repro.core.probabilistic.ProbabilisticQuorumSystem.read_semantics`
declares self-verifying data gets the signed Section 4 protocol, and
everything else gets the benign Section 3.1 register.  Forcing
``register_kind="plain"`` on a Byzantine system is allowed (it models a
reader that ignores the protocol's filter), but ``"masking"`` requires a
system that actually carries a threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.core.probabilistic import ProbabilisticQuorumSystem, ReadSemantics
from repro.exceptions import ConfigurationError
from repro.simulation.failures import FailureModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids circular imports
    from repro.protocol.variable import ProbabilisticRegister
    from repro.simulation.cluster import Cluster

#: Register kinds a spec can name; ``auto`` resolves from the system.
#: ``"write-back"`` is never auto-resolved: it is the explicit read-repair
#: variant of the plain protocol (readers repair a quorum after selecting).
REGISTER_KINDS = ("auto", "plain", "dissemination", "masking", "write-back")


@dataclass(frozen=True)
class AntiEntropySpec:
    """The scenario's background anti-entropy (§1.1 diffusion), declaratively.

    One description serves every execution layer:

    * the **sequential engine** runs ``rounds`` push-gossip rounds of a
      :class:`~repro.simulation.diffusion.DiffusionEngine` with ``fanout``
      between the write settling and the read;
    * the **batch engine** applies the same rounds through the vectorised
      :func:`~repro.simulation.diffusion.gossip_rounds_batch` kernel;
    * the **service layers** run a background gossip task every
      ``interval`` event-loop seconds with the same fanout, and readers
      piggyback up to ``repair_budget`` write-back repairs per coalesced
      dispatch flush onto replicas they already contacted.

    ``fanout=0`` disables gossip (rounds become the identity);
    ``repair_budget=0`` disables piggybacked read-repair.  The spec is a
    frozen picklable value, so it crosses the cluster deployment's process
    boundary inside its :class:`ScenarioSpec` untouched.
    """

    fanout: int = 2
    rounds: int = 1
    interval: float = 0.002
    repair_budget: int = 4

    def __post_init__(self) -> None:
        if self.fanout < 0:
            raise ConfigurationError(
                f"anti-entropy fanout must be non-negative, got {self.fanout}"
            )
        if self.rounds < 0:
            raise ConfigurationError(
                f"anti-entropy round count must be non-negative, got {self.rounds}"
            )
        if self.interval <= 0.0:
            raise ConfigurationError(
                f"the gossip interval must be positive, got {self.interval}"
            )
        if self.repair_budget < 0:
            raise ConfigurationError(
                f"the repair budget must be non-negative, got {self.repair_budget}"
            )

    @property
    def gossips(self) -> bool:
        """Whether background gossip actually moves data."""
        return self.fanout > 0 and self.rounds > 0

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        return (
            f"AntiEntropy(fanout={self.fanout}, rounds={self.rounds}, "
            f"interval={self.interval}, repair_budget={self.repair_budget})"
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """The client-side workload of one scenario.

    ``writes=1`` describes the read-consistency experiment (one write, one
    read — Theorems 3.2/4.2/5.2); larger histories with optional gossip
    rounds between writes describe the staleness-distribution experiment of
    Section 1.1.
    """

    writes: int = 1
    gossip_rounds_between_writes: int = 0
    gossip_fanout: int = 2
    written_value: Any = "v"

    def __post_init__(self) -> None:
        if self.writes < 1:
            raise ConfigurationError(
                f"the write history needs at least one write, got {self.writes}"
            )
        if self.gossip_rounds_between_writes < 0:
            raise ConfigurationError(
                f"gossip round count must be non-negative, "
                f"got {self.gossip_rounds_between_writes}"
            )
        if self.gossip_fanout < 1:
            raise ConfigurationError(
                f"gossip fanout must be positive, got {self.gossip_fanout}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment, described declaratively for both engines.

    Attributes
    ----------
    system:
        The probabilistic quorum system; its access strategy draws every
        quorum and its :meth:`read_semantics` supplies the default read
        protocol.
    failure_model:
        Distribution over per-trial failures (default: none).
    workload:
        Write history / gossip schedule / written value.
    register_kind:
        ``"auto"`` (resolve from the system) or an explicit protocol name.
    writer_id:
        Writer identity baked into honest timestamps (the first writer's id
        when ``writers > 1``).
    signing_key:
        Writer key for the dissemination protocol's signature scheme
        (readers hold the same instance; servers never see it).
    writers:
        Concurrent writers contending on the register.  Writer ``w`` gets
        identity ``writer_id + w``; with every per-trial counter at 1 the
        writer id is the tie-break, so the highest-id writer's value is the
        winner every layer must deterministically converge on.
    anti_entropy:
        Optional :class:`AntiEntropySpec`: background diffusion of settled
        writes (gossip rounds for the engines, a gossip task plus
        piggybacked read-repair for the services).  ``None`` (the default)
        keeps freshness a read-path concern, exactly as before.
    """

    system: ProbabilisticQuorumSystem
    failure_model: FailureModel = field(default_factory=FailureModel.none)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    register_kind: str = "auto"
    writer_id: int = 0
    signing_key: bytes = b"scenario"
    writers: int = 1
    anti_entropy: Any = None

    def __post_init__(self) -> None:
        if not isinstance(self.system, ProbabilisticQuorumSystem):
            raise ConfigurationError(
                "a scenario is described over a ProbabilisticQuorumSystem, "
                f"got {type(self.system).__name__}"
            )
        if not isinstance(self.failure_model, FailureModel):
            raise ConfigurationError(
                "a scenario needs a declarative FailureModel, "
                f"got {type(self.failure_model).__name__}"
            )
        if self.register_kind not in REGISTER_KINDS:
            raise ConfigurationError(
                f"unknown register kind {self.register_kind!r}; "
                f"expected one of {REGISTER_KINDS}"
            )
        if self.writers < 1:
            raise ConfigurationError(
                f"a scenario needs at least one writer, got {self.writers}"
            )
        if self.register_kind == "masking" and not hasattr(self.system, "read_threshold"):
            raise ConfigurationError(
                "the masking protocol needs a system with a read_threshold "
                f"(got {type(self.system).__name__})"
            )
        if self.anti_entropy is not None and not isinstance(
            self.anti_entropy, AntiEntropySpec
        ):
            raise ConfigurationError(
                "anti_entropy must be an AntiEntropySpec (or None), "
                f"got {type(self.anti_entropy).__name__}"
            )
        if self.anti_entropy is not None and self.anti_entropy.fanout >= self.n:
            raise ConfigurationError(
                f"anti-entropy fanout {self.anti_entropy.fanout} must be smaller "
                f"than the universe size {self.n}"
            )
        # Resolve eagerly so a mis-described scenario fails at construction.
        self.resolved_register_kind()
        self._check_byzantine_tolerance()

    def _check_byzantine_tolerance(self) -> None:
        """Reject failure models that void the read protocol's ``b`` guarantee.

        Theorems 4.2 and 5.2 assume at most ``b`` Byzantine servers — the
        tolerance the system declares through its
        :class:`~repro.core.probabilistic.ReadSemantics`.  A model injecting
        more does not make the experiment "more Byzantine": it silently
        measures a regime the construction was never calibrated for
        (typically all-stale runs), so it is a configuration error.  Forcing
        ``register_kind="plain"`` stays exempt — that explicitly models a
        reader that ignores the protocol's filter, where no tolerance is
        claimed.
        """
        semantics = self.read_semantics()
        injected = self.failure_model.byzantine_count
        if semantics.byzantine_tolerance is None or injected <= semantics.byzantine_tolerance:
            return
        raise ConfigurationError(
            f"the failure model injects {injected} Byzantine servers but the "
            f"{self.resolved_register_kind()} protocol of {self.system.describe()} "
            f"only tolerates b={semantics.byzantine_tolerance}; such runs silently "
            f"degrade to stale/⊥ reads instead of measuring the theorem's regime. "
            f"Use a system calibrated for b>={injected}, or force "
            f"register_kind='plain' to model an unprotected reader."
        )

    # -- resolution ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Universe size (from the system)."""
        return self.system.n

    def resolved_register_kind(self) -> str:
        """The concrete protocol this scenario runs (``auto`` resolved)."""
        if self.register_kind != "auto":
            return self.register_kind
        if hasattr(self.system, "read_threshold"):
            return "masking"
        if self.system.read_semantics().self_verifying:
            return "dissemination"
        return "plain"

    def read_semantics(self) -> ReadSemantics:
        """Threshold/verifiability of this scenario's read protocol.

        For ``auto`` scenarios this is exactly the system's declared
        semantics; forcing a register kind overrides them (e.g. a plain
        register over a masking system reads with ``threshold=1``).
        """
        kind = self.resolved_register_kind()
        tolerance = getattr(self.system, "byzantine_threshold", None)
        if kind == "masking":
            return ReadSemantics(
                threshold=int(self.system.read_threshold), byzantine_tolerance=tolerance
            )
        if kind == "dissemination":
            return ReadSemantics(self_verifying=True, byzantine_tolerance=tolerance)
        return ReadSemantics()

    def writer_ids(self) -> tuple:
        """The identities of the scenario's concurrent writers, ascending.

        Writer-id order *is* timestamp order when every writer's counter is
        equal, so the last id is the deterministic winner of a fully
        concurrent write round.
        """
        return tuple(self.writer_id + index for index in range(self.writers))

    # -- sequential lowering ------------------------------------------------------

    def register_factory(
        self, writer_index: int = 0
    ) -> Callable[["Cluster", random.Random], "ProbabilisticRegister"]:
        """A per-trial register factory for the sequential oracle engine.

        ``writer_index`` selects which of the scenario's concurrent writers
        the register writes as (identity ``writer_id + writer_index``); all
        indices share the scenario's signing key, so every writer's records
        verify under the same dissemination scheme.
        """
        from repro.protocol.dissemination_variable import DisseminationRegister
        from repro.protocol.masking_variable import MaskingRegister
        from repro.protocol.signatures import SignatureScheme
        from repro.protocol.variable import ProbabilisticRegister
        from repro.protocol.write_back import WriteBackRegister

        if not 0 <= writer_index < self.writers:
            raise ConfigurationError(
                f"writer index {writer_index} out of range for {self.writers} writer(s)"
            )
        writer_id = self.writer_id + writer_index
        kind = self.resolved_register_kind()
        if kind == "masking":
            return lambda cluster, rng: MaskingRegister(
                self.system, cluster, writer_id=writer_id, rng=rng
            )
        if kind == "dissemination":
            scheme = SignatureScheme(self.signing_key)
            return lambda cluster, rng: DisseminationRegister(
                self.system, cluster, signatures=scheme, writer_id=writer_id, rng=rng
            )
        if kind == "write-back":
            return lambda cluster, rng: WriteBackRegister(
                self.system, cluster, writer_id=writer_id, rng=rng
            )
        return lambda cluster, rng: ProbabilisticRegister(
            self.system, cluster, writer_id=writer_id, rng=rng
        )

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        contention = f", writers={self.writers}" if self.writers > 1 else ""
        diffusion = (
            f", {self.anti_entropy.describe()}" if self.anti_entropy is not None else ""
        )
        return (
            f"ScenarioSpec({self.system.describe()}, {self.failure_model.describe()}, "
            f"register={self.resolved_register_kind()}, "
            f"writes={self.workload.writes}{contention}{diffusion})"
        )
