"""Message-passing network model.

Clients and servers exchange request/reply messages through a
:class:`Network`, which applies a latency model, an independent per-message
drop probability, and (optionally) partitions.  The protocol layer's quorum
RPCs go through :class:`repro.simulation.cluster.Cluster`, which uses the
network's *synchronous* helpers; the asynchronous (scheduled) delivery path
is used by the diffusion engine and by tests that exercise timing behaviour.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.exceptions import SimulationError
from repro.simulation.events import EventScheduler
from repro.types import ServerId


@dataclass(frozen=True)
class Message:
    """A network message.

    Attributes
    ----------
    sender / recipient:
        Node identifiers.  Clients use negative identifiers so they never
        collide with server ids ``0..n-1``.
    kind:
        A short verb, e.g. ``"read"``, ``"write"``, ``"gossip"``.
    payload:
        Arbitrary immutable payload (tuples / frozen dataclasses preferred).
    """

    sender: int
    recipient: int
    kind: str
    payload: Any


class LatencyModel(abc.ABC):
    """Distribution of one-way message latencies."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one latency value (in simulated time units)."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise SimulationError(f"latency must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low < 0 or high < low:
            raise SimulationError(f"invalid latency range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class Network:
    """Unicast network with drops, latency and partitions.

    Parameters
    ----------
    scheduler:
        Event scheduler used for asynchronous delivery.
    latency:
        Latency model (defaults to constant 1.0).
    drop_probability:
        Each message is independently dropped with this probability.
    rng:
        Random source; supply a seeded instance for reproducible runs.
    """

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise SimulationError(
                f"drop probability must lie in [0, 1), got {drop_probability}"
            )
        # Note: EventScheduler defines __len__, so an empty scheduler is falsy;
        # test identity against None rather than truthiness.
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.drop_probability = float(drop_probability)
        self.rng = rng or random.Random(0)
        self._partitions: Tuple[FrozenSet[int], ...] = ()
        self._sent = 0
        self._dropped = 0
        self._delivered = 0

    # -- statistics -------------------------------------------------------------

    @property
    def messages_sent(self) -> int:
        """Total messages handed to the network."""
        return self._sent

    @property
    def messages_dropped(self) -> int:
        """Messages lost to drops or partitions."""
        return self._dropped

    @property
    def messages_delivered(self) -> int:
        """Messages that reached their recipient."""
        return self._delivered

    # -- partitions -------------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network into groups; messages across groups are dropped.

        Nodes not mentioned in any group can talk to everyone.
        """
        self._partitions = tuple(frozenset(g) for g in groups)

    def heal_partition(self) -> None:
        """Remove any partition."""
        self._partitions = ()

    def can_communicate(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` are on the same side of every partition."""
        if not self._partitions:
            return True
        group_a = next((g for g in self._partitions if a in g), None)
        group_b = next((g for g in self._partitions if b in g), None)
        if group_a is None or group_b is None:
            return True
        return group_a is group_b

    # -- delivery ---------------------------------------------------------------

    def _should_drop(self, message: Message) -> bool:
        if not self.can_communicate(message.sender, message.recipient):
            return True
        return self.rng.random() < self.drop_probability

    def send(
        self,
        message: Message,
        handler: Callable[[Message], None],
    ) -> bool:
        """Asynchronously deliver ``message`` to ``handler`` after a latency delay.

        Returns ``True`` if the message was scheduled for delivery and
        ``False`` if it was dropped (the sender cannot tell the difference in
        a real system; the return value exists for tests and statistics).
        """
        self._sent += 1
        if self._should_drop(message):
            self._dropped += 1
            return False
        delay = self.latency.sample(self.rng)
        self.scheduler.schedule(delay, lambda: self._deliver(message, handler))
        return True

    def _deliver(self, message: Message, handler: Callable[[Message], None]) -> None:
        self._delivered += 1
        handler(message)

    def send_sync(self, message: Message) -> bool:
        """Synchronous transmission decision (used by the quorum-RPC facade).

        Returns whether the message survives drops/partitions; latency is not
        modelled on the synchronous path.
        """
        self._sent += 1
        if self._should_drop(message):
            self._dropped += 1
            return False
        self._delivered += 1
        return True
