"""The socket transport's wire formats: length-prefixed frames, two codecs.

The TCP transport (:mod:`repro.service.net`) moves the *same* RPC payloads
the in-process paths pass by reference — method names, register keys,
arbitrary written values, :class:`~repro.protocol.timestamps.Timestamp`
objects (honest and forged), signature bytes and
:class:`~repro.simulation.server.StoredValue` replies — so a codec must be
a bijection on that whole value space, not just on JSON's native one.  Two
codecs implement that bijection behind one framing:

**json** (the debug codec and the compatibility fallback) packs every
container and protocol object behind a one-key tag object before
serialisation:

====  ==========================================================
tag   payload
====  ==========================================================
"b"   bytes, as base64 text
"t"   tuple, as a packed array
"d"   dict, as packed ``[key, value]`` pairs (keys need not be strings)
"ts"  ``Timestamp(counter, writer_id)``
"sv"  ``StoredValue(value, timestamp, signature)``
====  ==========================================================

Plain JSON scalars and lists pass through untouched; plain dicts never
appear raw on the wire (they are always tagged), which is what makes the
tag objects unambiguous.

**binary** is the struct-packed fast path: a body starts with the magic
byte ``0xB1`` (never the first byte of UTF-8 JSON text, so the decoder
distinguishes the codecs per frame), followed by one tag-prefixed value.
Fixed layouts cover the protocol's hot shapes — 64-bit ints (``!q``,
arbitrary-precision fallback), floats (``!d``), length-prefixed UTF-8
strings and *raw* bytes (no base64), counted lists/tuples/dicts, a
two-int64 ``Timestamp`` record and a three-field ``StoredValue`` record —
so RPC request/response tuples cost a handful of ``struct`` packs instead
of a JSON tree walk.

**Codec negotiation** is per connection and sender-side only: a client
preferring binary opens with a ``("hello", [codec, ...])`` frame (always
JSON-encoded, so any peer can read it) and the server answers
``("hello", chosen)``, after which each side *sends* its negotiated codec.
Because every frame self-identifies via the magic byte, a receiver needs no
negotiation state to decode — old JSON-only peers simply drop the hello as
a malformed request, which the client detects (EOF) and falls back to JSON.
``encode(decode(x)) == x`` for every supported payload under **both**
codecs — the hypothesis suite in ``tests/service/test_wire.py`` pins the
round trips down, including adversarially large and empty values, and pins
that the same logical frame decodes identically whichever codec carried it.

A frame is a 4-byte big-endian length prefix followed by the body.
:class:`FrameDecoder` is an *incremental* decoder: feed it whatever chunks
the socket produced — single bytes, frame fragments, several frames glued
together — and it yields each complete payload exactly once, holding
partial frames until the rest arrives.  Frames beyond
:data:`MAX_FRAME_BYTES` raise :class:`~repro.exceptions.WireFormatError`
*before* the body is buffered, bounding the memory a malformed (or hostile)
peer can pin.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ProtocolError, WireFormatError
from repro.protocol.timestamps import Timestamp
from repro.simulation.server import StoredValue

#: Hard cap on one frame's body size (prefix excluded).  Large enough for
#: any realistic register value, small enough that a corrupt length prefix
#: cannot make the decoder buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Length-prefix width in bytes (big-endian, unsigned).
_PREFIX_BYTES = 4

#: The codecs a connection can negotiate.  ``"json"`` is the debug codec
#: and the universal fallback; ``"binary"`` is the struct-packed fast path.
WIRE_CODECS = ("json", "binary")

_SCALARS = (bool, int, float, str)


def pack_value(value: Any) -> Any:
    """Lower one payload to JSON-serialisable form (see the tag table)."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, bytes):
        return {"b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"t": [pack_value(item) for item in value]}
    if isinstance(value, list):
        return [pack_value(item) for item in value]
    if isinstance(value, dict):
        return {"d": [[pack_value(key), pack_value(item)] for key, item in value.items()]}
    if isinstance(value, Timestamp):
        return {"ts": [value.counter, value.writer_id]}
    if isinstance(value, StoredValue):
        return {
            "sv": [
                pack_value(value.value),
                pack_value(value.timestamp),
                pack_value(value.signature),
            ]
        }
    raise WireFormatError(
        f"cannot serialise {type(value).__name__!r} for the socket transport"
    )


def unpack_value(packed: Any) -> Any:
    """Invert :func:`pack_value`; raise on unknown or malformed tags."""
    if packed is None or isinstance(packed, _SCALARS):
        return packed
    if isinstance(packed, list):
        return [unpack_value(item) for item in packed]
    if isinstance(packed, dict):
        if len(packed) != 1:
            raise WireFormatError(f"malformed wire tag object: {sorted(packed)!r}")
        tag, body = next(iter(packed.items()))
        try:
            if tag == "b":
                return base64.b64decode(body.encode("ascii"), validate=True)
            if tag == "t":
                return tuple(unpack_value(item) for item in body)
            if tag == "d":
                return {unpack_value(key): unpack_value(item) for key, item in body}
            if tag == "ts":
                counter, writer_id = body
                return Timestamp(int(counter), int(writer_id))
            if tag == "sv":
                value, timestamp, signature = body
                return StoredValue(
                    value=unpack_value(value),
                    timestamp=unpack_value(timestamp),
                    signature=unpack_value(signature),
                )
        except WireFormatError:
            raise
        except Exception as error:  # malformed body under a known tag
            raise WireFormatError(f"malformed {tag!r} wire payload: {error}") from error
        raise WireFormatError(f"unknown wire tag {tag!r}")
    raise WireFormatError(f"cannot deserialise wire payload of type {type(packed).__name__!r}")


# -- the binary codec --------------------------------------------------------------

#: First body byte of every binary frame.  0xB1 is a UTF-8 continuation
#: byte, so it can never open the UTF-8 text of a JSON body — which is what
#: lets :class:`FrameDecoder` dispatch per frame with no negotiation state.
BINARY_MAGIC = 0xB1

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03  # !q
_T_BIGINT = 0x04  # !I byte length + signed big-endian magnitude
_T_FLOAT = 0x05  # !d
_T_STR = 0x06  # !I byte length + UTF-8
_T_BYTES = 0x07  # !I byte length + raw bytes (no base64)
_T_LIST = 0x08  # !I count + items
_T_TUPLE = 0x09  # !I count + items
_T_DICT = 0x0A  # !I count + key/value pairs
_T_TS = 0x0B  # !qq (counter, writer_id)
_T_TSBIG = 0x0C  # two packed ints (beyond int64; forged timestamps)
_T_SV = 0x0D  # value, timestamp, signature (each packed)

_STRUCT_Q = struct.Struct("!q")
_STRUCT_D = struct.Struct("!d")
_STRUCT_I = struct.Struct("!I")
_STRUCT_QQ = struct.Struct("!qq")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _pack_int(value: int, out: bytearray) -> None:
    if _INT64_MIN <= value <= _INT64_MAX:
        out.append(_T_INT)
        out += _STRUCT_Q.pack(value)
    else:
        raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
        out.append(_T_BIGINT)
        out += _STRUCT_I.pack(len(raw))
        out += raw


def _pack_str(value: str, out: bytearray) -> None:
    raw = value.encode("utf-8")
    out.append(_T_STR)
    out += _STRUCT_I.pack(len(raw))
    out += raw


def _pack_bytes(value: bytes, out: bytearray) -> None:
    out.append(_T_BYTES)
    out += _STRUCT_I.pack(len(value))
    out += value


def _pack_list(value: list, out: bytearray) -> None:
    out.append(_T_LIST)
    out += _STRUCT_I.pack(len(value))
    for item in value:
        _pack_binary(item, out)


def _pack_tuple(value: tuple, out: bytearray) -> None:
    out.append(_T_TUPLE)
    out += _STRUCT_I.pack(len(value))
    for item in value:
        _pack_binary(item, out)


def _pack_dict(value: dict, out: bytearray) -> None:
    out.append(_T_DICT)
    out += _STRUCT_I.pack(len(value))
    for key, item in value.items():
        _pack_binary(key, out)
        _pack_binary(item, out)


def _pack_timestamp(value: Timestamp, out: bytearray) -> None:
    counter, writer_id = value.counter, value.writer_id
    if _INT64_MIN <= counter <= _INT64_MAX and _INT64_MIN <= writer_id <= _INT64_MAX:
        out.append(_T_TS)
        out += _STRUCT_QQ.pack(counter, writer_id)
    else:  # a forged timestamp may carry arbitrary-precision fields
        out.append(_T_TSBIG)
        _pack_int(counter, out)
        _pack_int(writer_id, out)


def _pack_stored_value(value: StoredValue, out: bytearray) -> None:
    out.append(_T_SV)
    _pack_binary(value.value, out)
    _pack_binary(value.timestamp, out)
    _pack_binary(value.signature, out)


def _pack_none(value: None, out: bytearray) -> None:
    out.append(_T_NONE)


def _pack_bool(value: bool, out: bytearray) -> None:
    out.append(_T_TRUE if value else _T_FALSE)


def _pack_float(value: float, out: bytearray) -> None:
    out.append(_T_FLOAT)
    out += _STRUCT_D.pack(value)


#: Exact-type dispatch for the hot path (``type(x)`` lookup beats the
#: isinstance chain the JSON codec walks); ``bool`` precedes ``int`` in the
#: subclass fallback below for the same reason it does in ``pack_value``.
_BINARY_PACKERS = {
    type(None): _pack_none,
    bool: _pack_bool,
    int: _pack_int,
    float: _pack_float,
    str: _pack_str,
    bytes: _pack_bytes,
    list: _pack_list,
    tuple: _pack_tuple,
    dict: _pack_dict,
    Timestamp: _pack_timestamp,
    StoredValue: _pack_stored_value,
}

_BINARY_PACKER_FALLBACK = (
    (bool, _pack_bool),
    (int, _pack_int),
    (float, _pack_float),
    (str, _pack_str),
    (bytes, _pack_bytes),
    (list, _pack_list),
    (tuple, _pack_tuple),
    (dict, _pack_dict),
    (Timestamp, _pack_timestamp),
    (StoredValue, _pack_stored_value),
)


def _pack_binary(value: Any, out: bytearray) -> None:
    packer = _BINARY_PACKERS.get(type(value))
    if packer is not None:
        packer(value, out)
        return
    for cls, packer in _BINARY_PACKER_FALLBACK:  # subclasses (rare)
        if isinstance(value, cls):
            packer(value, out)
            return
    raise WireFormatError(
        f"cannot serialise {type(value).__name__!r} for the socket transport"
    )


def _take(body: bytes, offset: int, length: int) -> int:
    end = offset + length
    if end > len(body):
        raise WireFormatError(
            f"truncated binary frame: {length} bytes claimed at offset {offset}, "
            f"{len(body) - offset} available"
        )
    return end


def _unpack_binary(body: bytes, offset: int) -> Tuple[Any, int]:
    tag = body[offset]
    offset += 1
    if tag == _T_TUPLE or tag == _T_LIST:
        (count,) = _STRUCT_I.unpack_from(body, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _unpack_binary(body, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_STR:
        (length,) = _STRUCT_I.unpack_from(body, offset)
        end = _take(body, offset + 4, length)
        return body[offset + 4 : end].decode("utf-8"), end
    if tag == _T_INT:
        return _STRUCT_Q.unpack_from(body, offset)[0], offset + 8
    if tag == _T_TS:
        counter, writer_id = _STRUCT_QQ.unpack_from(body, offset)
        return Timestamp(counter, writer_id), offset + 16
    if tag == _T_SV:
        value, offset = _unpack_binary(body, offset)
        timestamp, offset = _unpack_binary(body, offset)
        signature, offset = _unpack_binary(body, offset)
        return StoredValue(value=value, timestamp=timestamp, signature=signature), offset
    if tag == _T_BYTES:
        (length,) = _STRUCT_I.unpack_from(body, offset)
        end = _take(body, offset + 4, length)
        return body[offset + 4 : end], end
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_FLOAT:
        return _STRUCT_D.unpack_from(body, offset)[0], offset + 8
    if tag == _T_DICT:
        (count,) = _STRUCT_I.unpack_from(body, offset)
        offset += 4
        pairs = {}
        for _ in range(count):
            key, offset = _unpack_binary(body, offset)
            item, offset = _unpack_binary(body, offset)
            pairs[key] = item
        return pairs, offset
    if tag == _T_BIGINT:
        (length,) = _STRUCT_I.unpack_from(body, offset)
        end = _take(body, offset + 4, length)
        return int.from_bytes(body[offset + 4 : end], "big", signed=True), end
    if tag == _T_TSBIG:
        counter, offset = _unpack_binary(body, offset)
        writer_id, offset = _unpack_binary(body, offset)
        if not isinstance(counter, int) or not isinstance(writer_id, int):
            raise WireFormatError("malformed big-timestamp record")
        return Timestamp(counter, writer_id), offset
    raise WireFormatError(f"unknown binary wire tag 0x{tag:02x}")


def decode_binary_body(body: bytes) -> Any:
    """Decode one binary frame body (magic byte included); raise on garbage."""
    try:
        value, offset = _unpack_binary(body, 1)
    except WireFormatError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError, OverflowError,
            RecursionError, TypeError, ValueError, ProtocolError) as error:
        # ProtocolError: a forged body can encode field values the protocol
        # types refuse (a negative timestamp counter) — still a wire fault.
        raise WireFormatError(
            f"truncated or malformed binary frame: {error}"
        ) from error
    if offset != len(body):
        raise WireFormatError(
            f"{len(body) - offset} trailing bytes after the binary payload"
        )
    return value


def encode_binary_body(payload: Any) -> bytes:
    """One payload as a binary frame body (magic byte included)."""
    out = bytearray((BINARY_MAGIC,))
    _pack_binary(payload, out)
    return bytes(out)


# -- framing -----------------------------------------------------------------------


def encode_frame(payload: Any, codec: str = "json") -> bytes:
    """One payload as a length-prefixed frame, ready for a socket write."""
    if codec == "json":
        body = json.dumps(pack_value(payload), separators=(",", ":")).encode("utf-8")
    elif codec == "binary":
        body = encode_binary_body(payload)
    else:
        raise WireFormatError(
            f"unknown wire codec {codec!r}; choose from {WIRE_CODECS}"
        )
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(body).to_bytes(_PREFIX_BYTES, "big") + body


def request_tail(method: str, args: tuple, codec: str = "json"):
    """Pre-serialised shared suffix of a fan-out's request frames.

    A quorum fan-out sends ``q`` request frames differing only in
    ``request_id`` and ``server``; serialising the (potentially large)
    ``(method, args)`` payload once per *operation* instead of once per
    frame keeps the wire fast path linear in the payload size.  Compose
    with :func:`encode_request_frame`; the tail is ``str`` under the JSON
    codec and ``bytes`` under the binary one.
    """
    if codec == "json":
        return (
            json.dumps(method)
            + ","
            + json.dumps(pack_value(tuple(args)), separators=(",", ":"))
        )
    if codec == "binary":
        out = bytearray()
        _pack_str(method, out)
        _pack_tuple(tuple(args), out)
        return bytes(out)
    raise WireFormatError(f"unknown wire codec {codec!r}; choose from {WIRE_CODECS}")


#: Fixed prefix of every binary request body: magic, 5-tuple header, "req".
_BINARY_REQ_PREFIX = bytes(
    (BINARY_MAGIC, _T_TUPLE)
) + _STRUCT_I.pack(5) + bytes((_T_STR,)) + _STRUCT_I.pack(3) + b"req"

#: The traced variant: magic, 6-tuple header, "req" — the sixth element is
#: the 64-bit trace id of the client-side quorum trace this RPC belongs to.
_BINARY_REQ6_PREFIX = bytes(
    (BINARY_MAGIC, _T_TUPLE)
) + _STRUCT_I.pack(6) + bytes((_T_STR,)) + _STRUCT_I.pack(3) + b"req"


def encode_request_frame(
    request_id: int, server: int, tail, trace_id: Optional[int] = None
) -> bytes:
    """One request frame from a pre-serialised :func:`request_tail`.

    Byte-identical to ``encode_frame(("req", request_id, server, method,
    args), codec)`` for the codec the tail was built with (the tail's type
    identifies it) — the wire tests pin the equivalence down.  With a
    ``trace_id`` the envelope grows a sixth element (byte-identical to
    encoding the 6-tuple); only send it on connections that negotiated the
    trace extension — an un-instrumented peer rejects 6-tuples.
    """
    if isinstance(tail, str):
        if trace_id is None:
            body = (
                '{"t":["req",%d,%d,%s]}' % (request_id, server, tail)
            ).encode("utf-8")
        else:
            body = (
                '{"t":["req",%d,%d,%s,%d]}' % (request_id, server, tail, trace_id)
            ).encode("utf-8")
    else:
        out = bytearray(
            _BINARY_REQ_PREFIX if trace_id is None else _BINARY_REQ6_PREFIX
        )
        _pack_int(request_id, out)
        _pack_int(server, out)
        out += tail
        if trace_id is not None:
            _pack_int(trace_id, out)
        body = bytes(out)
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(body).to_bytes(_PREFIX_BYTES, "big") + body


#: Fixed prefix of every binary response body: magic, 3-tuple header, "rsp".
_BINARY_RSP_PREFIX = bytes(
    (BINARY_MAGIC, _T_TUPLE)
) + _STRUCT_I.pack(3) + bytes((_T_STR,)) + _STRUCT_I.pack(3) + b"rsp"


def encode_response_frame(request_id: int, payload: Any, codec: str = "json") -> bytes:
    """One response frame; byte-identical to ``encode_frame(("rsp", ...))``.

    The response envelope is as fixed as the request one, so the binary
    path glues a precomputed prefix instead of packing the outer tuple —
    this is the server's per-request hot path.
    """
    if codec != "binary":
        return encode_frame(("rsp", request_id, payload), codec)
    out = bytearray(_BINARY_RSP_PREFIX)
    _pack_int(request_id, out)
    _pack_binary(payload, out)
    if len(out) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(out)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(out).to_bytes(_PREFIX_BYTES, "big") + bytes(out)


def decode_binary_request_body(body: bytes) -> Any:
    """:func:`decode_binary_body`, fast-pathing the canonical request shape.

    Bodies produced by :func:`encode_request_frame` open with a fixed
    14-byte envelope prefix; recognising it skips the generic tag dispatch
    for the envelope (the server decodes one of these per RPC).  Anything
    else — including a malformed lookalike — falls back to the generic
    decoder, so error behaviour is unchanged.
    """
    if body.startswith(_BINARY_REQ_PREFIX):
        try:
            if body[14] == _T_INT and body[23] == _T_INT:
                request_id = _STRUCT_Q.unpack_from(body, 15)[0]
                server = _STRUCT_Q.unpack_from(body, 24)[0]
                method, offset = _unpack_binary(body, 32)
                args, offset = _unpack_binary(body, offset)
                if offset == len(body) and type(method) is str and type(args) is tuple:
                    return ("req", request_id, server, method, args)
        except Exception:
            pass
    elif body.startswith(_BINARY_REQ6_PREFIX):
        # The traced envelope shares the 5-tuple layout plus a trailing
        # trace-id int; same fixed offsets, one extra field.
        try:
            if body[14] == _T_INT and body[23] == _T_INT:
                request_id = _STRUCT_Q.unpack_from(body, 15)[0]
                server = _STRUCT_Q.unpack_from(body, 24)[0]
                method, offset = _unpack_binary(body, 32)
                args, offset = _unpack_binary(body, offset)
                trace_id, offset = _unpack_binary(body, offset)
                if (
                    offset == len(body)
                    and type(method) is str
                    and type(args) is tuple
                    and type(trace_id) is int
                ):
                    return ("req", request_id, server, method, args, trace_id)
        except Exception:
            pass
    return decode_binary_body(body)


def decode_binary_response_body(body: bytes) -> Any:
    """:func:`decode_binary_body`, fast-pathing the canonical response shape.

    The client-side mirror of :func:`decode_binary_request_body`: one
    response envelope per RPC reply.
    """
    if body.startswith(_BINARY_RSP_PREFIX):
        try:
            if body[14] == _T_INT:
                request_id = _STRUCT_Q.unpack_from(body, 15)[0]
                payload, offset = _unpack_binary(body, 23)
                if offset == len(body):
                    return ("rsp", request_id, payload)
        except Exception:
            pass
    return decode_binary_body(body)


# -- codec negotiation -------------------------------------------------------------

#: Capability token a tracing client appends to its offered-codec list.  It
#: is not a codec: :func:`choose_codec` skips names outside ``supported``,
#: so an un-instrumented server silently ignores the token and negotiation
#: degrades to plain frames — exactly the backward-compatibility story the
#: hello exchange already has for unknown codecs.
TRACE_TOKEN = "trace"

#: Suffix a trace-aware server appends to its chosen-codec reply when (and
#: only when) the client offered :data:`TRACE_TOKEN`.
TRACE_SUFFIX = "+trace"


def offer_codecs(codecs: Sequence[str], trace: bool = False) -> List[str]:
    """The offered-codec list for a hello, with the trace token if asked."""
    offered = list(codecs)
    if trace:
        offered.append(TRACE_TOKEN)
    return offered


def hello_offers_trace(offered: Any) -> bool:
    """Whether a hello's offered list carries the trace capability token."""
    return isinstance(offered, (list, tuple)) and TRACE_TOKEN in offered


def split_negotiated(chosen: Any) -> Tuple[Any, bool]:
    """Split a hello reply into ``(codec, traced)``.

    ``"binary+trace"`` → ``("binary", True)``; anything without the suffix
    (including the replies of pre-trace servers) passes through untraced.
    """
    if isinstance(chosen, str) and chosen.endswith(TRACE_SUFFIX):
        return chosen[: -len(TRACE_SUFFIX)], True
    return chosen, False


def join_negotiated(codec: str, traced: bool) -> str:
    """The server's reply spelling: the codec, suffixed when tracing."""
    return codec + TRACE_SUFFIX if traced else codec


def hello_frame(codecs: Sequence[str]) -> bytes:
    """The negotiation opener: ``("hello", [codec, ...])``, always JSON."""
    return encode_frame(("hello", list(codecs)), codec="json")


def hello_reply_frame(chosen: str) -> bytes:
    """The server's answer: ``("hello", chosen)``, always JSON."""
    return encode_frame(("hello", str(chosen)), codec="json")


def parse_hello(frame: Any) -> Optional[Any]:
    """The hello payload (offered list or chosen name), or ``None``.

    Request frames are 5-tuples and response frames 3-tuples, so a 2-tuple
    opening with ``"hello"`` is unambiguously a negotiation frame.
    """
    if isinstance(frame, tuple) and len(frame) == 2 and frame[0] == "hello":
        return frame[1]
    return None


def choose_codec(offered: Any, supported: Sequence[str]) -> str:
    """The first offered codec the receiver supports; JSON as the fallback."""
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if name in supported:
                return str(name)
    return "json"


class FrameDecoder:
    """Incremental frame decoder, resilient to arbitrary chunk boundaries.

    :meth:`feed` accepts whatever the socket read produced and returns the
    payloads of every frame *completed* by that chunk (possibly none,
    possibly several); partial frames stay buffered until their remaining
    bytes arrive.  Each frame self-identifies its codec — a body opening
    with :data:`BINARY_MAGIC` is binary, anything else is JSON — so one
    decoder handles mid-stream codec switches (e.g. the JSON hello exchange
    preceding binary traffic).  The decoder is stateful per connection —
    use one instance per stream.
    """

    def __init__(
        self,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        decode_binary: Optional[Callable[[bytes], Any]] = None,
    ) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = int(max_frame_bytes)
        #: How binary bodies decode; callers on a known hot path may install
        #: a specialised decoder (e.g. :func:`decode_binary_request_body`)
        #: that falls back to :func:`decode_binary_body` on anything else.
        self._decode_binary = decode_binary or decode_binary_body
        #: Frames decoded so far (tests and server stats).
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Any]:
        """Buffer ``data``; return the payloads of every completed frame."""
        buffer = self._buffer
        buffer += data
        payloads: List[Any] = []
        # Walk the buffer with an offset and compact once at the end: a
        # chunk carrying many small frames costs one left-shift, not one
        # per frame.
        offset = 0
        available = len(buffer)
        while available - offset >= _PREFIX_BYTES:
            length = int.from_bytes(buffer[offset : offset + _PREFIX_BYTES], "big")
            if length > self._max_frame_bytes:
                raise WireFormatError(
                    f"incoming frame claims {length} bytes, beyond the "
                    f"{self._max_frame_bytes}-byte cap"
                )
            end = offset + _PREFIX_BYTES + length
            if available < end:
                break
            body = bytes(buffer[offset + _PREFIX_BYTES : end])
            offset = end
            if body and body[0] == BINARY_MAGIC:
                payloads.append(self._decode_binary(body))
            else:
                try:
                    payloads.append(unpack_value(json.loads(body.decode("utf-8"))))
                except WireFormatError:
                    raise
                except ValueError as error:
                    raise WireFormatError(f"undecodable frame body: {error}") from error
            self.frames_decoded += 1
        if offset:
            del buffer[:offset]
        return payloads
