"""The socket transport's wire format: length-prefixed, type-tagged JSON frames.

The TCP transport (:mod:`repro.service.net`) moves the *same* RPC payloads
the in-process paths pass by reference — method names, register keys,
arbitrary written values, :class:`~repro.protocol.timestamps.Timestamp`
objects (honest and forged), signature bytes and
:class:`~repro.simulation.server.StoredValue` replies — so the codec must be
a bijection on that whole value space, not just on JSON's native one.  Every
container and protocol object is therefore packed behind a one-key tag
object before serialisation:

====  ==========================================================
tag   payload
====  ==========================================================
"b"   bytes, as base64 text
"t"   tuple, as a packed array
"d"   dict, as packed ``[key, value]`` pairs (keys need not be strings)
"ts"  ``Timestamp(counter, writer_id)``
"sv"  ``StoredValue(value, timestamp, signature)``
====  ==========================================================

Plain JSON scalars and lists pass through untouched; plain dicts never
appear raw on the wire (they are always tagged), which is what makes the
tag objects unambiguous.  ``encode(decode(x)) == x`` for every supported
payload — the hypothesis suite in ``tests/service/test_wire.py`` pins the
round trip down, including adversarially large and empty values.

A frame is a 4-byte big-endian length prefix followed by the UTF-8 JSON
body.  :class:`FrameDecoder` is an *incremental* decoder: feed it whatever
chunks the socket produced — single bytes, frame fragments, several frames
glued together — and it yields each complete payload exactly once, holding
partial frames until the rest arrives.  Frames beyond
:data:`MAX_FRAME_BYTES` raise :class:`~repro.exceptions.WireFormatError`
*before* the body is buffered, bounding the memory a malformed (or hostile)
peer can pin.
"""

from __future__ import annotations

import base64
import json
from typing import Any, List

from repro.exceptions import WireFormatError
from repro.protocol.timestamps import Timestamp
from repro.simulation.server import StoredValue

#: Hard cap on one frame's body size (prefix excluded).  Large enough for
#: any realistic register value, small enough that a corrupt length prefix
#: cannot make the decoder buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Length-prefix width in bytes (big-endian, unsigned).
_PREFIX_BYTES = 4

_SCALARS = (bool, int, float, str)


def pack_value(value: Any) -> Any:
    """Lower one payload to JSON-serialisable form (see the tag table)."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, bytes):
        return {"b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"t": [pack_value(item) for item in value]}
    if isinstance(value, list):
        return [pack_value(item) for item in value]
    if isinstance(value, dict):
        return {"d": [[pack_value(key), pack_value(item)] for key, item in value.items()]}
    if isinstance(value, Timestamp):
        return {"ts": [value.counter, value.writer_id]}
    if isinstance(value, StoredValue):
        return {
            "sv": [
                pack_value(value.value),
                pack_value(value.timestamp),
                pack_value(value.signature),
            ]
        }
    raise WireFormatError(
        f"cannot serialise {type(value).__name__!r} for the socket transport"
    )


def unpack_value(packed: Any) -> Any:
    """Invert :func:`pack_value`; raise on unknown or malformed tags."""
    if packed is None or isinstance(packed, _SCALARS):
        return packed
    if isinstance(packed, list):
        return [unpack_value(item) for item in packed]
    if isinstance(packed, dict):
        if len(packed) != 1:
            raise WireFormatError(f"malformed wire tag object: {sorted(packed)!r}")
        tag, body = next(iter(packed.items()))
        try:
            if tag == "b":
                return base64.b64decode(body.encode("ascii"), validate=True)
            if tag == "t":
                return tuple(unpack_value(item) for item in body)
            if tag == "d":
                return {unpack_value(key): unpack_value(item) for key, item in body}
            if tag == "ts":
                counter, writer_id = body
                return Timestamp(int(counter), int(writer_id))
            if tag == "sv":
                value, timestamp, signature = body
                return StoredValue(
                    value=unpack_value(value),
                    timestamp=unpack_value(timestamp),
                    signature=unpack_value(signature),
                )
        except WireFormatError:
            raise
        except Exception as error:  # malformed body under a known tag
            raise WireFormatError(f"malformed {tag!r} wire payload: {error}") from error
        raise WireFormatError(f"unknown wire tag {tag!r}")
    raise WireFormatError(f"cannot deserialise wire payload of type {type(packed).__name__!r}")


def encode_frame(payload: Any) -> bytes:
    """One payload as a length-prefixed frame, ready for a socket write."""
    body = json.dumps(pack_value(payload), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(body).to_bytes(_PREFIX_BYTES, "big") + body


def request_tail(method: str, args: tuple) -> str:
    """Pre-serialised shared suffix of a fan-out's request frames.

    A quorum fan-out sends ``q`` request frames differing only in
    ``request_id`` and ``server``; serialising the (potentially large)
    ``(method, args)`` payload once per *operation* instead of once per
    frame keeps the wire fast path linear in the payload size.  Compose
    with :func:`encode_request_frame`.
    """
    return (
        json.dumps(method)
        + ","
        + json.dumps(pack_value(tuple(args)), separators=(",", ":"))
    )


def encode_request_frame(request_id: int, server: int, tail: str) -> bytes:
    """One request frame from a pre-serialised :func:`request_tail`.

    Byte-identical to ``encode_frame(("req", request_id, server, method,
    args))`` — the wire tests pin the equivalence down.
    """
    body = ('{"t":["req",%d,%d,%s]}' % (request_id, server, tail)).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(body).to_bytes(_PREFIX_BYTES, "big") + body


class FrameDecoder:
    """Incremental frame decoder, resilient to arbitrary chunk boundaries.

    :meth:`feed` accepts whatever the socket read produced and returns the
    payloads of every frame *completed* by that chunk (possibly none,
    possibly several); partial frames stay buffered until their remaining
    bytes arrive.  The decoder is stateful per connection — use one instance
    per stream.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = int(max_frame_bytes)
        #: Frames decoded so far (tests and server stats).
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Any]:
        """Buffer ``data``; return the payloads of every completed frame."""
        buffer = self._buffer
        buffer += data
        payloads: List[Any] = []
        while True:
            if len(buffer) < _PREFIX_BYTES:
                break
            length = int.from_bytes(buffer[:_PREFIX_BYTES], "big")
            if length > self._max_frame_bytes:
                raise WireFormatError(
                    f"incoming frame claims {length} bytes, beyond the "
                    f"{self._max_frame_bytes}-byte cap"
                )
            end = _PREFIX_BYTES + length
            if len(buffer) < end:
                break
            body = bytes(buffer[_PREFIX_BYTES:end])
            del buffer[:end]
            try:
                payloads.append(unpack_value(json.loads(body.decode("utf-8"))))
            except WireFormatError:
                raise
            except ValueError as error:
                raise WireFormatError(f"undecodable frame body: {error}") from error
            self.frames_decoded += 1
        return payloads
