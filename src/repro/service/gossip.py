"""Background anti-entropy gossip for live service deployments.

Section 1.1 observes that a probabilistic quorum system "can be strengthened
by a properly designed diffusion mechanism" propagating updates lazily,
outside the critical path of client operations.  The simulation layer
implements that mechanism as :class:`~repro.simulation.diffusion.
DiffusionEngine`; this module promotes the *same engine* to a per-shard
asyncio task so the live service layers (in-process, TCP, sharded and
cluster deployments) run push anti-entropy in the background while client
load is in flight:

* :class:`NodeClusterView` — a duck-typed cluster facade over a replica
  group's :class:`~repro.service.node.ServiceNode` objects, so the
  diffusion engine gossips over the very replicas the deployment serves
  (crashed nodes stay silent, Byzantine pushes are rejected exactly as in
  the simulation);
* :func:`scenario_verifier` — the verifiability rule a scenario's register
  kind implies: dissemination scenarios re-verify every gossip payload
  under the scenario's signature scheme, so a Byzantine replica cannot
  poison the diffusion;
* :class:`GossipService` — the background task: every ``interval``
  event-loop seconds it runs ``rounds`` gossip rounds at the configured
  fanout, counting rounds and adoptions for the metrics registry.

The point of running freshness in the background is measured by the load
harness: with gossip (and piggybacked read-repair) on, the probe-fallback
round that dominates read tail latency under churn almost never fires.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, List, Optional, Sequence, Set

from repro.obs.metrics import MetricsRegistry
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.service.node import ServiceNode
from repro.simulation.diffusion import DiffusionEngine, Verifier
from repro.types import ServerId

#: XOR'd into a shard's transport seed to derive its gossip RNG: the gossip
#: peer-selection stream must never alias the transport's drop/delay stream.
GOSSIP_SEED_SALT = 0x60551B


class NodeClusterView:
    """Duck-typed cluster facade over a replica group's service nodes.

    :class:`~repro.simulation.diffusion.DiffusionEngine` gossips over a
    cluster-shaped object (``n``, ``servers``, ``server(id)``,
    ``correct_servers()``); this view exposes exactly that surface over the
    live :class:`~repro.service.node.ServiceNode` list a deployment owns,
    so gossip observes live fault injection the instant it happens — a node
    crashed mid-run stops pushing and receiving on the next round.
    """

    __slots__ = ("_nodes",)

    def __init__(self, nodes: Sequence[ServiceNode]) -> None:
        self._nodes = list(nodes)

    @property
    def n(self) -> int:
        return len(self._nodes)

    @property
    def servers(self) -> List[Any]:
        return [node.server for node in self._nodes]

    def server(self, server_id: ServerId) -> Any:
        return self._nodes[server_id].server

    def correct_servers(self) -> Set[ServerId]:
        return {
            node.server_id
            for node in self._nodes
            if not (node.server.is_crashed or node.server.is_byzantine)
        }


def scenario_verifier(scenario: Any) -> Optional[Verifier]:
    """The gossip payload verifier a scenario's register kind implies.

    Dissemination scenarios (self-verifying data) re-verify every pushed
    record under the scenario's signature scheme before adoption — the same
    rule the read path applies to replies — so Byzantine pushes are never
    adopted.  Benign and masking kinds return ``None``: the former has no
    signatures, and the latter's defence is vote counting at *read* time
    (gossip adoption of a forged record is exactly the storage state the
    masking threshold is sized to out-vote).
    """
    if scenario.resolved_register_kind() != "dissemination":
        return None
    scheme = SignatureScheme(scenario.signing_key)

    def verify(variable: str, stored: Any) -> bool:
        return isinstance(stored.timestamp, Timestamp) and scheme.verify(
            variable, stored.value, stored.timestamp, stored.signature
        )

    return verify


class GossipService:
    """One shard's background push anti-entropy task.

    Parameters
    ----------
    nodes:
        The shard's replica nodes (gossip runs server-side, over the same
        objects the deployment serves requests from).
    anti_entropy:
        The :class:`~repro.simulation.scenario.AntiEntropySpec` describing
        fanout, rounds per tick and the tick interval.
    rng:
        Peer-selection randomness (deterministic for a fixed seed).
    verify:
        Optional payload verifier (see :func:`scenario_verifier`).
    """

    def __init__(
        self,
        nodes: Sequence[ServiceNode],
        anti_entropy: Any,
        rng: Optional[random.Random] = None,
        verify: Optional[Verifier] = None,
    ) -> None:
        self.anti_entropy = anti_entropy
        self.engine = DiffusionEngine(
            NodeClusterView(nodes),
            fanout=anti_entropy.fanout,
            verify=verify,
            rng=rng,
        )
        self._task: Optional[asyncio.Task] = None
        #: Gossip rounds run so far (the ``gossip_rounds`` metric).
        self.gossip_rounds = 0
        #: Replica copies a gossip push moved forward.
        self.adoptions = 0

    @property
    def running(self) -> bool:
        """Whether the background task is currently scheduled."""
        return self._task is not None

    def run_once(self) -> int:
        """Run one tick's worth of gossip rounds synchronously.

        The background task calls this on its interval; tests call it
        directly to drive gossip deterministically without sleeping.
        """
        adopted = self.engine.run_rounds(self.anti_entropy.rounds)
        self.gossip_rounds += self.anti_entropy.rounds
        self.adoptions += adopted
        return adopted

    async def _run(self) -> None:
        interval = self.anti_entropy.interval
        while True:
            await asyncio.sleep(interval)
            self.run_once()

    def start(self) -> None:
        """Arm the background task on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def aclose(self) -> None:
        """Cancel the background task and wait it out (idempotent)."""
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    def metrics_snapshot(self, labels: Optional[dict] = None) -> dict:
        """This gossip task's counters as a mergeable registry snapshot."""
        registry = MetricsRegistry(
            labels={"component": "gossip", **(labels or {})}
        )
        registry.counter("gossip_rounds").inc(self.gossip_rounds)
        registry.counter("gossip_adoptions").inc(self.adoptions)
        registry.counter("gossip_messages_pushed").inc(self.engine.messages_pushed)
        return registry.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"GossipService(fanout={self.engine.fanout}, "
            f"rounds_run={self.gossip_rounds}, adoptions={self.adoptions})"
        )
