"""The service load harness: N concurrent clients under live fault injection.

:class:`ServiceLoadSpec` mirrors the declarative
:class:`~repro.simulation.scenario.ScenarioSpec` one level up: it pairs a
scenario (quorum system + failure model + register kind) with a *service*
workload — how many concurrent reader clients, how many writes, which
transport (``"inproc"`` shared-memory or ``"tcp"`` localhost sockets) and
conditions (latency / jitter / drops), the per-RPC deadline, how many
independent shards the deployment runs and how many register keys the
workload spreads over (optionally zipf-skewed), and a rolling
crash/recovery schedule injected while requests are in flight.

:func:`run_service_load` deploys the scenario through
:class:`~repro.service.sharding.ShardedDeployment` — each shard an
independent replica group + transport + dispatcher — drives ``writers``
concurrent writers (each under its own writer identity, so contending
timestamps tie-break by writer id exactly as in the Monte-Carlo engines)
and ``clients`` concurrent readers through per-shard
:class:`~repro.service.client.AsyncQuorumClient` instances, and reports
throughput (aggregate and per shard), latency percentiles and — via the
shared classifier of :mod:`repro.protocol.classification` — the same
fresh/stale/empty/fabricated outcome counts the Monte-Carlo engines
produce.  ``fabricated`` outcomes are the report's *safety violations*:
values that were never written being accepted by a reader.

Unlike the trial engines, reads here genuinely overlap writes, and the
theorems say nothing about a read concurrent with a write.  The harness
therefore classifies each read against the last write *completed before the
read started* on the same key and re-labels as fresh any "fabricated"
outcome that is in fact a concurrent honest write (its value/timestamp pair
appears in that key's issued history).  What remains fabricated is a true
violation on any interleaving.

Simulated time vs wall clock: with ``transport="inproc"`` every delay and
deadline is event-loop time over simulated message passing, so a run is
deterministic for a fixed seed; with ``transport="tcp"`` the frames cross
real localhost sockets and deadlines bound wall-clock time, so scheduling
noise is part of the measurement (the conformance suite checks the
*classification rates* still agree between the two).
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from collections import deque

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError, QuorumUnavailableError
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import EpsilonMonitor
from repro.obs.trace import Tracer
from repro.protocol.classification import OUTCOME_LABELS, classify_read_outcome
from repro.protocol.variable import ReadOutcome, WriteOutcome
from repro.service.client import (
    DEFAULT_QUORUM_POOL,
    SELECTION_MODES,
    UNSET,
    resolve_deprecated_alias,
)
from repro.service.dispatch import DISPATCH_MODES
from repro.service.sharding import TRANSPORT_MODES, ShardedDeployment, shard_for_key
from repro.service.wire import WIRE_CODECS
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

try:  # pragma: no cover - exercised only where the optional extra is installed
    import uvloop as _uvloop
except ImportError:  # the `fast` extra is optional; plain asyncio is the fallback
    _uvloop = None


@dataclass(frozen=True)
class FaultInjectionSpec:
    """Rolling crash/recovery injected while the load runs.

    Every ``interval`` event-loop seconds the injector crashes one currently
    correct server (across all shards), keeping at most ``crash_count``
    injected crashes alive at once (the oldest recovers first) — a churn
    model on top of whatever static failures the scenario's failure model
    installed per shard.
    """

    crash_count: int = 0
    interval: float = 0.002

    def __post_init__(self) -> None:
        if self.crash_count < 0:
            raise ConfigurationError(
                f"the injected crash count must be non-negative, got {self.crash_count}"
            )
        if self.interval <= 0.0:
            raise ConfigurationError(
                f"the injection interval must be positive, got {self.interval}"
            )


def key_names(keys: int) -> List[str]:
    """The register keys a ``keys``-register workload addresses.

    A single-register workload keeps the historical name ``"x"`` so
    single-key runs stay byte-compatible with earlier harness versions.
    """
    if keys == 1:
        return ["x"]
    return [f"x{index}" for index in range(keys)]


def key_weight_cdf(keys: int, skew: float) -> List[float]:
    """Cumulative selection weights over ``keys`` ranks.

    ``skew=0`` is uniform; ``skew>0`` is zipf-like (rank ``i`` drawn with
    probability proportional to ``1/(i+1)**skew``), modelling the hot-key
    traffic real multi-register deployments see.
    """
    weights = [1.0 / float(rank + 1) ** skew for rank in range(keys)]
    total = sum(weights)
    cdf: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cdf.append(running)
    cdf[-1] = 1.0  # guard the floating-point tail
    return cdf


@dataclass(frozen=True)
class ServiceLoadSpec:
    """One service load experiment, described declaratively.

    Attributes
    ----------
    scenario:
        What is deployed: system, static failure model, register kind.
    clients:
        Number of concurrent reader clients.
    reads_per_client:
        Reads each client issues back to back.
    writes:
        Writes issued in total, split round-robin over the workload's
        writers and keys (write ``v`` belongs to writer ``v % writers``).
    write_interval:
        Event-loop seconds between writes (0 = as fast as possible).
    latency, jitter, drop_probability:
        Transport conditions (see
        :class:`~repro.service.transport.AsyncTransport`; over TCP they are
        added to the real socket cost).
    deadline:
        Per-RPC deadline for every client (``None`` disables it; never
        disable it on a lossy or TCP transport).  ``rpc_timeout`` is the
        deprecated pre-facade spelling of the same knob.
    fault_injection:
        Live crash/recovery churn on top of the scenario's failures.
    transport:
        ``"inproc"`` (default; simulated message passing on the current
        event loop) or ``"tcp"`` (localhost socket servers, one per shard,
        length-prefixed frames, wall-clock deadlines).
    shards:
        Independent replica groups keys are hashed across (each shard runs
        its own quorum system deployment and failure plan).
    keys:
        Register keys the workload spreads over.
    key_skew:
        Zipf exponent of the readers' key distribution (0 = uniform).
    dispatch:
        ``"batched"`` (default): coalescing fast path of the active
        transport — the in-process
        :class:`~repro.service.dispatch.BatchedDispatcher`, or the op-level
        :class:`~repro.service.net.TcpDispatcher` on the wire.  ``"per-rpc"``
        is the original coroutine-per-RPC path (the semantic oracle).
    selection:
        ``"strategy"`` (default, ε-faithful) or ``"latency-aware"`` (EWMA
        bias toward fast replicas; refused when the scenario deploys
        Byzantine servers — see :mod:`repro.service.stats`).
    dispatch_window:
        Extra coalescing time per delivery event (in-process batched mode).
    quorum_pool:
        Strategy quorums pre-sampled per client per block refill
        (``0`` disables pooling).
    seed:
        Root seed: per-shard failure sampling, transport noise and every
        client's quorum sampling derive from it.
    writers:
        Concurrent writer clients, each with its own writer identity
        (``scenario.writer_id + w``), so contending timestamps tie-break
        exactly as in the Monte-Carlo engines.  ``None`` inherits the
        scenario's ``writers``.
    contention:
        Probability each write targets the hottest key (``names[0]``)
        instead of its round-robin key — the knob that makes concurrent
        writers actually collide on one register.
    """

    scenario: ScenarioSpec
    clients: int = 100
    reads_per_client: int = 5
    writes: int = 10
    write_interval: float = 0.0
    latency: float = 0.0
    jitter: float = 0.0
    drop_probability: float = 0.0
    deadline: Optional[float] = 0.05
    fault_injection: FaultInjectionSpec = field(default_factory=FaultInjectionSpec)
    transport: str = "inproc"
    shards: int = 1
    keys: int = 1
    key_skew: float = 0.0
    dispatch: str = "batched"
    selection: str = "strategy"
    dispatch_window: float = 0.0
    quorum_pool: int = DEFAULT_QUORUM_POOL
    seed: int = 0
    writers: Optional[int] = None
    contention: float = 0.0
    #: Wire codec the TCP transports prefer (``"json"`` or ``"binary"``;
    #: negotiated per connection, JSON is always the fallback).
    codec: str = "json"
    #: ``0`` (default) keeps everything on the caller's event loop; ``> 0``
    #: deploys via :class:`~repro.service.cluster.ClusterDeployment` (one
    #: server process per shard) and splits the load over this many worker
    #: processes (``1`` = cluster servers, load driven in the parent).
    processes: int = 0
    #: Fraction of quorum operations that assemble a full
    #: :class:`~repro.obs.trace.QuorumTrace` (``0.0``, the default, keeps
    #: every tracing branch off the hot path; ``1.0`` traces everything).
    #: The tracer draws from its own salted RNG stream, so any rate leaves
    #: the workload's classification counters byte-identical to untraced.
    trace_sample: float = 0.0
    #: Run the online :class:`~repro.obs.monitor.EpsilonMonitor` over the
    #: classified read stream, attaching its alerts to the report.
    monitor_epsilon: bool = False
    #: Anti-entropy for the deployment: an
    #: :class:`~repro.simulation.scenario.AntiEntropySpec` arms piggybacked
    #: read-repair (``repair_budget``) on every client and, when the spec
    #: gossips, a background gossip task per shard.  ``None`` (the default)
    #: inherits the scenario's ``anti_entropy`` — so a scenario that
    #: declares diffusion keeps it under load, and everything stays off
    #: when neither declares it.
    anti_entropy: Optional[AntiEntropySpec] = None
    #: Deprecated alias for ``deadline`` (the pre-facade spelling).
    rpc_timeout: Optional[float] = UNSET  # type: ignore[assignment]

    def __post_init__(self) -> None:
        deadline = resolve_deprecated_alias(
            self.deadline, self.rpc_timeout, "deadline", "rpc_timeout"
        )
        # Keep both spellings readable after normalisation (the frozen
        # dataclass needs object.__setattr__): new code reads ``deadline``,
        # pre-facade callers keep reading ``rpc_timeout``.
        object.__setattr__(self, "deadline", deadline)
        object.__setattr__(self, "rpc_timeout", deadline)
        if not isinstance(self.scenario, ScenarioSpec):
            raise ConfigurationError(
                f"a service load is described over a ScenarioSpec, "
                f"got {type(self.scenario).__name__}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"need at least one client, got {self.clients}")
        if self.reads_per_client < 1:
            raise ConfigurationError(
                f"each client needs at least one read, got {self.reads_per_client}"
            )
        if self.writes < 1:
            raise ConfigurationError(f"need at least one write, got {self.writes}")
        if self.write_interval < 0.0:
            raise ConfigurationError(
                f"the write interval must be non-negative, got {self.write_interval}"
            )
        if self.transport not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORT_MODES}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"need at least one shard, got {self.shards}")
        if self.keys < 1:
            raise ConfigurationError(f"need at least one register key, got {self.keys}")
        if self.shards > self.keys:
            raise ConfigurationError(
                f"{self.shards} shards with only {self.keys} register keys "
                f"leaves shards provably idle; use shards <= keys"
            )
        if self.key_skew < 0.0:
            raise ConfigurationError(
                f"the key skew must be non-negative, got {self.key_skew}"
            )
        if self.transport == "tcp" and self.deadline is None:
            raise ConfigurationError(
                "deadline=None is refused over transport='tcp': a silent "
                "replica sends no response frame, so without a deadline the "
                "caller would block forever (in-process, the simulated "
                "transport knows the fate and raises; the wire cannot)"
            )
        if self.writers is not None and self.writers < 1:
            raise ConfigurationError(
                f"need at least one writer, got {self.writers}"
            )
        if not 0.0 <= self.contention <= 1.0:
            raise ConfigurationError(
                f"contention is a probability in [0, 1], got {self.contention}"
            )
        if self.dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown dispatch mode {self.dispatch!r}; choose from {DISPATCH_MODES}"
            )
        if self.selection not in SELECTION_MODES:
            raise ConfigurationError(
                f"unknown selection mode {self.selection!r}; choose from {SELECTION_MODES}"
            )
        if self.dispatch_window < 0.0:
            raise ConfigurationError(
                f"the dispatch window must be non-negative, got {self.dispatch_window}"
            )
        if self.quorum_pool < 0:
            raise ConfigurationError(
                f"the quorum pool size must be non-negative, got {self.quorum_pool}"
            )
        if self.codec not in WIRE_CODECS:
            raise ConfigurationError(
                f"unknown wire codec {self.codec!r}; choose from {WIRE_CODECS}"
            )
        if self.codec != "json" and self.transport != "tcp":
            raise ConfigurationError(
                "codec applies to the wire: transport='inproc' passes payloads "
                "by reference, so codec='json' is the only valid spelling there"
            )
        if self.processes < 0:
            raise ConfigurationError(
                f"the process count must be non-negative, got {self.processes}"
            )
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigurationError(
                f"the trace sampling rate is a probability in [0, 1], "
                f"got {self.trace_sample}"
            )
        if self.anti_entropy is not None and not isinstance(
            self.anti_entropy, AntiEntropySpec
        ):
            raise ConfigurationError(
                f"anti_entropy is described by an AntiEntropySpec, "
                f"got {type(self.anti_entropy).__name__}"
            )
        resolved_anti_entropy = self.resolved_anti_entropy
        if (
            resolved_anti_entropy is not None
            and resolved_anti_entropy.fanout >= self.scenario.n
        ):
            raise ConfigurationError(
                f"anti-entropy fanout {resolved_anti_entropy.fanout} must be "
                f"smaller than the replica group size {self.scenario.n}"
            )
        if self.processes > 0:
            if self.transport != "tcp":
                raise ConfigurationError(
                    "processes > 0 deploys one server process per shard, which "
                    "only makes sense over transport='tcp' (in-process nodes "
                    "cannot cross a process boundary)"
                )
            if self.fault_injection.crash_count > 0:
                raise ConfigurationError(
                    "live fault injection needs in-process node objects; with "
                    "processes > 0 the servers live in their own processes, so "
                    "use the scenario's static failure model instead"
                )
            if self.contention > 0.0:
                raise ConfigurationError(
                    "contention redirects writes to the hottest key, but the "
                    "multi-process load partitions writers by key; contention "
                    "requires processes=0"
                )
            if self.processes > self.keys:
                raise ConfigurationError(
                    f"{self.processes} load processes over {self.keys} register "
                    f"keys leaves workers provably idle; use processes <= keys"
                )
            if self.processes > self.clients:
                raise ConfigurationError(
                    f"{self.processes} load processes need at least that many "
                    f"reader clients, got {self.clients}"
                )
        if (
            self.selection == "latency-aware"
            and self.scenario.failure_model.byzantine_count > 0
        ):
            raise ConfigurationError(
                "latency-aware selection is refused for Byzantine scenarios: the "
                "ε accounting (Lemma 5.7's |Q ∩ B| bound) holds only for "
                "strategy-drawn quorums, so a biased quorum voids the very "
                "guarantee the scenario is deployed to measure; use "
                "selection='strategy'"
            )

    @property
    def total_ops(self) -> int:
        """Operations the workload issues in total."""
        return self.clients * self.reads_per_client + self.writes

    @property
    def resolved_writers(self) -> int:
        """The effective writer count (the spec's, else the scenario's)."""
        return self.scenario.writers if self.writers is None else self.writers

    @property
    def resolved_anti_entropy(self) -> Optional[AntiEntropySpec]:
        """The effective anti-entropy spec (the spec's, else the scenario's)."""
        if self.anti_entropy is not None:
            return self.anti_entropy
        return self.scenario.anti_entropy

    def describe(self) -> str:
        """One-line summary used in reports."""
        extras = ""
        if self.transport != "inproc" or self.shards > 1 or self.keys > 1:
            extras = (
                f", transport={self.transport}, shards={self.shards}, "
                f"keys={self.keys}"
            )
            if self.key_skew:
                extras += f", key_skew={self.key_skew}"
        if self.codec != "json":
            extras += f", codec={self.codec}"
        if self.processes:
            extras += f", processes={self.processes}"
        if self.resolved_writers > 1:
            extras += f", writers={self.resolved_writers}"
        if self.contention:
            extras += f", contention={self.contention}"
        if self.trace_sample:
            extras += f", trace_sample={self.trace_sample}"
        if self.monitor_epsilon:
            extras += ", monitor_epsilon=True"
        if self.resolved_anti_entropy is not None:
            extras += f", anti_entropy={self.resolved_anti_entropy.describe()}"
        return (
            f"ServiceLoadSpec({self.scenario.describe()}, clients={self.clients}, "
            f"reads/client={self.reads_per_client}, writes={self.writes}, "
            f"dispatch={self.dispatch}, selection={self.selection}, "
            f"latency={self.latency}, drop={self.drop_probability}, "
            f"injected_crashes={self.fault_injection.crash_count}{extras})"
        )


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class ServiceLoadReport:
    """What the harness measured: throughput, latency and safety."""

    spec: ServiceLoadSpec
    elapsed: float
    reads_completed: int
    writes_completed: int
    write_failures: int
    outcomes: Dict[str, int]
    read_latencies: List[float]
    write_latencies: List[float]
    rpc_calls: int
    rpc_dropped: int
    rpc_timeouts: int
    probe_fallbacks: int
    injected_crashes: int
    #: Delivery events the in-process batched dispatcher fired (0 on the
    #: per-RPC and TCP paths); coalescing quality is roughly
    #: ``rpc_calls / dispatch_flushes``.
    dispatch_flushes: int = 0
    #: Read-repair payloads piggybacked on already-scheduled deliveries
    #: (0 unless the run's anti-entropy spec grants a repair budget).
    repairs_piggybacked: int = 0
    #: Background gossip rounds the deployment ran while the load was in
    #: flight (0 unless the anti-entropy spec gossips).
    gossip_rounds: int = 0
    #: Which event loop drove the run ("asyncio", or "uvloop" via the
    #: optional ``repro[fast]`` extra).  A multi-process merge keeps the
    #: single value when every worker agrees and the per-worker list when
    #: they differ (never silently the first worker's value).
    loop_driver: Any = "asyncio"
    #: Which transport carried the RPCs ("inproc" or "tcp").
    transport: str = "inproc"
    #: Completed operations routed to each shard (length ``spec.shards``).
    shard_ops: List[int] = field(default_factory=list)
    #: Wire codec the run's transports preferred ("json"/"binary"); merged
    #: across workers with the same list-when-differing rule as
    #: ``loop_driver``.
    codec: Any = "json"
    #: Sampled :class:`~repro.obs.trace.QuorumTrace` dicts (empty unless
    #: ``spec.trace_sample > 0``).
    traces: List[dict] = field(default_factory=list)
    #: Picklable metric snapshots (client side, plus one per shard server);
    #: merge with :func:`repro.obs.metrics.merge_snapshots`.
    metrics: List[dict] = field(default_factory=list)
    #: Alerts the online ε-monitor raised (empty unless
    #: ``spec.monitor_epsilon``).
    epsilon_alerts: List[dict] = field(default_factory=list)
    #: The ε-monitor's closing summary (``None`` unless enabled).
    epsilon_monitor: Optional[dict] = None

    @property
    def operations(self) -> int:
        """Completed operations (reads + writes)."""
        return self.reads_completed + self.writes_completed

    @property
    def throughput(self) -> float:
        """Completed operations per wall-clock second."""
        return self.operations / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def per_shard_throughput(self) -> List[float]:
        """Completed operations per second, split by owning shard."""
        if self.elapsed <= 0:
            return [0.0 for _ in self.shard_ops]
        return [ops / self.elapsed for ops in self.shard_ops]

    @property
    def shard_imbalance(self) -> float:
        """Hottest-to-coldest shard ratio of completed operations.

        ``1.0`` is perfectly even; ``inf`` means some shard completed
        nothing while another did work.  Single-shard runs (and runs that
        completed nothing at all) report ``1.0`` — there is nothing to be
        imbalanced against.  Benchmark comparisons warn (never gate) on
        this: zipf-skewed keys make some imbalance expected, but a jump is
        how a routing or hot-shard regression first shows up.
        """
        if len(self.shard_ops) < 2:
            return 1.0
        hottest = max(self.shard_ops)
        coldest = min(self.shard_ops)
        if hottest == 0:
            return 1.0
        if coldest == 0:
            return math.inf
        return hottest / coldest

    @property
    def fresh_fraction(self) -> float:
        """Fraction of completed reads that returned the latest settled write."""
        if not self.reads_completed:
            return 0.0
        return self.outcomes.get("fresh", 0) / self.reads_completed

    @property
    def violations(self) -> int:
        """Fabricated-accepted reads: values never written that a read returned."""
        return self.outcomes.get("fabricated", 0)

    def read_latency(self, fraction: float) -> float:
        """A read-latency percentile in seconds (nearest rank)."""
        return _percentile(sorted(self.read_latencies), fraction)

    def render(self) -> str:
        """Plain-text report block (the ``serve`` experiment's output)."""
        reads_ms = sorted(self.read_latencies)
        lines = [
            "Service load report",
            f"  {self.spec.describe()}",
            f"  elapsed           {self.elapsed:.3f} s",
            f"  throughput        {self.throughput:,.0f} ops/s "
            f"({self.reads_completed} reads + {self.writes_completed} writes)",
        ]
        if len(self.shard_ops) > 1:
            lines.append(
                "  per-shard ops/s   "
                + "  ".join(
                    f"s{index}={throughput:,.0f}"
                    for index, throughput in enumerate(self.per_shard_throughput)
                )
                + f"  (imbalance {self.shard_imbalance:.2f}x)"
            )
        lines += [
            "  read latency      "
            + "  ".join(
                f"p{int(fraction * 100)}={_percentile(reads_ms, fraction) * 1e3:.2f}ms"
                for fraction in (0.50, 0.90, 0.99)
            )
            + (f"  max={reads_ms[-1] * 1e3:.2f}ms" if reads_ms else ""),
            "  outcomes          "
            + "  ".join(f"{label}={self.outcomes.get(label, 0)}" for label in OUTCOME_LABELS),
            f"  safety violations {self.violations} fabricated-accepted reads",
            f"  transport         {self.transport}: {self.rpc_calls} rpcs, "
            f"{self.rpc_dropped} dropped, {self.rpc_timeouts} timed out"
            + (
                f", {self.dispatch_flushes} coalesced deliveries"
                if self.dispatch_flushes
                else ""
            ),
            f"  resilience        {self.probe_fallbacks} probe fallbacks, "
            f"{self.injected_crashes} live crashes injected, "
            f"{self.write_failures} writes found no live quorum",
        ]
        if self.repairs_piggybacked or self.gossip_rounds:
            lines.append(
                f"  anti-entropy      {self.repairs_piggybacked} repairs "
                f"piggybacked, {self.gossip_rounds} gossip rounds"
            )
        if self.traces:
            lines.append(f"  tracing           {len(self.traces)} sampled traces")
        if self.epsilon_monitor is not None:
            monitor = self.epsilon_monitor
            lines.append(
                f"  ε-monitor         observed rate "
                f"{monitor['total_rate']:.4f} vs bound "
                f"{monitor['epsilon'] + monitor['slack']:.4f}: "
                f"{len(self.epsilon_alerts)} alerts"
            )
        return "\n".join(lines)


def classify_service_read(
    outcome: ReadOutcome,
    settled_write: Optional[WriteOutcome],
    history: Dict[Any, Any],
) -> str:
    """Label one service read with the shared classification rule.

    ``settled_write`` is the last write that had *completed* when the read
    started (``None`` before the first completion); ``history`` maps every
    issued write timestamp to its value (both are per register key).  The
    label is exactly
    :func:`~repro.protocol.classification.classify_read_outcome` against the
    settled write, except that an outcome matching a *concurrent* issued
    write is fresh, not fabricated — the theorems do not constrain reads
    that overlap writes, and returning the newer honest value is not a
    safety violation.
    """

    def is_issued(timestamp: Any, value: Any) -> bool:
        try:
            return timestamp in history and history[timestamp] == value
        except TypeError:  # unhashable forged timestamp: never issued
            return False

    if settled_write is None:
        if outcome.is_empty:
            return "empty"
        return "fresh" if is_issued(outcome.timestamp, outcome.value) else "fabricated"
    label = classify_read_outcome(
        outcome,
        settled_write,
        expected_value=history[settled_write.timestamp],
        check_value=True,
    )
    if label == "fabricated" and is_issued(outcome.timestamp, outcome.value):
        return "fresh"
    if label == "stale" and not is_issued(outcome.timestamp, outcome.value):
        # The shared classifier trusts any honest-*typed* timestamp below the
        # settled write, but the harness knows the full issued history: a
        # pair that was never written is a violation however old its forged
        # timestamp looks.
        return "fabricated"
    return label


async def inject_faults(
    deployment: ShardedDeployment,
    injection: FaultInjectionSpec,
    rng: random.Random,
    counters: Dict[str, int],
) -> None:
    """Rolling crash/recovery churn over a live deployment.

    Every ``injection.interval`` event-loop seconds one currently correct
    server (across all shards) crashes, keeping at most
    ``injection.crash_count`` injected crashes alive at once (the oldest
    recovers first).  Statically faulty servers are never touched — the
    scenario's failure model owns those.  Runs until cancelled; increments
    ``counters["injected"]`` per crash.  Shared by the register load
    harness and the lock-service harness in :mod:`repro.apps.mutex`.
    """
    if injection.crash_count < 1:
        return
    statically_faulty = {
        (shard.index, server)
        for shard in deployment.shards
        for server in shard.plan.faulty_servers
    }
    injected: deque = deque()
    while True:
        await asyncio.sleep(injection.interval)
        if len(injected) >= injection.crash_count:
            shard_index, server = injected.popleft()
            deployment.shards[shard_index].nodes[server].recover()
        candidates = [
            (shard.index, node.server_id)
            for shard in deployment.shards
            for node in shard.nodes
            if (shard.index, node.server_id) not in statically_faulty
            and (shard.index, node.server_id) not in injected
            and not node.server.is_crashed
        ]
        if not candidates:
            continue
        victim = rng.choice(candidates)
        deployment.shards[victim[0]].nodes[victim[1]].crash()
        injected.append(victim)
        counters["injected"] += 1


async def serve_load(spec: ServiceLoadSpec) -> ServiceLoadReport:
    """Run one service load experiment on the current event loop."""
    rng = random.Random(spec.seed)
    scenario = spec.scenario

    # -- deploy: per-shard node groups with sampled static failures ---------------
    deployment = ShardedDeployment(
        scenario,
        shards=spec.shards,
        transport=spec.transport,
        latency=spec.latency,
        jitter=spec.jitter,
        drop_probability=spec.drop_probability,
        dispatch=spec.dispatch,
        dispatch_window=spec.dispatch_window,
        # One tracker per shard (created inside the deployment): the shards
        # are independent replica groups, so latency estimates never mix.
        latency_tracking=spec.selection == "latency-aware",
        rng=rng,
        codec=spec.codec,
        anti_entropy=spec.resolved_anti_entropy,
    )
    # Installed before start(): a TCP deployment offers the trace envelope
    # extension in its connection handshakes only when a tracer exists.
    tracer = (
        Tracer(sample_rate=spec.trace_sample, seed=spec.seed)
        if spec.trace_sample > 0.0
        else None
    )
    deployment.tracer = tracer
    monitor = EpsilonMonitor.for_scenario(scenario) if spec.monitor_epsilon else None

    def make_client(writer_id: Optional[int] = None):
        return deployment.new_register_client(
            rng,
            deadline=spec.deadline,
            selection=spec.selection,
            quorum_pool=spec.quorum_pool,
            writer_id=writer_id,
        )

    writer_count = spec.resolved_writers
    try:
        # Inside the try: a partial TCP startup (one shard's bind failing
        # after others came up) must still tear every started server down.
        await deployment.start()
        writers = [
            make_client(writer_id=scenario.writer_id + index)
            for index in range(writer_count)
        ]
        readers = [make_client() for _ in range(spec.clients)]

        # -- workload: keys and their read distribution ---------------------------
        names = key_names(spec.keys)
        # Routing is stable, so hash each key once instead of per operation.
        shard_of = {name: shard_for_key(name, spec.shards) for name in names}
        if spec.keys > 1:
            cdf = key_weight_cdf(spec.keys, spec.key_skew)
            reader_rngs = [
                random.Random(rng.randrange(2**63)) for _ in range(spec.clients)
            ]
        # Drawn only when contention can redirect a write, so uncontended
        # runs keep the historical per-seed randomness stream byte for byte.
        if spec.contention > 0.0:
            writer_rngs = [
                random.Random(rng.randrange(2**63)) for _ in range(writer_count)
            ]

        # -- shared observation state ---------------------------------------------
        history: Dict[str, Dict[Any, Any]] = {name: {} for name in names}
        settled: Dict[str, Optional[WriteOutcome]] = {name: None for name in names}
        outcomes: Dict[str, int] = {label: 0 for label in OUTCOME_LABELS}
        read_latencies: List[float] = []
        write_latencies: List[float] = []
        shard_ops = [0] * spec.shards
        counters = {"reads": 0, "writes": 0, "write_failures": 0, "injected": 0}

        # A reader may legitimately observe a write the moment its RPCs fan
        # out, before the writer considers it complete — record issued pairs
        # eagerly, per key.  Writer ids are distinct, so concurrent writers
        # never collide on a timestamp key.
        for writer in writers:
            writer.on_issued = (
                lambda key, timestamp, value: history[key].__setitem__(timestamp, value)
            )

        def settle(key: str, outcome: WriteOutcome) -> None:
            # With concurrent writers the *highest timestamp* settles, not
            # the last completion: that is the value the shared selection
            # rule makes every subsequent read prefer, whichever writer's
            # RPCs happened to finish later.
            current = settled[key]
            if current is None or current.timestamp < outcome.timestamp:
                settled[key] = outcome

        async def run_writer(writer_index: int) -> None:
            writer = writers[writer_index]
            for version in range(writer_index, spec.writes, writer_count):
                key = names[version % len(names)]
                if spec.contention > 0.0:
                    if writer_rngs[writer_index].random() < spec.contention:
                        key = names[0]
                if writer_count == 1:
                    value = (scenario.workload.written_value, version)
                else:
                    value = (scenario.workload.written_value, writer_index, version)
                started = time.perf_counter()
                try:
                    outcome = await writer.write(key, value)
                except QuorumUnavailableError:
                    counters["write_failures"] += 1
                else:
                    write_latencies.append(time.perf_counter() - started)
                    settle(key, outcome)
                    counters["writes"] += 1
                    shard_ops[shard_of[key]] += 1
                if spec.write_interval:
                    await asyncio.sleep(spec.write_interval)

        async def run_reader(reader, index: int) -> None:
            for _ in range(spec.reads_per_client):
                if spec.keys == 1:
                    key = names[0]
                else:
                    key = reader_rngs[index].choices(names, cum_weights=cdf)[0]
                snapshot = settled[key]
                started = time.perf_counter()
                outcome = await reader.read(key)
                read_latencies.append(time.perf_counter() - started)
                label = classify_service_read(outcome, snapshot, history[key])
                outcomes[label] += 1
                if tracer is not None and reader.last_trace is not None:
                    # The read's trace was just finished by the client;
                    # stamping its classification afterwards keeps the hot
                    # path label-free and lets the acceptance check
                    # reconcile traces against the report's counters.
                    reader.last_trace.classification = label
                if monitor is not None:
                    monitor.observe(label)
                counters["reads"] += 1
                shard_ops[shard_of[key]] += 1

        injector = asyncio.ensure_future(
            inject_faults(deployment, spec.fault_injection, rng, counters)
        )
        started = time.perf_counter()
        try:
            await asyncio.gather(
                *(run_writer(index) for index in range(writer_count)),
                *(run_reader(reader, index) for index, reader in enumerate(readers)),
            )
        finally:
            injector.cancel()
            try:
                await injector
            except asyncio.CancelledError:
                pass
        elapsed = time.perf_counter() - started

        probe_fallbacks = sum(writer.probe_fallbacks for writer in writers) + sum(
            reader.probe_fallbacks for reader in readers
        )
        # The harness's own perf accounting rides along as one more
        # snapshot: the read-path cost (probe fallbacks) next to the
        # background cost that absorbs it (repairs, gossip rounds), plus
        # the freshness the trade bought.
        harness = MetricsRegistry(labels={"component": "load-harness"})
        harness.counter("probe_fallback_ops").inc(probe_fallbacks)
        harness.counter("repairs_piggybacked").inc(deployment.repairs_piggybacked)
        harness.counter("gossip_rounds").inc(deployment.gossip_rounds)
        harness.gauge("fresh_read_fraction").set(
            outcomes.get("fresh", 0) / counters["reads"] if counters["reads"] else 0.0
        )

        return ServiceLoadReport(
            spec=spec,
            elapsed=elapsed,
            reads_completed=counters["reads"],
            writes_completed=counters["writes"],
            write_failures=counters["write_failures"],
            outcomes=outcomes,
            read_latencies=read_latencies,
            write_latencies=write_latencies,
            rpc_calls=deployment.rpc_calls,
            rpc_dropped=deployment.rpc_dropped,
            rpc_timeouts=deployment.rpc_timeouts,
            probe_fallbacks=probe_fallbacks,
            injected_crashes=counters["injected"],
            dispatch_flushes=deployment.dispatch_flushes,
            repairs_piggybacked=deployment.repairs_piggybacked,
            gossip_rounds=deployment.gossip_rounds,
            transport=spec.transport,
            shard_ops=shard_ops,
            codec=spec.codec,
            traces=tracer.to_dicts() if tracer is not None else [],
            metrics=deployment.metrics_snapshots() + [harness.to_dict()],
            epsilon_alerts=list(monitor.alerts) if monitor is not None else [],
            epsilon_monitor=monitor.to_dict() if monitor is not None else None,
        )
    finally:
        await deployment.aclose()


def active_loop_driver() -> str:
    """Which event loop :func:`run_service_load` will drive: uvloop if the
    optional ``repro[fast]`` extra is importable, plain asyncio otherwise."""
    return "asyncio" if _uvloop is None else "uvloop"


def run_service_load(spec: ServiceLoadSpec) -> ServiceLoadReport:
    """Run one service load experiment (sync entry point).

    Uses ``uvloop`` when importable (``pip install repro[fast]``) and
    silently falls back to the stock asyncio event loop otherwise; the
    report's ``loop_driver`` records which one actually ran.

    ``spec.processes > 0`` routes to the multi-process path: servers in a
    :class:`~repro.service.cluster.ClusterDeployment` (one process per
    shard), load split over ``processes`` worker processes.
    """
    if spec.processes > 0:
        from repro.service.cluster import run_cluster_load

        # The cluster merge records each worker's actual loop driver and
        # codec (a single value when they agree, the per-worker list when
        # not) — do not overwrite its provenance here.
        return run_cluster_load(spec)
    if _uvloop is None:
        report = asyncio.run(serve_load(spec))
        report.loop_driver = "asyncio"
        return report
    loop = _uvloop.new_event_loop()
    try:
        report = loop.run_until_complete(serve_load(spec))
    finally:
        loop.close()
    report.loop_driver = "uvloop"
    return report
