"""Multi-register sharding: independent quorum deployments keyed by register.

One probabilistic quorum system bounds per-*server* load, but a single
replica group still caps aggregate throughput at what ``n`` servers can
serve.  Sharding scales the *service* horizontally the same way the paper
scales the *quorum*: register keys are hashed across ``shards`` independent
deployments — each shard its own replica group, transport, dispatcher and
per-trial failure plan, running the same quorum construction — so shard
loads grow with traffic per key range while every single read/write keeps
the exact ε/masking semantics of its shard's quorum system.  Failures do
not cross shards: a fully crashed shard takes down only the keys that hash
to it (the sharding tests pin this isolation down).

* :func:`shard_for_key` — the stable routing hash (BLAKE2b, *not* Python's
  randomised ``hash``), identical across processes and runs;
* :class:`ShardedDeployment` — builds and owns the per-shard resources for
  either transport mode (``"inproc"``: shared-memory nodes, optionally
  behind the batched dispatcher; ``"tcp"``: one
  :class:`~repro.service.net.TcpServiceServer` per shard with a
  :class:`~repro.service.net.TcpTransport` + op-level
  :class:`~repro.service.net.TcpDispatcher` in front);
* :class:`ShardedAsyncRegisterClient` — one logical client routing
  ``read(key)``/``write(key, value)`` to per-key register frontends on the
  key's shard.

The deployment is transport-symmetric on purpose: the conformance suite
runs the same scenario through both modes and asserts the classification
rates agree.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.protocol.variable import WriteOutcome
from repro.service.client import (
    DEFAULT_QUORUM_POOL,
    UNSET,
    AsyncQuorumClient,
    resolve_deprecated_alias,
)
from repro.service.dispatch import BatchedDispatcher
from repro.service.gossip import GOSSIP_SEED_SALT, GossipService, scenario_verifier
from repro.service.net import (
    RemoteNode,
    TcpDispatcher,
    TcpServiceServer,
    TcpTransport,
    remote_nodes,
)
from repro.service.node import ServiceNode
from repro.service.register import AsyncRegister, async_register_for
from repro.service.stats import EwmaLatencyTracker
from repro.service.transport import AsyncTransport
from repro.service.wire import WIRE_CODECS
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

#: The two deployment transports the service layer exposes.
TRANSPORT_MODES = ("inproc", "tcp")


def shard_for_key(key: str, shards: int) -> int:
    """The shard a register key lives on: stable, total, uniform.

    Uses BLAKE2b rather than built-in ``hash`` so routing survives process
    restarts and ``PYTHONHASHSEED`` (a key must map to the same shard from
    every client, forever).
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if shards == 1:
        return 0
    digest = hashlib.blake2b(str(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


class _Shard:
    """One shard's resources (internal holder; the deployment owns these)."""

    __slots__ = (
        "index",
        "nodes",
        "plan",
        "transport",
        "transport_seed",
        "dispatcher",
        "server",
        "client_nodes",
        "pool_generator",
        "tracker",
    )

    def __init__(self) -> None:
        self.index = 0
        self.nodes: List[ServiceNode] = []
        self.plan = None
        self.transport = None
        self.transport_seed = 0
        self.dispatcher = None
        self.server: Optional[TcpServiceServer] = None
        self.client_nodes: Sequence[Any] = ()
        self.pool_generator: Optional[np.random.Generator] = None
        self.tracker: Optional[Any] = None


class ShardedClientAPI:
    """The client-facing surface a sharded deployment hands out.

    Shared by :class:`ShardedDeployment` (servers on the current loop) and
    :class:`~repro.service.cluster.ClusterDeployment` (one server process
    per shard): both own a ``scenario``, a ``shards`` list of per-shard
    resources (transport / dispatcher / client node stubs / pool generator
    / tracker) and a ``_started`` flag, and everything clients need —
    routing, per-shard quorum clients, the logical sharded register client,
    aggregate RPC counters — derives from exactly that, so the two
    deployment shapes are interchangeable above this line.
    """

    scenario: ScenarioSpec
    shards: List["_Shard"]
    _started: bool
    #: Optional shared :class:`~repro.obs.trace.Tracer`.  Set it before
    #: creating clients and every quorum client built through this surface
    #: samples traces from it; ``None`` (the default) keeps tracing off the
    #: hot path entirely.
    tracer: Optional[Tracer] = None
    #: The deployment's :class:`~repro.simulation.scenario.AntiEntropySpec`
    #: (``None`` keeps both piggybacked read-repair and background gossip
    #: off).  Quorum clients built through this surface derive their repair
    #: budget from it.
    anti_entropy: Optional[AntiEntropySpec] = None

    @property
    def shard_count(self) -> int:
        """How many independent replica groups the deployment runs."""
        return len(self.shards)

    def shard_for(self, key: str) -> int:
        """Route a register key to its shard."""
        return shard_for_key(key, len(self.shards))

    def client_for_shard(
        self,
        shard_index: int,
        rng: Optional[random.Random] = None,
        deadline: Optional[float] = 0.05,
        selection: str = "strategy",
        quorum_pool: int = DEFAULT_QUORUM_POOL,
        client_id: Optional[str] = None,
        timeout: Optional[float] = UNSET,
    ) -> AsyncQuorumClient:
        """One quorum client bound to a single shard's replica group."""
        deadline = resolve_deprecated_alias(deadline, timeout, "deadline", "timeout")
        if not self._started:
            raise ConfigurationError(
                "start() the deployment before creating clients (TCP ports "
                "are unknown until the servers are up)"
            )
        shard = self.shards[shard_index]
        anti_entropy = self.anti_entropy
        return AsyncQuorumClient(
            self.scenario.system,
            shard.client_nodes,
            shard.transport,
            deadline=deadline,
            rng=rng,
            dispatcher=shard.dispatcher,
            selection=selection,
            tracker=shard.tracker,
            quorum_pool=quorum_pool,
            pool_generator=shard.pool_generator,
            tracer=self.tracer,
            client_id=client_id,
            shard=shard_index,
            repair_budget=(
                anti_entropy.repair_budget if anti_entropy is not None else 0
            ),
            # With anti-entropy maintaining freshness in the background, a
            # partial-but-settleable read skips the probe-fallback round.
            lazy_fallback=anti_entropy is not None,
        )

    def new_register_client(
        self,
        rng: random.Random,
        deadline: Optional[float] = 0.05,
        selection: str = "strategy",
        quorum_pool: int = DEFAULT_QUORUM_POOL,
        writer_id: Optional[int] = None,
        timeout: Optional[float] = UNSET,
    ) -> "ShardedAsyncRegisterClient":
        """One logical sharded client (one quorum client per shard).

        Per-shard client RNGs are derived from ``rng`` in shard order, so a
        harness seeding one generator per logical client stays reproducible
        whatever the shard count.  ``writer_id`` overrides the scenario's
        writer identity for this client's registers — concurrent service
        writers must each write under their own id or colliding timestamps
        would alias distinct values.
        """
        deadline = resolve_deprecated_alias(deadline, timeout, "deadline", "timeout")
        clients = [
            self.client_for_shard(
                index,
                rng=random.Random(rng.randrange(2**63)),
                deadline=deadline,
                selection=selection,
                quorum_pool=quorum_pool,
                client_id=None if writer_id is None else str(writer_id),
            )
            for index in range(len(self.shards))
        ]
        return ShardedAsyncRegisterClient(self, clients, writer_id=writer_id)

    # -- aggregate counters -------------------------------------------------------

    @property
    def rpc_calls(self) -> int:
        return sum(shard.transport.calls for shard in self.shards)

    @property
    def rpc_dropped(self) -> int:
        return sum(shard.transport.dropped for shard in self.shards)

    @property
    def rpc_timeouts(self) -> int:
        return sum(shard.transport.timed_out for shard in self.shards)

    @property
    def dispatch_flushes(self) -> int:
        return sum(
            shard.dispatcher.flushes
            for shard in self.shards
            if shard.dispatcher is not None
        )

    @property
    def repairs_piggybacked(self) -> int:
        """Read-repair payloads piggybacked across every shard's dispatcher."""
        return sum(
            getattr(shard.dispatcher, "repairs_piggybacked", 0)
            for shard in self.shards
            if shard.dispatcher is not None
        )

    @property
    def gossip_rounds(self) -> int:
        """Background gossip rounds run by this deployment's own tasks.

        Zero for deployments whose gossip runs elsewhere (a cluster's shard
        server processes report theirs through the metrics pipe instead).
        """
        return sum(
            service.gossip_rounds for service in getattr(self, "_gossip", ())
        )

    # -- metrics ------------------------------------------------------------------

    def metrics_snapshots(self, labels: Optional[Dict[str, Any]] = None) -> List[dict]:
        """Picklable metric snapshots: client-side counters plus one
        snapshot per in-process shard server (TCP mode).

        Feed the list to :func:`repro.obs.metrics.merge_snapshots` (the
        ``Deployment.metrics()`` facade does) — a cluster deployment
        contributes its worker and server-process snapshots the same way.
        """
        registry = MetricsRegistry(
            labels={"component": "sharded-client", **(labels or {})}
        )
        registry.counter("rpc_calls").inc(self.rpc_calls)
        registry.counter("rpc_dropped").inc(self.rpc_dropped)
        registry.counter("rpc_timeouts").inc(self.rpc_timeouts)
        registry.counter("dispatch_flushes").inc(self.dispatch_flushes)
        registry.counter("repairs_piggybacked").inc(self.repairs_piggybacked)
        registry.gauge("shards").set(len(self.shards))
        if self.tracer is not None:
            registry.counter("traces_started").inc(self.tracer.started)
            registry.counter("traces_sampled_out").inc(self.tracer.sampled_out)
        snapshots = [registry.to_dict()]
        for shard in self.shards:
            server = getattr(shard, "server", None)
            if server is not None:
                snapshots.append(server.metrics_snapshot({"shard": shard.index}))
        # One snapshot per in-loop gossip task (cluster deployments have
        # none here: their shard server processes report over the pipe).
        for shard, service in zip(self.shards, getattr(self, "_gossip", ())):
            snapshots.append(service.metrics_snapshot({"shard": shard.index}))
        return snapshots


class ShardedDeployment(ShardedClientAPI):
    """``shards`` independent deployments of one scenario, routed by key.

    Parameters
    ----------
    scenario:
        The declarative scenario every shard deploys: quorum system,
        failure model (sampled independently per shard) and register kind.
    shards:
        Number of independent replica groups.
    transport:
        ``"inproc"`` (shared-memory nodes on the current loop) or ``"tcp"``
        (one localhost socket server per shard).
    latency, jitter, drop_probability:
        Transport conditions, with the same meaning in both modes (over TCP
        they are *added* to whatever the real sockets cost).
    dispatch:
        ``"batched"`` installs the coalescing dispatcher of the matching
        transport (``BatchedDispatcher`` in process, the op-level
        ``TcpDispatcher`` on the wire); ``"per-rpc"`` uses the
        coroutine-per-RPC oracle path in both modes.
    dispatch_window:
        Extra coalescing time for the in-process batched dispatcher.
    latency_tracking:
        When true, each shard gets its **own**
        :class:`~repro.service.stats.EwmaLatencyTracker` (latency-aware
        selection).  Trackers are never shared across shards: the shards
        are independent replica groups with independent failure plans, so
        server ``i`` of one shard says nothing about server ``i`` of
        another.
    rng:
        Root randomness: per-shard failure plans, transport seeds and pool
        generators derive from it in shard order, so a deployment is
        reproducible from one seed.
    seed:
        The facade spelling of the same root: ``seed=7`` is shorthand for
        ``rng=random.Random(7)`` (ignored when an explicit ``rng`` is
        given — the generator is the more specific request).
    tcp_host:
        Bind address for the per-shard socket servers.
    codec:
        The wire codec the TCP transports prefer (``"json"`` or
        ``"binary"``; negotiated per connection, with JSON fallback).
        Meaningless — and therefore refused — for ``transport="inproc"``,
        where payloads pass by reference.
    anti_entropy:
        Optional :class:`~repro.simulation.scenario.AntiEntropySpec`.
        ``None`` (the default) inherits the scenario's own ``anti_entropy``
        axis; when resolved, readers piggyback up to ``repair_budget``
        repairs per read onto the dispatcher's coalescing path, and a
        gossiping spec additionally arms one background
        :class:`~repro.service.gossip.GossipService` per shard at
        :meth:`start`.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        shards: int = 1,
        transport: str = "inproc",
        latency: float = 0.0,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        dispatch: str = "batched",
        dispatch_window: float = 0.0,
        latency_tracking: bool = False,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        tcp_host: str = "127.0.0.1",
        codec: str = "json",
        anti_entropy: Optional[AntiEntropySpec] = None,
    ) -> None:
        if not isinstance(scenario, ScenarioSpec):
            raise ConfigurationError(
                f"a deployment is described over a ScenarioSpec, "
                f"got {type(scenario).__name__}"
            )
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if transport not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"unknown transport {transport!r}; choose from {TRANSPORT_MODES}"
            )
        if codec not in WIRE_CODECS:
            raise ConfigurationError(
                f"unknown wire codec {codec!r}; choose from {WIRE_CODECS}"
            )
        if codec != "json" and transport == "inproc":
            raise ConfigurationError(
                "codec applies to the wire: transport='inproc' passes payloads "
                "by reference, so codec='json' is the only valid spelling there"
            )
        if anti_entropy is None:
            anti_entropy = scenario.anti_entropy
        elif not isinstance(anti_entropy, AntiEntropySpec):
            raise ConfigurationError(
                f"anti_entropy is described by an AntiEntropySpec, "
                f"got {type(anti_entropy).__name__}"
            )
        if anti_entropy is not None and anti_entropy.fanout >= scenario.n:
            raise ConfigurationError(
                f"anti-entropy fanout {anti_entropy.fanout} must be smaller "
                f"than the replica group size {scenario.n}"
            )
        self.anti_entropy = anti_entropy
        self.codec = codec
        self.scenario = scenario
        self.transport_mode = transport
        self.latency_tracking = bool(latency_tracking)
        self._tcp_host = tcp_host
        self._gossip: List[GossipService] = []
        self._started = transport == "inproc"
        if rng is None:
            rng = random.Random(seed) if seed is not None else random.Random()
        n = scenario.n
        self.shards: List[_Shard] = []
        for index in range(shards):
            shard = _Shard()
            shard.index = index
            shard.nodes = [ServiceNode(server) for server in range(n)]
            shard.plan = scenario.failure_model.sample_plan_for(n, rng)
            for server in shard.plan.crashed:
                shard.nodes[server].crash()
            for server, behavior in shard.plan.byzantine.items():
                shard.nodes[server].set_behavior(behavior)
            shard.transport_seed = rng.randrange(2**63)
            shard.tracker = EwmaLatencyTracker(n) if latency_tracking else None
            if transport == "inproc":
                shard.transport = AsyncTransport(
                    latency=latency,
                    jitter=jitter,
                    drop_probability=drop_probability,
                    seed=shard.transport_seed,
                )
                shard.dispatcher = (
                    BatchedDispatcher(
                        shard.nodes,
                        shard.transport,
                        window=dispatch_window,
                        tracker=shard.tracker,
                    )
                    if dispatch == "batched"
                    else None
                )
                shard.client_nodes = shard.nodes
            else:
                # The transport needs the server's ephemeral port, known
                # only after start(); stash the knobs until then.
                shard.server = TcpServiceServer(shard.nodes, host=tcp_host)
                shard.transport = None
                shard.dispatcher = None
                shard.client_nodes = remote_nodes(n)
            shard.pool_generator = np.random.default_rng(rng.randrange(2**63))
            self.shards.append(shard)
        self._tcp_knobs = (latency, jitter, drop_probability, dispatch)

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Bring the deployment up (starts socket servers in TCP mode).

        Also arms the per-shard background gossip tasks when the deployment
        has a gossiping anti-entropy spec — in *both* transport modes, since
        the replica node objects live on this loop either way.
        """
        if self._started:
            # In-process deployments are serving from construction, but the
            # gossip tasks still need a running event loop to arm on.
            self._start_gossip()
            return
        latency, jitter, drop_probability, dispatch = self._tcp_knobs
        for shard in self.shards:
            await shard.server.start()
            shard.transport = TcpTransport(
                shard.server.address,
                latency=latency,
                jitter=jitter,
                drop_probability=drop_probability,
                seed=shard.transport_seed,
                codec=self.codec,
                # Offer the trace envelope extension only when a tracer is
                # installed: untraced deployments keep pre-trace frames.
                trace=self.tracer is not None,
            )
            await shard.transport.connect()
            if dispatch == "batched":
                shard.dispatcher = TcpDispatcher(shard.transport, tracker=shard.tracker)
        self._started = True
        self._start_gossip()

    def _start_gossip(self) -> None:
        spec = self.anti_entropy
        if spec is None or not spec.gossips or self._gossip:
            return
        verify = scenario_verifier(self.scenario)
        for shard in self.shards:
            service = GossipService(
                shard.nodes,
                spec,
                rng=random.Random(shard.transport_seed ^ GOSSIP_SEED_SALT),
                verify=verify,
            )
            service.start()
            self._gossip.append(service)

    async def aclose(self) -> None:
        """Tear the deployment down (closes sockets in TCP mode; idempotent)."""
        for service in self._gossip:
            await service.aclose()
        self._gossip = []
        if self.transport_mode != "tcp":
            return
        for shard in self.shards:
            if isinstance(shard.transport, TcpTransport):
                await shard.transport.aclose()
            if shard.server is not None:
                await shard.server.aclose()
        self._started = False

    async def __aenter__(self) -> "ShardedDeployment":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ShardedDeployment({self.scenario.describe()}, "
            f"shards={len(self.shards)}, transport={self.transport_mode!r})"
        )


class ShardedAsyncRegisterClient:
    """Route per-key register operations across a sharded deployment.

    Lazily builds one register frontend per key (protocol resolved from the
    deployment's scenario) on the key's shard.  The ``on_issued`` hook
    mirrors :attr:`~repro.service.register.AsyncRegister.on_issued` with the
    key prepended, so the load harness keeps one issued-history per
    register.  ``writer_id`` overrides the scenario's writer identity for
    this client's registers (``None`` keeps the scenario default);
    contending service writers each carry their own.
    """

    def __init__(
        self,
        deployment: ShardedClientAPI,
        clients: Sequence[AsyncQuorumClient],
        writer_id: Optional[int] = None,
    ) -> None:
        if len(clients) != deployment.shard_count:
            raise ConfigurationError(
                f"the deployment has {deployment.shard_count} shards but "
                f"{len(clients)} clients were given"
            )
        self.deployment = deployment
        self.clients = list(clients)
        self.writer_id = writer_id
        self._registers: Dict[str, AsyncRegister] = {}
        #: Optional ``(key, timestamp, value)`` callback fired when a write
        #: is issued (before its RPCs fan out).
        self.on_issued = None
        #: Trace of the most recent routed operation (mirrors
        #: :attr:`~repro.service.register.AsyncRegister.last_trace`).
        self.last_trace: Optional[Any] = None

    def shard_for(self, key: str) -> int:
        """The shard ``key``'s register lives on."""
        return self.deployment.shard_for(key)

    def register_for(self, key: str) -> AsyncRegister:
        """The (cached) register frontend for ``key`` on its shard."""
        register = self._registers.get(key)
        if register is None:
            shard = self.shard_for(key)
            register = async_register_for(
                self.deployment.scenario,
                self.clients[shard],
                name=key,
                writer_id=self.writer_id,
            )
            register.on_issued = (
                lambda timestamp, value, _key=key: self._notify(_key, timestamp, value)
            )
            self._registers[key] = register
        return register

    def _notify(self, key: str, timestamp: Any, value: Any) -> None:
        if self.on_issued is not None:
            self.on_issued(key, timestamp, value)

    async def read(self, key: str):
        """Read ``key``'s register on its shard."""
        register = self.register_for(key)
        outcome = await register.read()
        self.last_trace = register.last_trace
        return outcome

    async def write(self, key: str, value: Any) -> WriteOutcome:
        """Write ``key``'s register on its shard."""
        register = self.register_for(key)
        outcome = await register.write(value)
        self.last_trace = register.last_trace
        return outcome

    @property
    def probe_fallbacks(self) -> int:
        """Probe-based repairs across every shard's quorum client."""
        return sum(client.probe_fallbacks for client in self.clients)
