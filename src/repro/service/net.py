"""Real socket transport: the service layer over asyncio TCP streams.

Everything above the transport — quorum clients, register frontends, the
load harness, the classifiers — is transport-agnostic: it calls
``transport.call(node, method, *args, timeout=...)`` and reads the
``calls``/``dropped``/``timed_out`` counters.  This module supplies the
wire-level implementation of that same interface:

* :class:`TcpServiceServer` hosts a whole replica group (a list of
  :class:`~repro.service.node.ServiceNode`) behind one listening socket;
  requests carry the destination ``server_id`` and are dispatched to the
  node's ordinary ``handle`` method.  A node that answers
  :data:`~repro.service.node.NO_REPLY` (crashed, silent-Byzantine) gets **no
  response frame** — the caller's deadline expires exactly as it would
  in process, so live fault injection works unchanged over the wire.
* :class:`TcpTransport` is a drop-in :class:`~repro.service.transport.
  AsyncTransport`: per-RPC wall-clock deadlines, the same failure counters,
  and the same client-side drop/latency simulation knobs (a "dropped" RPC is
  never sent and costs the caller its whole deadline, mirroring the
  in-process semantics).  It maintains a small pool of connections, each
  with its own **writer task** draining an outbound queue — concurrent
  fan-outs coalesce into large socket writes — and **reconnects on drop**:
  a broken connection is detected, its in-flight RPCs are left to their
  deadlines (silence semantics), and the next send reopens the socket.

Unlike the simulated transport, deadlines here are *wall-clock*: a timeout
bounds real elapsed time, including event-loop lag and kernel buffering.
The conformance suite (``tests/conformance``) asserts that classification
rates over this path agree with the in-process service and both Monte-Carlo
engines, and that no fabricated value is ever accepted.

Frames are the length-prefixed format of :mod:`repro.service.wire` under
either codec (tagged JSON, or the struct-packed binary fast path);
request/response shapes::

    ("req", request_id, server_id, method, args_tuple)
    ("rsp", request_id, reply_envelope)
    ("hello", [codec, ...]) / ("hello", chosen)     # codec negotiation

Negotiation is per connection: a client preferring the binary codec opens
with a JSON-encoded hello offering its codecs, the server answers with its
choice, and each side then *sends* its negotiated codec (every frame
self-identifies, so decoding needs no negotiation state).  A pre-codec
peer treats the hello as a malformed request and drops the connection; the
client detects the EOF, marks the whole transport JSON-only and
reconnects — binary clients interoperate with JSON-only servers at the
cost of one extra connect.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import RpcTimeoutError, ServiceError, WireFormatError
from repro.obs.metrics import MetricsRegistry
from repro.service.node import NO_REPLY, ServiceNode
from repro.service.transport import AsyncTransport
from repro.service.wire import (
    WIRE_CODECS,
    FrameDecoder,
    choose_codec,
    decode_binary_request_body,
    decode_binary_response_body,
    encode_frame,
    encode_request_frame,
    encode_response_frame,
    hello_frame,
    hello_offers_trace,
    hello_reply_frame,
    join_negotiated,
    offer_codecs,
    parse_hello,
    request_tail,
    split_negotiated,
)

#: Socket read size for both the server's and the client's reader loops.
_READ_CHUNK = 64 * 1024

#: Connections a :class:`TcpTransport` stripes its RPCs across by default.
DEFAULT_CONNECTIONS = 2


class RemoteNode:
    """Client-side stub for a replica hosted by a :class:`TcpServiceServer`.

    Carries only the ``server_id`` the quorum client and transport route by;
    the node's storage and behaviour live in the server process.
    """

    __slots__ = ("server_id",)

    def __init__(self, server_id: int) -> None:
        self.server_id = int(server_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"RemoteNode({self.server_id})"


def remote_nodes(n: int) -> List[RemoteNode]:
    """The ``n`` stubs a client passes where in-process code passes nodes."""
    return [RemoteNode(server) for server in range(n)]


async def _drain_queue(
    queue: "asyncio.Queue[bytes]", writer: asyncio.StreamWriter
) -> None:
    """Per-connection writer task: coalesce queued frames into one write.

    Every frame enqueued while the previous ``drain`` was in flight is
    folded into the next socket write, so a burst of concurrent fan-outs
    costs a handful of syscalls instead of one per RPC.
    """
    try:
        while True:
            buffer = bytearray(await queue.get())
            while not queue.empty():
                buffer += queue.get_nowait()
            writer.write(bytes(buffer))
            await writer.drain()
    except (ConnectionError, asyncio.CancelledError, RuntimeError):
        # Peer gone or loop shutting down: the reader side (or the caller's
        # deadline) owns the failure; the writer task just stops.
        pass


class TcpServiceServer:
    """One listening socket hosting a replica group.

    Parameters
    ----------
    nodes:
        The group's replica nodes, indexed by server id (requests name their
        destination).  The caller keeps the references — live fault
        injection crashes/recovers these exact objects.
    host, port:
        Bind address; ``port=0`` (the default) lets the OS pick a free
        ephemeral port, published via :attr:`address` after :meth:`start`.
    codecs:
        The wire codecs this server will negotiate (a client's hello picks
        the first of its offers present here).  Must include ``"json"`` —
        it is the negotiation carrier and the pre-codec fallback; pass
        ``codecs=("json",)`` to deploy a JSON-only server.
    trace:
        Whether the server accepts the negotiated trace-context envelope
        extension (clients offering the ``"trace"`` token then send
        6-tuple request frames carrying their trace id).  ``False``
        reproduces a pre-trace server exactly — the token is ignored and
        only 5-tuple requests are accepted — which is what the
        degradation tests deploy.
    """

    def __init__(
        self,
        nodes: Sequence[ServiceNode],
        host: str = "127.0.0.1",
        port: int = 0,
        codecs: Sequence[str] = WIRE_CODECS,
        trace: bool = True,
    ) -> None:
        self.nodes = list(nodes)
        self.host = host
        self.port = int(port)
        self.codecs = tuple(codecs)
        if "json" not in self.codecs:
            raise ServiceError(
                "the server's codecs must include 'json' (the negotiation "
                f"carrier and pre-codec fallback), got {self.codecs!r}"
            )
        for name in self.codecs:
            if name not in WIRE_CODECS:
                raise ServiceError(
                    f"unknown wire codec {name!r}; choose from {WIRE_CODECS}"
                )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: "set[asyncio.Task]" = set()
        self._connection_writers: "set[asyncio.StreamWriter]" = set()
        self.trace_support = bool(trace)
        self.connections_accepted = 0
        self.requests_handled = 0
        #: Requests that arrived with a trace id (the extension negotiated).
        self.traced_requests = 0
        #: The most recent trace id seen (tests pin cross-process survival).
        self.last_trace_id: Optional[int] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` clients connect to (valid after start)."""
        return (self.host, self.port)

    @property
    def serving(self) -> bool:
        """Whether the listening socket is open."""
        return self._server is not None and self._server.is_serving()

    async def start(self) -> Tuple[str, int]:
        """Open the listening socket; return the bound address."""
        if self._server is not None:
            raise ServiceError("the server is already started")
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def aclose(self) -> None:
        """Stop accepting, drop every open connection, release the socket.

        Connections are closed at the transport level rather than by
        cancelling their handler tasks: each reader loop then sees EOF and
        unwinds cleanly, so shutdown never races a handler mid-dispatch.
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for writer in list(self._connection_writers):
            writer.close()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        self._connection_tasks.add(asyncio.current_task())
        self._connection_writers.add(writer)
        decoder = FrameDecoder(decode_binary=decode_binary_request_body)
        codec = "json"  # per-connection response codec until a hello says otherwise
        traced = False  # whether this connection negotiated the trace extension
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                # All of a chunk's responses coalesce into ONE socket write
                # directly from this loop (no queue, no writer task): a
                # burst of q requests costs one write, not 2q task hops.
                # Not reading while ``drain`` applies backpressure is the
                # point — a slow peer throttles itself, nobody else.
                responses: List[bytes] = []
                for frame in decoder.feed(chunk):
                    offered = parse_hello(frame)
                    if offered is not None:
                        codec = choose_codec(offered, self.codecs)
                        traced = self.trace_support and hello_offers_trace(offered)
                        responses.append(
                            hello_reply_frame(join_negotiated(codec, traced))
                        )
                        continue
                    reply_frame = self._handle_request(frame, codec, traced)
                    if reply_frame is not None:
                        responses.append(reply_frame)
                if responses:
                    writer.write(b"".join(responses))
                    await writer.drain()
        except (ConnectionError, WireFormatError):
            # A malformed or vanished peer costs it its connection, nothing
            # more; other connections and the nodes are unaffected.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connection_writers.discard(writer)
            self._connection_tasks.discard(asyncio.current_task())

    def _handle_request(
        self, frame: Any, codec: str = "json", traced: bool = False
    ) -> Optional[bytes]:
        try:
            trace_id: Optional[int] = None
            if traced and isinstance(frame, tuple) and len(frame) == 6:
                kind, request_id, server_id, method, args, trace_id = frame
                if not isinstance(trace_id, int):
                    raise ValueError(trace_id)
            else:
                # Off a trace-negotiated connection the envelope stays the
                # strict 5-tuple: a 6-tuple from a peer that never offered
                # the token is as malformed as it always was.
                kind, request_id, server_id, method, args = frame
            if kind != "req" or not isinstance(args, tuple):
                raise ValueError(kind)
            # Explicit bounds check: Python's negative indexing would
            # otherwise silently route server_id=-1 to the last replica.
            if not isinstance(server_id, int) or not 0 <= server_id < len(self.nodes):
                raise ValueError(server_id)
            node = self.nodes[server_id]
        except (TypeError, ValueError, IndexError, KeyError) as error:
            raise WireFormatError(f"malformed request frame: {frame!r}") from error
        try:
            reply = node.handle(method, *args)
        except ServiceError as error:
            # Method-level garbage gets the same containment as frame-level
            # garbage: this peer loses its connection, nothing more.
            raise WireFormatError(f"unroutable request frame: {error}") from error
        self.requests_handled += 1
        if trace_id is not None:
            self.traced_requests += 1
            self.last_trace_id = trace_id
        if reply is NO_REPLY:
            # Silence stays silence on the wire: the caller's deadline is
            # the only thing that resolves it, as on the in-process paths.
            return None
        return encode_response_frame(request_id, reply, codec)

    def metrics_snapshot(self, labels: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """This server's metrics as a mergeable registry snapshot.

        Picklable, so a shard-server process can ship it back over the
        cluster's readiness pipe at shutdown.
        """
        base = {"component": "tcp-server", "host": self.host, "port": self.port}
        if labels:
            base.update(labels)
        registry = MetricsRegistry(labels=base)
        registry.counter("server_connections_accepted").inc(self.connections_accepted)
        registry.counter("server_requests_handled").inc(self.requests_handled)
        registry.counter("server_traced_requests").inc(self.traced_requests)
        registry.counter("node_requests").inc(
            sum(node.requests for node in self.nodes)
        )
        registry.gauge("nodes").set(len(self.nodes))
        return registry.to_dict()


class _TcpConnection:
    """One client socket: reader task, writer task, lazy (re)connect."""

    __slots__ = ("transport", "_reader", "_writer", "_queue", "_tasks", "_lock", "_was_connected")

    def __init__(self, transport: "TcpTransport") -> None:
        self.transport = transport
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._queue: Optional["asyncio.Queue[bytes]"] = None
        self._tasks: List[asyncio.Task] = []
        self._lock = asyncio.Lock()
        self._was_connected = False

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def ensure(self, connect_timeout: Optional[float] = None) -> None:
        """(Re)open the socket — and negotiate its codec — when needed.

        ``connect_timeout`` bounds the whole connect (handshake included)
        so a blackholed peer costs the caller its RPC deadline, not the OS
        connect timeout.  After this returns, the transport's
        ``negotiated_codec`` is resolved and :meth:`enqueue` cannot block.
        """
        if self.connected:
            return
        if connect_timeout is None:
            await self._connect()
        else:
            try:
                await asyncio.wait_for(self._connect(), connect_timeout)
            except asyncio.TimeoutError:
                raise ConnectionError(
                    f"connect to {self.transport.address} exceeded the "
                    f"{connect_timeout}s deadline"
                ) from None

    def enqueue(self, frame: bytes) -> None:
        """Queue one already-encoded frame on a connection :meth:`ensure`-d up."""
        self._queue.put_nowait(frame)

    async def send(self, frame: bytes, connect_timeout: Optional[float] = None) -> None:
        """Queue one frame, (re)opening the socket first when needed."""
        await self.ensure(connect_timeout)
        self._queue.put_nowait(frame)

    async def _connect(self) -> None:
        async with self._lock:
            if self.connected:
                return
            await self._teardown()
            transport = self.transport
            host, port = transport.address
            reader, writer = await asyncio.open_connection(host, port)
            decoder = FrameDecoder(decode_binary=decode_binary_response_body)
            # Negotiate when the transport wants a non-JSON codec (unless a
            # previous handshake already fell back to JSON) or the trace
            # extension (unless a failed handshake disabled hellos for this
            # transport).  A plain JSON-preference transport with no tracing
            # still skips the hello entirely — pre-codec byte compatibility.
            want_codec = (
                transport.codec_preference != "json"
                and transport.negotiated_codec != "json"
            )
            want_trace = transport.trace_wanted and not transport.hello_disabled
            if want_codec or want_trace:
                reader, writer, decoder = await self._negotiate(reader, writer, decoder)
            self._reader, self._writer = reader, writer
            self._queue = asyncio.Queue()
            self._tasks = [
                asyncio.create_task(_drain_queue(self._queue, self._writer)),
                asyncio.create_task(self._read_loop(self._reader, decoder)),
            ]
            if self._was_connected:
                transport.reconnects += 1
            self._was_connected = True

    async def _negotiate(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
    ):
        """The hello exchange; falls back to JSON (and reconnects) on old peers."""
        transport = self.transport
        try:
            writer.write(
                hello_frame(
                    offer_codecs(
                        transport.offered_codecs, trace=transport.trace_wanted
                    )
                )
            )
            await writer.drain()
            frames: List[Any] = []
            while not frames:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    raise ConnectionResetError("peer closed during codec negotiation")
                frames = decoder.feed(chunk)
            chosen = parse_hello(frames[0])
            if not isinstance(chosen, str):
                raise WireFormatError(f"expected a hello reply, got {frames[0]!r}")
        except (ConnectionError, OSError, WireFormatError):
            # A pre-codec peer treats the hello as a malformed request and
            # drops the connection.  Fall back to JSON for the *transport*
            # (one extra connect total, not one per pooled connection), give
            # up on the trace extension, and reconnect without a handshake.
            transport.negotiated_codec = "json"
            transport.negotiated_trace = False
            transport.hello_disabled = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            host, port = transport.address
            reader, writer = await asyncio.open_connection(host, port)
            return reader, writer, FrameDecoder(decode_binary=decode_binary_response_body)
        chosen, traced = split_negotiated(chosen)
        transport.negotiated_trace = traced and transport.trace_wanted
        transport.negotiated_codec = chosen if chosen in WIRE_CODECS else "json"
        for frame in frames[1:]:  # responses glued onto the hello reply
            transport._dispatch_response(frame)
        return reader, writer, decoder

    async def _read_loop(
        self, reader: asyncio.StreamReader, decoder: Optional[FrameDecoder] = None
    ) -> None:
        if decoder is None:
            decoder = FrameDecoder(decode_binary=decode_binary_response_body)
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    self.transport._dispatch_response(frame)
        except (ConnectionError, WireFormatError, asyncio.CancelledError):
            pass
        finally:
            # Mark the connection droppable so the next send reconnects;
            # in-flight RPCs resolve through their deadlines (silence).
            if self._writer is not None:
                self._writer.close()

    async def _teardown(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = self._queue = None

    async def aclose(self) -> None:
        async with self._lock:
            await self._teardown()


class TcpTransport(AsyncTransport):
    """The :class:`AsyncTransport` interface over real asyncio TCP streams.

    ``latency``/``jitter``/``drop_probability`` keep their simulation
    meaning — extra client-side delay and injected message loss on top of
    whatever the real network does — so a :class:`~repro.service.load.
    ServiceLoadSpec` moves between ``transport="inproc"`` and
    ``transport="tcp"`` without changing what its knobs mean.  Deadlines are
    enforced in wall-clock time.

    Parameters
    ----------
    address:
        The ``(host, port)`` of the shard's :class:`TcpServiceServer`.
    connections:
        Sockets the transport stripes RPCs across; each has its own writer
        task, so one slow ``drain`` never blocks the others.
    codec:
        The *preferred* wire codec.  ``"json"`` (the default) sends the
        pre-codec byte stream with no hello handshake; ``"binary"`` offers
        the struct-packed codec per connection and falls back to JSON
        against servers that do not speak it.  :attr:`negotiated_codec`
        records the outcome once the first connection is up.
    trace:
        Whether to offer the trace-context envelope extension in the hello
        (a JSON-preference transport then handshakes too).  Trace ids ride
        the request frames only once :attr:`negotiated_trace` confirms the
        server accepted the offer — against a pre-trace server everything
        degrades to plain envelopes.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        latency: float = 0.0,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        seed: int = 0,
        connections: int = DEFAULT_CONNECTIONS,
        codec: str = "json",
        trace: bool = False,
    ) -> None:
        super().__init__(
            latency=latency, jitter=jitter, drop_probability=drop_probability, seed=seed
        )
        if connections < 1:
            raise ServiceError(f"need at least one connection, got {connections}")
        if codec not in WIRE_CODECS:
            raise ServiceError(
                f"unknown wire codec {codec!r}; choose from {WIRE_CODECS}"
            )
        self.codec_preference = codec
        #: Codecs offered in the hello (preference first; JSON always last).
        self.offered_codecs = (codec, "json") if codec != "json" else ("json",)
        #: The codec this transport *sends*: resolved immediately for a JSON
        #: preference, by the first connection's handshake otherwise.
        self.negotiated_codec: Optional[str] = "json" if codec == "json" else None
        #: Whether the hello should offer the trace extension at all.
        self.trace_wanted = bool(trace)
        #: Whether the server accepted it (set by the handshake).
        self.negotiated_trace = False
        #: Set when a handshake failed outright: stop offering hellos so a
        #: tracing JSON-preference transport still talks to hello-less peers.
        self.hello_disabled = False
        self.address = (str(address[0]), int(address[1]))
        self._connections = [_TcpConnection(self) for _ in range(connections)]
        #: request_id -> Future (per-RPC path) or (op, server) (dispatcher path).
        self._pending: Dict[int, Any] = {}
        self._next_request_id = 0
        #: Times a dropped connection was re-opened by a later send.
        self.reconnects = 0
        #: Optional latency tracker fed by the dispatcher path.
        self.tracker: Optional[Any] = None

    async def connect(self) -> None:
        """Eagerly open every pooled connection (optional; sends also do it)."""
        for connection in self._connections:
            if not connection.connected:
                await connection._connect()

    async def aclose(self) -> None:
        """Close every pooled connection and fail nothing (idempotent)."""
        for connection in self._connections:
            await connection.aclose()

    def _dispatch_response(self, frame: Any) -> None:
        try:
            kind, request_id, payload = frame
            if kind != "rsp":
                raise ValueError(kind)
        except (TypeError, ValueError) as error:
            raise WireFormatError(f"malformed response frame: {frame!r}") from error
        entry = self._pending.get(request_id)
        if entry is None:
            return
        if isinstance(entry, asyncio.Future):
            if not entry.done():
                entry.set_result(payload)
            return
        op, server = entry
        op.deliver(server, request_id, payload)

    async def call(
        self,
        node: Any,
        method: str,
        *args: Any,
        timeout: Optional[float] = None,
        trace_id: Optional[int] = None,
    ) -> Any:
        """One RPC over the wire; mirror the in-process failure semantics.

        ``node`` needs only a ``server_id`` (a :class:`RemoteNode` stub, or
        a real :class:`~repro.service.node.ServiceNode` in tests).  Raises
        :class:`~repro.exceptions.RpcTimeoutError` when the RPC was
        (simulated-)dropped, the reply missed the wall-clock deadline, or
        the connection failed and could not be re-established in time; the
        error carries a ``disposition`` attribute for trace spans.  A
        ``trace_id`` rides the request envelope only once the connection
        handshake confirmed the server speaks the trace extension
        (:attr:`negotiated_trace`); otherwise it is silently omitted so
        un-instrumented peers keep interoperating.
        """
        self.calls += 1
        if self.drop_probability > 0.0 and self.rng.random() < self.drop_probability:
            # Simulated loss: never sent, costs the caller its deadline.
            self.dropped += 1
            await asyncio.sleep(self._delay() if timeout is None else timeout)
            error = RpcTimeoutError(
                f"rpc {method!r} to server {node.server_id} was dropped"
            )
            error.disposition = "dropped"
            raise error
        extra_delay = self._delay()
        if timeout is not None and extra_delay > timeout:
            # As on the in-process transport, the injected delay counts
            # against the deadline: a delay beyond it is a timeout.
            self.timed_out += 1
            await asyncio.sleep(timeout)
            error = RpcTimeoutError(
                f"rpc {method!r} to server {node.server_id} timed out"
            )
            error.disposition = "timeout"
            raise error
        if extra_delay > 0.0:
            await asyncio.sleep(extra_delay)
        if timeout is not None:
            timeout -= extra_delay
        loop = asyncio.get_running_loop()
        self._next_request_id += 1
        request_id = self._next_request_id
        future = loop.create_future()
        self._pending[request_id] = future
        connection = self._connections[request_id % len(self._connections)]
        started = loop.time()
        try:
            try:
                # Connect (and, first time, negotiate the codec) before
                # encoding: the request must be framed in whatever codec the
                # handshake lands on.
                await connection.ensure(connect_timeout=timeout)
                payload = ("req", request_id, node.server_id, method, args)
                if trace_id is not None and self.negotiated_trace:
                    payload = payload + (trace_id,)
                connection.enqueue(
                    encode_frame(payload, self.negotiated_codec or "json")
                )
            except (ConnectionError, OSError) as error:
                # Unreachable server: burn (the rest of) the deadline like
                # any silent peer — a failed connect already consumed some.
                self.timed_out += 1
                if timeout is not None:
                    remaining = timeout - (loop.time() - started)
                    if remaining > 0.0:
                        await asyncio.sleep(remaining)
                wrapped = RpcTimeoutError(
                    f"rpc {method!r} to server {node.server_id} failed to send: {error}"
                )
                wrapped.disposition = "unsent"
                raise wrapped from error
            if timeout is None:
                return await future
            try:
                # Connect/queue time counts against the same deadline the
                # reply does: one RPC never waits longer than `timeout`.
                return await asyncio.wait_for(
                    future, max(timeout - (loop.time() - started), 0.001)
                )
            except asyncio.TimeoutError:
                self.timed_out += 1
                error = RpcTimeoutError(
                    f"rpc {method!r} to server {node.server_id} timed out "
                    f"after {timeout}s"
                )
                error.disposition = "timeout"
                raise error from None
        finally:
            self._pending.pop(request_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"TcpTransport({self.address[0]}:{self.address[1]}, "
            f"connections={len(self._connections)}, calls={self.calls})"
        )


class _WireOp:
    """One fanned-out operation over the wire: shared replies, one deadline.

    Mirrors the batched dispatcher's ``_PendingOp`` with the one difference
    the wire forces: a silent remote server produces *no* event at all, so
    the deadline timer must be armed eagerly at op creation rather than
    lazily when the last fate comes in.
    """

    __slots__ = (
        "transport", "loop", "future", "replies", "outstanding",
        "misses", "timer", "start", "trace", "method",
    )

    def __init__(
        self,
        transport: "TcpTransport",
        loop: asyncio.AbstractEventLoop,
        timeout: Optional[float],
        misses: int,
    ) -> None:
        self.transport = transport
        self.loop = loop
        self.future = loop.create_future()
        self.replies: Dict[Any, Any] = {}
        self.outstanding: Dict[int, Any] = {}  # request_id -> server
        self.misses = misses
        self.start = loop.time()
        self.trace: Any = None
        self.method = ""
        self.timer = (
            loop.call_later(timeout, self._deadline) if timeout is not None else None
        )

    def deliver(self, server: Any, request_id: int, envelope: Any) -> None:
        self.outstanding.pop(request_id, None)
        self.transport._pending.pop(request_id, None)
        # Strip the ("ok", payload) reply envelope, as the in-process
        # dispatcher and the per-RPC client path both do.
        self.replies[server] = envelope[1]
        now = self.loop.time()
        tracker = self.transport.tracker
        if tracker is not None:
            tracker.observe(server, now - self.start)
        if self.trace is not None:
            self.trace.record(server, self.method, self.start, now, "ok")
        if not self.outstanding and (self.misses == 0 or self.timer is None):
            # Every sent RPC answered: resolve early.  With misses (drops),
            # the deadline timer resolves instead — a partially failed
            # operation costs its whole deadline, as on every other path.
            self._resolve()

    def _deadline(self) -> None:
        self.timer = None
        transport = self.transport
        transport.timed_out += len(self.outstanding)
        now = self.loop.time()
        if transport.tracker is not None:
            for server in self.outstanding.values():
                transport.tracker.penalize(server, now - self.start)
        if self.trace is not None:
            for server in self.outstanding.values():
                self.trace.record(server, self.method, self.start, now, "timeout")
        self._resolve()

    def _resolve(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        for request_id in self.outstanding:
            self.transport._pending.pop(request_id, None)
        self.outstanding = {}
        if not self.future.done():
            self.future.set_result(self.replies)


class TcpDispatcher:
    """Operation-level fan-out over a :class:`TcpTransport`.

    The per-RPC path (:meth:`TcpTransport.call`) costs one future and one
    ``wait_for`` timer per RPC; at quorum size ``q`` that is ``q`` timer
    heap operations per logical read.  This dispatcher implements the same
    ``fan_out`` interface as the in-process
    :class:`~repro.service.dispatch.BatchedDispatcher` — the quorum client
    accepts either — so one operation is **one** future and **one** deadline
    timer however many servers it touches, and all of its request frames are
    handed to the connection writers in a single burst (which the writer
    tasks coalesce into few socket writes).

    Drop simulation, counters and deadline semantics mirror the other
    paths: drops are sampled per RPC from the transport RNG, a partially
    failed operation resolves at its deadline with whatever arrived, and
    every unanswered sent RPC increments ``timed_out`` exactly once.
    """

    def __init__(self, transport: TcpTransport, tracker: Optional[Any] = None) -> None:
        self.transport = transport
        transport.tracker = tracker
        #: Interface parity with ``BatchedDispatcher``: the wire path has no
        #: (node, tick) delivery events, so this stays 0 in reports.
        self.flushes = 0
        #: Logical operations fanned out so far.
        self.ops = 0
        #: Read-repair frames piggybacked onto already-open connections.
        self.repairs_piggybacked = 0

    def enqueue_repair(
        self,
        server: int,
        variable: str,
        value: Any,
        timestamp: Any,
        signature: Optional[bytes],
    ) -> None:
        """Fire-and-forget one read-repair frame at ``server``.

        The frame rides an already-open pooled connection's outbound queue,
        coalescing with whatever RPC burst is in flight — no new round, no
        future, no deadline timer, and no ``calls`` accounting (the repair
        is overhead of a read that already completed).  The server's reply,
        if any, carries a request id nothing is waiting on and is silently
        discarded by :meth:`TcpTransport._dispatch_response`.  With no
        connection currently open the repair is skipped outright: opening a
        socket for it would be exactly the extra round piggybacking exists
        to avoid.
        """
        transport = self.transport
        connections = transport._connections
        transport._next_request_id += 1
        request_id = transport._next_request_id
        preferred = connections[request_id % len(connections)]
        connection = preferred if preferred.connected else next(
            (candidate for candidate in connections if candidate.connected), None
        )
        if connection is None:
            return
        tail = request_tail(
            "repair",
            (variable, value, timestamp, signature),
            codec=transport.negotiated_codec or "json",
        )
        connection.enqueue(encode_request_frame(request_id, server, tail))
        self.repairs_piggybacked += 1

    @property
    def tracker(self) -> Optional[Any]:
        return self.transport.tracker

    @tracker.setter
    def tracker(self, value: Optional[Any]) -> None:
        self.transport.tracker = value

    async def fan_out(
        self,
        servers: Sequence[Any],
        method: str,
        args: tuple,
        timeout: Optional[float],
        trace: Optional[Any] = None,
    ) -> Dict[Any, Any]:
        """Issue ``method`` to every listed server; map responders to payloads."""
        if not servers:
            return {}
        self.ops += 1
        transport = self.transport
        loop = asyncio.get_running_loop()
        transport.calls += len(servers)
        drop_probability = transport.drop_probability
        rng_draw = transport.rng.random
        sent = []
        dropped = []
        misses = 0
        for server in servers:
            if drop_probability > 0.0 and rng_draw() < drop_probability:
                transport.dropped += 1
                misses += 1
                if trace is not None:
                    dropped.append(server)
                continue
            sent.append(server)
        # The op (and its deadline timer) starts *before* the injected
        # delay, so simulated latency counts against the deadline exactly
        # as on the in-process paths.
        op = _WireOp(transport, loop, timeout, misses)
        if trace is not None:
            op.trace = trace
            op.method = method
            for server in dropped:
                # Sampled drops never hit the wire: zero-length spans.
                trace.record(server, method, op.start, op.start, "dropped")
        if transport.latency > 0.0:
            # One coalesced delay per operation, drawn from the same stream
            # and distribution as the per-RPC path's.
            await asyncio.sleep(transport.draw_delay())
        connections = transport._connections
        stripes = len(connections)
        pending = transport._pending
        codec = transport.negotiated_codec
        if codec is None or (
            trace is not None
            and transport.trace_wanted
            and not transport.negotiated_trace
            and not transport.hello_disabled
        ):
            # First op on a binary-preference (or traced) transport: bring
            # one connection up (running the hello handshake) so the tail
            # below is built in the codec the whole fan-out will be sent in
            # and the trace-extension verdict is known before framing.
            remaining = (
                None if timeout is None else max(op.start + timeout - loop.time(), 0.001)
            )
            try:
                await connections[0].ensure(connect_timeout=remaining)
            except (ConnectionError, OSError):
                pass  # the per-server sends below fail (and count) individually
            codec = transport.negotiated_codec or "json"
        # The (method, args) payload is serialised once per op, not per
        # frame: only request_id and server differ between the q frames.
        tail = request_tail(method, args, codec=codec)
        # The trace id joins the envelope only once the handshake (run by
        # `ensure` above or an earlier op) confirmed the server speaks the
        # extension; otherwise the frames stay byte-identical to untraced.
        trace_id = (
            trace.trace_id
            if trace is not None and transport.negotiated_trace
            else None
        )
        for position, server in enumerate(sent):
            if op.future.done():
                # The deadline fired while this coroutine was suspended
                # (delay sleep or a reconnecting send): sending the rest
                # would only leak pending entries.  The unsent RPCs were
                # already counted in `calls`, so charge them as timeouts to
                # keep the drop/timeout columns partitioning the failures.
                transport.timed_out += len(sent) - position
                if trace is not None:
                    now = loop.time()
                    for unsent in sent[position:]:
                        trace.record(unsent, method, op.start, now, "unsent")
                break
            transport._next_request_id += 1
            request_id = transport._next_request_id
            op.outstanding[request_id] = server
            pending[request_id] = (op, server)
            remaining = (
                None if timeout is None else max(op.start + timeout - loop.time(), 0.001)
            )
            try:
                await connections[request_id % stripes].send(
                    encode_request_frame(request_id, server, tail, trace_id=trace_id),
                    connect_timeout=remaining,
                )
            except (ConnectionError, OSError):
                # Unreachable server: silence.  Counted as a *miss* too so
                # the op still resolves at its deadline (never early with
                # partial replies), exactly like a simulated drop.
                op.outstanding.pop(request_id, None)
                pending.pop(request_id, None)
                op.misses += 1
                transport.timed_out += 1
                if trace is not None:
                    trace.record(server, method, op.start, loop.time(), "unsent")
        if op.timer is None and not op.outstanding and not op.future.done():
            op._resolve()
        return await op.future
