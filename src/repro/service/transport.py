"""Asynchronous message transport with configurable latency, jitter and drops.

The Monte-Carlo engines evaluate the protocols over *sequentialised* trials;
the service layer instead runs genuinely concurrent clients on an asyncio
event loop, so the transport is where real interleaving (and its hazards)
enters the model.  Each RPC:

* may be dropped, independently per message, with ``drop_probability``
  (request *or* reply — either way the caller never hears back);
* is delayed by ``latency ± jitter`` seconds of event-loop time;
* is bounded by a per-call ``timeout``: a dropped message or a silent server
  costs the caller exactly the timeout before :class:`RpcTimeoutError` is
  raised, never an unbounded wait.

Because the transport *simulates* the network, it knows a message's fate at
send time: a lost or overdue reply sleeps ``timeout`` and raises, instead of
arming a timer per RPC.  That keeps the hot path cheap enough for the
throughput harness while preserving the semantics a caller would observe.
With zero latency the transport still yields to the event loop once per
call (``asyncio.sleep(0)``), so thousands of in-flight RPCs interleave
non-deterministically exactly as a real service's would.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Optional

from repro.exceptions import ConfigurationError, RpcTimeoutError
from repro.service.node import NO_REPLY, ServiceNode


class AsyncTransport:
    """Client-to-replica message passing for the asyncio service layer.

    Parameters
    ----------
    latency:
        Mean one-way processing delay per RPC, in event-loop seconds (the
        request and reply legs are folded into one delay).
    jitter:
        Half-width of the uniform noise added to ``latency``.
    drop_probability:
        Probability that an RPC's request or reply is lost.
    seed:
        Seed of the transport's private random source (drops and jitter),
        making a single-transport run reproducible.
    """

    def __init__(
        self,
        latency: float = 0.0,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if latency < 0.0:
            raise ConfigurationError(f"latency must be non-negative, got {latency}")
        if jitter < 0.0 or jitter > latency:
            raise ConfigurationError(
                f"jitter must lie in [0, latency={latency}], got {jitter}"
            )
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop probability must lie in [0, 1), got {drop_probability}"
            )
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.drop_probability = float(drop_probability)
        self.rng = random.Random(seed)
        self.calls = 0
        self.dropped = 0
        self.timed_out = 0

    def _delay(self) -> float:
        if self.jitter:
            return self.latency + self.rng.uniform(-self.jitter, self.jitter)
        return self.latency

    def draw_delay(self) -> float:
        """Draw one delivery delay (``latency ± jitter``) from the transport RNG.

        The batched dispatcher draws a delay per *(node, tick)* delivery
        event through this hook, so both dispatch modes take their timing
        noise from the same stream and configuration.
        """
        return self._delay()

    async def call(
        self,
        node: ServiceNode,
        method: str,
        *args: Any,
        timeout: Optional[float] = None,
        trace_id: Optional[int] = None,
    ) -> Any:
        """Invoke ``method`` on a replica node; raise on timeout.

        ``timeout=None`` disables the deadline (only safe on a loss-free
        transport against non-silent nodes).  Raises
        :class:`~repro.exceptions.RpcTimeoutError` when the RPC is dropped,
        the delay exceeds the deadline, or the node stays silent (crashed
        and silent-Byzantine behaviours never answer); the error carries a
        ``disposition`` attribute (``"dropped"``/``"timeout"``/``"silent"``)
        for trace spans.  ``trace_id`` is accepted for interface parity with
        the socket transport — in-process calls pass payloads by reference,
        so there is no envelope to extend.
        """
        self.calls += 1
        delay = self._delay()
        dropped = (
            self.drop_probability > 0.0 and self.rng.random() < self.drop_probability
        )
        if dropped:
            # The caller never hears back: it waits out its whole deadline
            # (or, with no deadline, learns of the loss after the delay).
            # Counted as a drop only, so the report's drop/timeout columns
            # partition the failures.
            self.dropped += 1
            await asyncio.sleep(delay if timeout is None else timeout)
            error = RpcTimeoutError(
                f"rpc {method!r} to server {node.server_id} was dropped"
            )
            error.disposition = "dropped"
            raise error
        if timeout is not None and delay > timeout:
            self.timed_out += 1
            await asyncio.sleep(timeout)
            error = RpcTimeoutError(
                f"rpc {method!r} to server {node.server_id} timed out"
            )
            error.disposition = "timeout"
            raise error
        await asyncio.sleep(delay)
        reply = node.handle(method, *args)
        if reply is NO_REPLY:
            # A silent server: the caller waits out the rest of its deadline.
            self.timed_out += 1
            if timeout is not None and timeout > delay:
                await asyncio.sleep(timeout - delay)
            error = RpcTimeoutError(
                f"rpc {method!r} to server {node.server_id} got no reply"
            )
            error.disposition = "silent"
            raise error
        return reply
