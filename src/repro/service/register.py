"""Async register frontends: the three read protocols over the RPC client.

Each frontend pairs an :class:`~repro.service.client.AsyncQuorumClient`
with one of the paper's read rules and produces the *same*
:class:`~repro.protocol.variable.ReadOutcome` /
:class:`~repro.protocol.variable.WriteOutcome` objects as the synchronous
registers, selected through the shared deterministic rule of
:mod:`repro.protocol.selection` and labelled through
:mod:`repro.protocol.classification` — so an outcome observed by the live
service means exactly what it means to both Monte-Carlo engines.

* :class:`AsyncRegister` — the benign Section 3.1 read (any reply competes);
* :class:`AsyncDisseminationRegister` — Section 4: writes are signed and
  unverifiable replies are discarded before selection;
* :class:`AsyncMaskingRegister` — Section 5: a value/timestamp pair needs at
  least ``k`` vouching votes from the read quorum.

:func:`async_register_for` resolves the frontend from a declarative
:class:`~repro.simulation.scenario.ScenarioSpec`, mirroring the spec's
sequential ``register_factory`` lowering.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.exceptions import ProtocolError
from repro.protocol.classification import classify_read_outcome
from repro.protocol.masking_variable import MaskingReadOutcome
from repro.protocol.selection import enumerate_credible_values, select_credible_value
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp, TimestampGenerator
from repro.protocol.variable import ReadOutcome, WriteOutcome
from repro.service.client import AsyncQuorumClient, ReadRpcResult
from repro.simulation.scenario import ScenarioSpec


class AsyncRegister:
    """Single-writer multi-reader register frontend (Section 3.1, async)."""

    def __init__(
        self,
        client: AsyncQuorumClient,
        name: str = "x",
        writer_id: int = 0,
    ) -> None:
        self.client = client
        self.name = str(name)
        self._timestamps = TimestampGenerator(writer_id)
        self._last_written: Optional[WriteOutcome] = None
        self.writes_performed = 0
        self.reads_performed = 0
        #: The :class:`~repro.obs.trace.QuorumTrace` of the most recent
        #: operation, when the client samples traces (``None`` otherwise).
        #: Callers annotate it in place — the load harness stamps the read's
        #: classification, the lock service its protocol step.
        self.last_trace: Optional[Any] = None
        #: Optional ``(timestamp, value)`` callback fired when a write is
        #: *issued*, before its RPCs fan out.  Concurrent observers (the load
        #: harness's safety accounting, a write-ahead log) need the pair the
        #: moment it can first reach a server, not when the write completes.
        self.on_issued: Optional[Callable[[Timestamp, Any], None]] = None

    # -- protocol hooks (overridden by the Byzantine variants) --------------------

    def _sign(self, value: Any, timestamp: Timestamp) -> Optional[bytes]:
        return None

    def _filter(self, result: ReadRpcResult) -> dict:
        """Which replies compete in selection (the protocol's read filter)."""
        return result.replies

    def _threshold(self) -> int:
        return 1

    # -- operations ---------------------------------------------------------------

    @property
    def last_write(self) -> Optional[WriteOutcome]:
        """The most recent write outcome (``None`` before the first write)."""
        return self._last_written

    async def write(self, value: Any) -> WriteOutcome:
        """Write ``value`` to a strategy-drawn quorum (repairing on failure)."""
        timestamp = self._timestamps.next()
        if self.on_issued is not None:
            self.on_issued(timestamp, value)
        result = await self.client.write(
            self.name, value, timestamp, self._sign(value, timestamp)
        )
        self.last_trace = result.trace
        outcome = WriteOutcome(
            quorum=result.quorum,
            timestamp=timestamp,
            acknowledged=result.acknowledged,
        )
        self._last_written = outcome
        self.writes_performed += 1
        return outcome

    def _annotate_selection(
        self, result: ReadRpcResult, competing: int, selected: Any
    ) -> None:
        """Record the read rule's inputs and verdict on the sampled trace."""
        trace = result.trace
        if trace is None:
            return
        selection = trace.selection or {}
        selection.update(
            rule=type(self).__name__,
            threshold=self._threshold(),
            replies=len(result.replies),
            competing=competing,
            verdict="selected" if selected is not None else "empty",
        )
        if selected is not None:
            selection["votes"] = selected.votes
        trace.selection = selection

    def _build_outcome(self, result: ReadRpcResult) -> ReadOutcome:
        competing = self._filter(result)
        selected = select_credible_value(competing, self._threshold())
        self._annotate_selection(result, len(competing), selected)
        if selected is None:
            return ReadOutcome(
                value=None,
                timestamp=None,
                quorum=result.quorum,
                reporting_servers=frozenset(),
                replies=len(result.replies),
            )
        return ReadOutcome(
            value=selected.value,
            timestamp=selected.timestamp,
            quorum=result.quorum,
            reporting_servers=selected.servers,
            replies=len(result.replies),
        )

    def _lagging_servers(self, result: ReadRpcResult, outcome: ReadOutcome) -> list:
        """Contacted servers that demonstrably (or plausibly) lack the value.

        Definite laggards — quorum members whose reply carried an *older*
        timestamp — come first so a small repair budget is spent where the
        lag is proven; quorum members with no value-bearing reply (empty
        copy, crashed, or silent) follow.  A reply whose timestamp does not
        compare against the settled one (a forgery the filter discarded) is
        never a repair target: anti-entropy propagates the settled value,
        it does not argue with Byzantine servers.
        """
        winning = outcome.reporting_servers
        stale: list = []
        unknown: list = []
        for server in sorted(result.quorum):
            if server in winning:
                continue
            stored = result.replies.get(server)
            if stored is None:
                unknown.append(server)
                continue
            try:
                behind = stored.timestamp is None or stored.timestamp < outcome.timestamp
            except TypeError:
                continue
            if behind:
                stale.append(server)
        return stale + unknown

    def _piggyback_repair(self, result: ReadRpcResult, outcome: ReadOutcome) -> None:
        """Attach read-repair for this read's laggards to the next delivery."""
        if outcome.value is None or not outcome.reporting_servers:
            return
        lagging = self._lagging_servers(result, outcome)
        if not lagging:
            return
        # The payload is the winning record as a reporting server vouched for
        # it — signature included, so a dissemination replica re-verifies the
        # repair exactly as it would a write.
        donor = result.replies[next(iter(outcome.reporting_servers))]
        self.client.piggyback_repairs(
            self.name,
            outcome.value,
            outcome.timestamp,
            donor.signature,
            lagging,
            trace=result.trace,
        )

    async def read(self) -> ReadOutcome:
        """Read the register: filter, then deterministic highest-timestamp-wins."""
        result = await self.client.read(self.name)
        self.reads_performed += 1
        self.last_trace = result.trace
        outcome = self._build_outcome(result)
        if self.client.repair_budget > 0:
            self._piggyback_repair(result, outcome)
        return outcome

    async def read_credible(self) -> list:
        """Read the register but return *every* credible record, winner included.

        Applies the protocol's reply filter and vote threshold exactly as
        :meth:`read`, without collapsing to the highest timestamp.  The lock
        service needs the losing records: a competing holder's older record
        never wins selection against the reader's own newer write, yet it
        still means the lock is contested.
        """
        result = await self.client.read(self.name)
        self.reads_performed += 1
        self.last_trace = result.trace
        records = enumerate_credible_values(self._filter(result), self._threshold())
        if result.trace is not None:
            result.trace.selection = {
                "rule": type(self).__name__,
                "threshold": self._threshold(),
                "replies": len(result.replies),
                "competing": len(records),
                "verdict": "enumerated",
            }
        return records

    def observe_timestamp(self, timestamp: Timestamp) -> None:
        """Fast-forward this writer's clock past an observed timestamp.

        Multi-writer coordination protocols (the lock service) must write
        records that outrank whatever they just read, Lamport-style; the
        single-writer register protocol itself never needs this.
        """
        if isinstance(timestamp, Timestamp):
            self._timestamps.observe(timestamp)

    def classify_read(self, outcome: ReadOutcome) -> str:
        """Label a read against the last local write (shared classifier)."""
        if self._last_written is None:
            raise ProtocolError("no write has been performed yet")
        return classify_read_outcome(outcome, self._last_written)


class AsyncDisseminationRegister(AsyncRegister):
    """Self-verifying data (Section 4): sign writes, discard forgeries."""

    def __init__(
        self,
        client: AsyncQuorumClient,
        signatures: Optional[SignatureScheme] = None,
        name: str = "x",
        writer_id: int = 0,
    ) -> None:
        super().__init__(client, name=name, writer_id=writer_id)
        self.signatures = signatures or SignatureScheme()
        self.forged_replies_rejected = 0

    def _sign(self, value: Any, timestamp: Timestamp) -> Optional[bytes]:
        return self.signatures.sign(self.name, value, timestamp)

    def _filter(self, result: ReadRpcResult) -> dict:
        verified = {}
        for server, stored in result.replies.items():
            if isinstance(stored.timestamp, Timestamp) and self.signatures.verify(
                self.name, stored.value, stored.timestamp, stored.signature
            ):
                verified[server] = stored
            else:
                self.forged_replies_rejected += 1
        return verified


class AsyncMaskingRegister(AsyncRegister):
    """Arbitrary data (Section 5): ``>= k`` vouching votes per pair."""

    def __init__(
        self,
        client: AsyncQuorumClient,
        name: str = "x",
        writer_id: int = 0,
    ) -> None:
        if not hasattr(client.system, "read_threshold"):
            raise ProtocolError(
                "AsyncMaskingRegister requires a masking quorum system "
                "with a read_threshold"
            )
        super().__init__(client, name=name, writer_id=writer_id)
        # Cached once: ⌈k⌉ is a derived property on the system and this is
        # consulted on every read of the hot path.
        self._read_threshold = int(client.system.read_threshold)

    @property
    def read_threshold(self) -> int:
        """The vote count ``⌈k⌉`` a value needs to be accepted."""
        return self._read_threshold

    def _threshold(self) -> int:
        return self._read_threshold

    def _build_outcome(self, result: ReadRpcResult) -> MaskingReadOutcome:
        threshold = self._read_threshold
        competing = self._filter(result)
        selected = select_credible_value(competing, threshold)
        self._annotate_selection(result, len(competing), selected)
        if selected is None:
            return MaskingReadOutcome(
                value=None,
                timestamp=None,
                quorum=result.quorum,
                reporting_servers=frozenset(),
                replies=len(result.replies),
                votes=0,
                threshold=threshold,
            )
        return MaskingReadOutcome(
            value=selected.value,
            timestamp=selected.timestamp,
            quorum=result.quorum,
            reporting_servers=selected.servers,
            replies=len(result.replies),
            votes=selected.votes,
            threshold=threshold,
        )


def async_register_for(
    spec: ScenarioSpec,
    client: AsyncQuorumClient,
    name: str = "x",
    writer_id: Optional[int] = None,
) -> AsyncRegister:
    """Build the frontend a scenario's resolved register kind calls for.

    Mirrors :meth:`repro.simulation.scenario.ScenarioSpec.register_factory`,
    so one declarative spec describes a Monte-Carlo experiment *and* a live
    service deployment with identical read semantics.  ``writer_id``
    overrides the spec's writer identity (contending writers of one
    scenario each bind their own); all writers share the spec's signing
    key, so every writer's records verify under one dissemination scheme.
    """
    resolved_writer = spec.writer_id if writer_id is None else int(writer_id)
    kind = spec.resolved_register_kind()
    if kind == "masking":
        return AsyncMaskingRegister(client, name=name, writer_id=resolved_writer)
    if kind == "dissemination":
        return AsyncDisseminationRegister(
            client,
            signatures=SignatureScheme(spec.signing_key),
            name=name,
            writer_id=resolved_writer,
        )
    return AsyncRegister(client, name=name, writer_id=resolved_writer)
