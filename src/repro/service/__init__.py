"""The asyncio quorum-replicated register service.

Everything below :mod:`repro.simulation` evaluates the paper's protocols in
*sequentialised* Monte-Carlo trials.  This subpackage is the repo's first
layer that services genuinely concurrent traffic: replica nodes on an
asyncio event loop, clients that fan RPCs out in parallel under per-RPC
deadlines, and a load harness measuring throughput, latency percentiles and
safety under live fault injection.

* :mod:`repro.service.node` — replica nodes wrapping the simulation's
  server behaviours (correct / crashed / silent / replay / forge), with
  live behaviour swapping for fault injection;
* :mod:`repro.service.transport` — message passing with latency, jitter,
  drops and deadline enforcement;
* :mod:`repro.service.client` — the concurrent quorum client, falling back
  to :mod:`repro.quorum.probe` strategies to re-assemble a live quorum on
  partial failure;
* :mod:`repro.service.dispatch` — the batched fast path: one coalesced
  delivery event per (node, tick) and one shared deadline per operation,
  instead of a coroutine + timer per RPC;
* :mod:`repro.service.stats` — per-server EWMA latency tracking backing the
  opt-in (ε-voiding, hence guarded) latency-aware quorum selection;
* :mod:`repro.service.register` — async frontends for the plain (§3.1),
  dissemination (§4) and masking (§5) read protocols, labelled through the
  same classifier as both Monte-Carlo engines;
* :mod:`repro.service.wire` — the socket transport's length-prefixed,
  type-tagged JSON frame codec (round-trip safe for every protocol payload,
  resilient to arbitrary chunk boundaries);
* :mod:`repro.service.net` — the *real* transport: per-shard
  :class:`TcpServiceServer` replica groups behind localhost sockets, a
  :class:`TcpTransport` implementing the same call/counter interface with
  wall-clock deadlines, per-connection writer tasks and reconnect-on-drop,
  and the op-level :class:`TcpDispatcher` fast path;
* :mod:`repro.service.sharding` — multi-register scale-out:
  :func:`shard_for_key` stable routing, :class:`ShardedDeployment`
  (independent replica group + transport + dispatcher per shard, either
  transport mode) and :class:`ShardedAsyncRegisterClient`;
* :mod:`repro.service.load` — :class:`ServiceLoadSpec` (mirroring
  :class:`~repro.simulation.scenario.ScenarioSpec`) and the load harness
  behind the ``serve`` experiment, now spanning transports, shards and
  multi-key workloads.
"""

from repro.service.client import (
    SELECTION_MODES,
    AsyncQuorumClient,
    ReadRpcResult,
    WriteRpcResult,
)
from repro.service.dispatch import DISPATCH_MODES, BatchedDispatcher
from repro.service.load import (
    FaultInjectionSpec,
    ServiceLoadReport,
    ServiceLoadSpec,
    active_loop_driver,
    classify_service_read,
    key_names,
    key_weight_cdf,
    run_service_load,
    serve_load,
)
from repro.service.net import (
    RemoteNode,
    TcpDispatcher,
    TcpServiceServer,
    TcpTransport,
    remote_nodes,
)
from repro.service.sharding import (
    TRANSPORT_MODES,
    ShardedAsyncRegisterClient,
    ShardedDeployment,
    shard_for_key,
)
from repro.service.wire import FrameDecoder, encode_frame, pack_value, unpack_value
from repro.service.stats import EwmaLatencyTracker
from repro.service.node import NO_REPLY, ServiceNode
from repro.service.register import (
    AsyncDisseminationRegister,
    AsyncMaskingRegister,
    AsyncRegister,
    async_register_for,
)
from repro.service.transport import AsyncTransport

__all__ = [
    "AsyncTransport",
    "TcpTransport",
    "TcpServiceServer",
    "TcpDispatcher",
    "RemoteNode",
    "remote_nodes",
    "FrameDecoder",
    "encode_frame",
    "pack_value",
    "unpack_value",
    "ShardedDeployment",
    "ShardedAsyncRegisterClient",
    "shard_for_key",
    "TRANSPORT_MODES",
    "key_names",
    "key_weight_cdf",
    "ServiceNode",
    "NO_REPLY",
    "AsyncQuorumClient",
    "BatchedDispatcher",
    "EwmaLatencyTracker",
    "DISPATCH_MODES",
    "SELECTION_MODES",
    "active_loop_driver",
    "ReadRpcResult",
    "WriteRpcResult",
    "AsyncRegister",
    "AsyncDisseminationRegister",
    "AsyncMaskingRegister",
    "async_register_for",
    "ServiceLoadSpec",
    "FaultInjectionSpec",
    "ServiceLoadReport",
    "classify_service_read",
    "run_service_load",
    "serve_load",
]
