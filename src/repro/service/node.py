"""Asyncio-facing replica nodes wrapping the simulation server behaviours.

A :class:`ServiceNode` owns one
:class:`~repro.simulation.server.ReplicaServer` and exposes the three RPCs
the service protocol needs — ``ping``, ``read`` and ``write`` — as plain
method dispatch; all asynchrony (latency, drops, deadlines) lives in the
transport.  The node reuses the exact behaviour classes of the Monte-Carlo
stack (correct / crashed / silent / replay / forge), so a scenario's
:class:`~repro.simulation.failures.FailurePlan` applies to a service
deployment unchanged, and *live* fault injection is just swapping a node's
behaviour while requests are in flight.

Silence is modelled with the :data:`NO_REPLY` sentinel: a crashed or
silent-Byzantine node returns it and the transport turns it into the
caller's timeout.  A correct node that simply stores nothing yet answers
``("ok", None)`` — an explicit "I have no value" — which is what lets the
quorum client distinguish an empty register from a dead server when it
decides whether to re-probe.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.exceptions import ServiceError
from repro.simulation.server import (
    ByzantineSilentBehavior,
    ReplicaServer,
    ServerBehavior,
    StoredValue,
)
from repro.types import ServerId

#: Sentinel for "this node never answers": the transport converts it into
#: the caller's RPC timeout.
NO_REPLY = object()


class ServiceNode:
    """One replica node of the asyncio service."""

    def __init__(
        self, server_id: ServerId, behavior: Optional[ServerBehavior] = None
    ) -> None:
        self.server = ReplicaServer(server_id, behavior)
        #: RPCs dispatched to this node (metrics; includes silent outcomes).
        self.requests = 0

    @property
    def server_id(self) -> ServerId:
        """The node's server id."""
        return self.server.server_id

    # -- live fault injection -----------------------------------------------------

    def crash(self) -> None:
        """Crash the node (storage survives; in-flight callers time out)."""
        self.server.crash()

    def recover(self) -> None:
        """Recover a crashed node with its pre-crash behaviour and storage."""
        self.server.recover()

    def set_behavior(self, behavior: ServerBehavior) -> None:
        """Swap the node's behaviour live (e.g. turn it Byzantine mid-run)."""
        self.server.behavior = behavior

    @property
    def answers_pings(self) -> bool:
        """Whether a liveness probe gets an answer.

        Crashed nodes cannot answer; a silent-Byzantine node *chooses* not
        to (total suppression is its defining attack), which conveniently
        routes probing clients around it.
        """
        return not (
            self.server.is_crashed
            or isinstance(self.server.behavior, ByzantineSilentBehavior)
        )

    # -- RPC dispatch -------------------------------------------------------------

    def handle(self, method: str, *args: Any) -> Any:
        """Dispatch one RPC; return :data:`NO_REPLY` for silence.

        Replies are ``("ok", payload)`` tuples: an explicit envelope keeps
        "answered with nothing" distinct from "never answered".
        """
        self.requests += 1
        if method == "read":
            # First: reads dominate every workload the harness drives.
            (variable,) = args
            stored = self.server.handle_read(variable)
            if stored is None and not self.answers_pings:
                return NO_REPLY
            return ("ok", stored)
        if method == "ping":
            return ("ok", True) if self.answers_pings else NO_REPLY
        if method == "write":
            variable, value, timestamp, signature = args
            ack = self.server.handle_write(variable, value, timestamp, signature)
            if not ack:
                # Only silence withholds an ack (crashed or silent-Byzantine):
                # the writer observes a missing ack, exactly as in the
                # synchronous cluster facade.
                return NO_REPLY
            return ("ok", True)
        if method == "repair":
            # Anti-entropy delivery (piggybacked read-repair or a gossip
            # push): adopt-if-newer through the replica's merge rule, which
            # already refuses on crashed and Byzantine servers.  Senders are
            # fire-and-forget, so the ack is advisory.
            variable, value, timestamp, signature = args
            adopted = self.server.merge(variable, StoredValue(value, timestamp, signature))
            if not self.answers_pings:
                return NO_REPLY
            return ("ok", adopted)
        raise ServiceError(f"unknown rpc method {method!r}")

    def stored(self, variable: str) -> Optional[StoredValue]:
        """Inspect the node's stored copy (tests and demos)."""
        return self.server.storage.get(variable)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ServiceNode({self.server!r})"
