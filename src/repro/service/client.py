"""The asynchronous quorum client: concurrent fan-out plus quorum repair.

A client performs one protocol operation (read or write) by sampling a
quorum through the system's access strategy — the paper stresses the
strategy must be followed for the ε guarantee to hold — and issuing every
per-server RPC *concurrently* with a per-RPC deadline.  Under partial
failure (some RPCs time out) the client falls back to the adaptive probing
of :mod:`repro.quorum.probe`: it pings the whole universe concurrently,
feeds the answers to a probe strategy as the liveness oracle, and re-issues
the operation against the live quorum the strategy assembles.  Uniform
constructions use :class:`~repro.quorum.probe.UniformProbeStrategy` (any
``q`` live servers form a quorum, and random-order probing preserves the
load profile); structured systems fall back to
:class:`~repro.quorum.probe.GreedyProbeStrategy`.

The repair pass *replaces* the original quorum rather than merging reply
sets: a merged super-quorum would not be a strategy-drawn quorum, and for
the masking protocol it would inflate ``|Q ∩ B|`` beyond what Lemma 5.7
accounts for.

Two orthogonal fast-path knobs:

* **batched dispatch** (default-off: no dispatcher) — pass a shared
  :class:`~repro.service.dispatch.BatchedDispatcher` and every fan-out is
  coalesced per destination node instead of spawning one coroutine + timer
  per RPC;
* **quorum pooling** (default-on: blocks of
  :data:`DEFAULT_QUORUM_POOL`; pass ``quorum_pool=0`` for per-operation
  draws) — quorums are pre-sampled in blocks through
  :meth:`~repro.core.probabilistic.ProbabilisticQuorumSystem.sample_quorum_block`
  (vectorised NumPy draw).  Every pooled quorum is an independent strategy
  draw, so pooling changes *when* the sampling cost is paid, never the
  distribution.

``selection="latency-aware"`` additionally biases quorum choice toward fast
replicas via an EWMA tracker (:mod:`repro.service.stats`).  That mode
**deviates from the access strategy** — the ε guarantee and Lemma 5.7's
``|Q ∩ B|`` accounting hold only for strategy-drawn quorums — so it warns on
construction and the service harness refuses it for Byzantine scenarios;
``selection="strategy"`` remains the default.
"""

from __future__ import annotations

import asyncio
import random
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import (
    ConfigurationError,
    QuorumUnavailableError,
    RpcTimeoutError,
)
from repro.quorum.probe import (
    GreedyProbeStrategy,
    ProbeResult,
    UniformProbeStrategy,
    oracle_from_alive_set,
)
from repro.obs.trace import QuorumTrace, Tracer
from repro.rngs import fresh_rng
from repro.service.dispatch import BatchedDispatcher
from repro.service.node import ServiceNode
from repro.service.stats import EwmaLatencyTracker
from repro.service.transport import AsyncTransport
from repro.simulation.server import StoredValue
from repro.types import Quorum, ServerId

#: The two quorum-selection modes; only ``strategy`` preserves ε.
SELECTION_MODES = ("strategy", "latency-aware")

#: Quorums pre-sampled per pool refill (one vectorised block draw).
DEFAULT_QUORUM_POOL = 32

#: Sentinel distinguishing "not passed" from every meaningful value of a
#: deprecated keyword alias (``None`` disables a deadline, so it cannot be
#: the sentinel).
UNSET = object()


def resolve_deprecated_alias(value, legacy_value, canonical: str, legacy: str):
    """Resolve a renamed keyword, warning when the legacy spelling is used.

    The service layer's constructors all call their per-RPC deadline
    ``deadline`` (and their root randomness ``seed``); the pre-facade
    spellings (``timeout``, ``rpc_timeout``) keep working through this
    shim so existing deployments migrate on their own schedule.
    """
    if legacy_value is UNSET:
        return value
    warnings.warn(
        f"the {legacy!r} keyword is deprecated; pass {canonical!r} instead "
        f"(same meaning, the repro.api facade spelling)",
        DeprecationWarning,
        stacklevel=3,
    )
    return legacy_value

EPSILON_CAVEAT = (
    "latency-aware quorum selection deviates from the access strategy: the "
    "ε guarantee (and the masking protocol's |Q ∩ B| accounting) holds only "
    "for strategy-drawn quorums"
)


@dataclass(frozen=True, slots=True)
class WriteRpcResult:
    """Outcome of one fanned-out quorum write.

    ``trace`` carries the operation's :class:`~repro.obs.trace.QuorumTrace`
    when the client samples traces, ``None`` otherwise.
    """

    quorum: Quorum
    acknowledged: frozenset
    retried: bool
    probes_used: int
    trace: Optional[QuorumTrace] = None


@dataclass(frozen=True, slots=True)
class ReadRpcResult:
    """Outcome of one fanned-out quorum read.

    ``replies`` holds the value-bearing answers; ``responders`` counts every
    server that answered at all (including explicit "I store nothing"), which
    is what distinguishes an empty register from a dead quorum.  ``trace``
    carries the operation's :class:`~repro.obs.trace.QuorumTrace` when the
    client samples traces, ``None`` otherwise.
    """

    quorum: Quorum
    replies: Dict[ServerId, StoredValue]
    responders: int
    retried: bool
    probes_used: int
    trace: Optional[QuorumTrace] = None


class AsyncQuorumClient:
    """Concurrent quorum RPCs over a set of service nodes.

    Parameters
    ----------
    system:
        The probabilistic quorum system; quorums are drawn from its access
        strategy and repair uses its structure.
    nodes:
        The ``n`` replica nodes, indexed by server id.
    transport:
        The shared :class:`~repro.service.transport.AsyncTransport`.
    deadline:
        Per-RPC deadline in event-loop seconds (``None`` disables it).
        The pre-facade spelling ``timeout=`` is still accepted with a
        :class:`DeprecationWarning`.
    rng:
        Random source for quorum sampling and probe order.
    repair:
        Whether partial failures trigger the probe fallback (on by default;
        the load harness counts how often it fires).
    dispatcher:
        Optional shared :class:`~repro.service.dispatch.BatchedDispatcher`;
        when given, fan-outs coalesce per destination node instead of
        spawning one coroutine per RPC.
    selection:
        ``"strategy"`` (default, ε-faithful) or ``"latency-aware"`` (biased
        toward fast replicas; warns, see the module docstring).
    tracker:
        Latency tracker backing latency-aware selection.  Share one instance
        across clients of a deployment so estimates aggregate; created on
        demand when latency-aware selection is requested without one.
    quorum_pool:
        Strategy-drawn quorums pre-sampled per block refill (``0`` disables
        pooling and draws per operation).
    pool_generator:
        Optional persistent NumPy generator backing the pool's block draws.
        A deployment shares one across its clients so a thousand clients do
        not pay a thousand bit-generator constructions; by default each
        client derives its own from ``rng`` on first refill.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When set, sampled
        operations assemble a :class:`~repro.obs.trace.QuorumTrace` (quorum,
        per-RPC spans, retry/probe accounting) attached to the RPC result.
        ``None`` (the default) keeps every per-operation trace branch off
        the hot path — tracing costs nothing when unused.
    client_id:
        Identity recorded in this client's traces (e.g. the register layer's
        writer id); purely observational.
    shard:
        Shard index recorded in this client's traces when the client serves
        one shard of a sharded deployment; purely observational.
    repair_budget:
        Lagging replicas one settled read may repair by piggybacking
        fire-and-forget repair payloads onto the dispatcher's coalescing
        path (``0``, the default, disables piggybacked read-repair).  Only
        effective with a dispatcher installed — the per-RPC path has no
        delivery events for a repair to ride.
    lazy_fallback:
        Skip the read path's probe-fallback round when the partial reply
        set can already settle a value (at least ``read_threshold``
        value-bearing replies).  The probe round exists to chase freshness
        into a fully live quorum; with anti-entropy running that freshness
        is maintained in the background, so deployments arm this together
        with gossip/read-repair and the extra round becomes pure overhead.
        Off by default — without anti-entropy the fallback is what keeps
        reads fresh under churn.  Writes always keep their fallback: a
        write that lands on too few servers is a durability loss no later
        read can repair.
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        nodes: Sequence[ServiceNode],
        transport: AsyncTransport,
        deadline: Optional[float] = 0.05,
        rng: Optional[random.Random] = None,
        repair: bool = True,
        dispatcher: Optional[BatchedDispatcher] = None,
        selection: str = "strategy",
        tracker: Optional[EwmaLatencyTracker] = None,
        quorum_pool: int = DEFAULT_QUORUM_POOL,
        pool_generator: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        client_id: Optional[str] = None,
        shard: Optional[int] = None,
        repair_budget: int = 0,
        lazy_fallback: bool = False,
        timeout: Optional[float] = UNSET,
    ) -> None:
        deadline = resolve_deprecated_alias(deadline, timeout, "deadline", "timeout")
        if len(nodes) != system.n:
            raise ConfigurationError(
                f"the system is over {system.n} servers but {len(nodes)} nodes were given"
            )
        if deadline is not None and deadline <= 0.0:
            raise ConfigurationError(f"the RPC deadline must be positive, got {deadline}")
        if selection not in SELECTION_MODES:
            raise ConfigurationError(
                f"unknown selection mode {selection!r}; choose from {SELECTION_MODES}"
            )
        if quorum_pool < 0:
            raise ConfigurationError(
                f"the quorum pool size must be non-negative, got {quorum_pool}"
            )
        if repair_budget < 0:
            raise ConfigurationError(
                f"the repair budget must be non-negative, got {repair_budget}"
            )
        self.system = system
        self.nodes = list(nodes)
        self.transport = transport
        self.deadline = deadline
        self.rng = rng or fresh_rng()
        self.repair = bool(repair)
        self.dispatcher = dispatcher
        self.selection = selection
        self.quorum_pool = int(quorum_pool)
        self._pool: list = []
        self._pool_generator = pool_generator
        self.probe_fallbacks = 0
        self.repair_budget = int(repair_budget)
        self.lazy_fallback = bool(lazy_fallback)
        #: Read-repair payloads piggybacked so far (anti-entropy accounting).
        self.repairs_piggybacked = 0
        self.tracker = tracker
        self.tracer = tracer
        self.client_id = client_id
        self.shard = shard
        self._generator: Optional[np.random.Generator] = None
        if selection == "latency-aware":
            if not hasattr(system, "quorum_size"):
                raise ConfigurationError(
                    "latency-aware selection needs a uniform construction with a "
                    f"fixed quorum_size; {system.describe()} has none"
                )
            if self.tracker is None and dispatcher is not None:
                # Join the deployment's existing tracker rather than
                # splitting observations across per-client instances.
                self.tracker = dispatcher.tracker
            if self.tracker is None:
                self.tracker = EwmaLatencyTracker(system.n)
            self._generator = np.random.default_rng(self.rng.randrange(2**63))
            warnings.warn(EPSILON_CAVEAT, UserWarning, stacklevel=2)
        if self.tracker is not None and self.dispatcher is not None:
            if self.dispatcher.tracker is None:
                # First tracked client wires the shared dispatcher up; later
                # clients must not silently swap the tracker the earlier
                # ones are drawing from.
                self.dispatcher.tracker = self.tracker
            elif self.dispatcher.tracker is not self.tracker:
                raise ConfigurationError(
                    "the shared dispatcher already feeds a different latency "
                    "tracker; pass that tracker to every client of the "
                    "deployment"
                )

    @property
    def timeout(self) -> Optional[float]:
        """Deprecated spelling of :attr:`deadline` (kept for old callers)."""
        return self.deadline

    # -- raw RPC fan-out ----------------------------------------------------------

    async def _rpc(
        self,
        server: ServerId,
        method: str,
        *args: Any,
        trace: Optional[QuorumTrace] = None,
    ) -> Any:
        """One RPC; returns the reply envelope or ``None`` on timeout."""
        tracker = self.tracker
        if tracker is None and trace is None:
            try:
                return await self.transport.call(
                    self.nodes[server], method, *args, timeout=self.deadline
                )
            except RpcTimeoutError:
                return None
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            reply = await self.transport.call(
                self.nodes[server],
                method,
                *args,
                timeout=self.deadline,
                trace_id=trace.trace_id if trace is not None else None,
            )
        except RpcTimeoutError as error:
            ended = loop.time()
            if tracker is not None:
                tracker.penalize(server, ended - started)
            if trace is not None:
                trace.record(
                    server,
                    method,
                    started,
                    ended,
                    getattr(error, "disposition", "timeout"),
                )
            return None
        ended = loop.time()
        if tracker is not None:
            tracker.observe(server, ended - started)
        if trace is not None:
            trace.record(server, method, started, ended, "ok")
        return reply

    async def _fan_out(
        self,
        servers: Sequence[ServerId],
        method: str,
        *args: Any,
        trace: Optional[QuorumTrace] = None,
    ) -> Dict[ServerId, Any]:
        """Issue one RPC per server; map responders to payloads.

        With a dispatcher installed the whole operation is one coalesced
        fan-out (one pending-op future, per-node delivery events); without
        one it is the per-RPC path (one coroutine + deadline per RPC).
        """
        if self.dispatcher is not None:
            if trace is not None:
                return await self.dispatcher.fan_out(
                    servers, method, args, self.deadline, trace=trace
                )
            return await self.dispatcher.fan_out(servers, method, args, self.deadline)
        envelopes = await asyncio.gather(
            *(self._rpc(server, method, *args, trace=trace) for server in servers)
        )
        return {
            server: envelope[1]
            for server, envelope in zip(servers, envelopes)
            if envelope is not None
        }

    # -- piggybacked read-repair --------------------------------------------------

    def piggyback_repairs(
        self,
        variable: str,
        value: Any,
        timestamp: Any,
        signature: Optional[bytes],
        servers: Sequence[ServerId],
        trace: Optional[QuorumTrace] = None,
    ) -> int:
        """Queue read-repair at up to :attr:`repair_budget` lagging servers.

        Fire-and-forget anti-entropy: the settled ``(value, timestamp)`` of
        a completed read is attached to the dispatcher's next coalesced
        delivery toward each listed server, so freshness propagates without
        a new RPC round.  Returns how many repairs were queued (0 without a
        dispatcher, without a budget, or when the dispatcher has no
        piggyback path).  The replica side adopts through its merge rule —
        crashed and Byzantine servers refuse — so a repair can never make a
        copy *worse*, only newer.
        """
        dispatcher = self.dispatcher
        if dispatcher is None or self.repair_budget <= 0 or not servers:
            return 0
        enqueue = getattr(dispatcher, "enqueue_repair", None)
        if enqueue is None:
            return 0
        targets = list(servers)[: self.repair_budget]
        for server in targets:
            enqueue(server, variable, value, timestamp, signature)
        self.repairs_piggybacked += len(targets)
        if trace is not None:
            now = asyncio.get_running_loop().time()
            for server in targets:
                # Zero-length spans: the payload rides a delivery that is
                # not awaited, so "queued" is all the client ever observes.
                trace.record(server, "repair", now, now, "repair")
        return len(targets)

    # -- liveness probing ---------------------------------------------------------

    def _probe_strategy(self) -> Union[UniformProbeStrategy, GreedyProbeStrategy]:
        if hasattr(self.system, "quorum_size"):
            return UniformProbeStrategy(self.system.n, int(self.system.quorum_size))
        return GreedyProbeStrategy(self.system)

    async def ping_alive(
        self, trace: Optional[QuorumTrace] = None
    ) -> Set[ServerId]:
        """Ping every node concurrently; return the responders."""
        answers = await self._fan_out(range(self.system.n), "ping", trace=trace)
        return set(answers)

    async def assemble_live_quorum(
        self, trace: Optional[QuorumTrace] = None
    ) -> ProbeResult:
        """Probe for a quorum of currently-responding servers.

        The concurrent ping sweep plays the role of the probe strategy's
        liveness oracle; the strategy then decides which live servers form
        a quorum (and reports how many probes that inspection cost).  A
        ``trace`` collects the sweep's pings as spans of the repaired
        operation.
        """
        alive = await self.ping_alive(trace=trace)
        oracle = oracle_from_alive_set(alive)
        strategy = self._probe_strategy()
        if isinstance(strategy, UniformProbeStrategy):
            return strategy.probe(oracle, rng=self.rng)
        return strategy.probe(oracle)

    # -- quorum selection ---------------------------------------------------------

    def sample_quorum(self) -> Quorum:
        """Draw a quorum from the access strategy (public, pool-free)."""
        return self.system.sample_quorum(self.rng)

    def _next_quorum(self) -> Tuple[int, ...]:
        """The quorum the next operation fans out to, as a sorted id tuple.

        Strategy mode pops from the block-sampled pool (refilled through the
        vectorised ``sample_quorum_block``); latency-aware mode draws a
        biased quorum from the tracker per operation, since the bias must
        reflect the latest estimates.
        """
        if self._generator is not None:
            return self.tracker.biased_quorum(
                int(self.system.quorum_size), generator=self._generator
            )
        if self.quorum_pool == 0:
            return tuple(sorted(self.system.sample_quorum(self.rng)))
        pool = self._pool
        if not pool:
            if self._pool_generator is None:
                self._pool_generator = np.random.default_rng(self.rng.randrange(2**63))
            pool.extend(
                self.system.sample_quorum_block(
                    count=self.quorum_pool, generator=self._pool_generator
                )
            )
        return pool.pop()

    # -- protocol operations ------------------------------------------------------

    async def write(
        self,
        variable: str,
        value: Any,
        timestamp: Any,
        signature: Optional[bytes] = None,
    ) -> WriteRpcResult:
        """Fan a write out to a strategy-drawn quorum, repairing on failure.

        Raises :class:`~repro.exceptions.QuorumUnavailableError` only when no
        server at all acknowledged and no live quorum could be assembled —
        short of that, missed servers are exactly the crash-misses the ε
        analysis accounts for.
        """
        trace = (
            self.tracer.begin(
                "write", client_id=self.client_id, variable=variable, shard=self.shard
            )
            if self.tracer is not None
            else None
        )
        ordered = self._next_quorum()
        quorum: Quorum = frozenset(ordered)
        if trace is not None:
            trace.quorum = list(ordered)
            trace.selection = {"mode": self.selection}
        acks = await self._fan_out(
            ordered, "write", variable, value, timestamp, signature, trace=trace
        )
        retried = False
        probes = 0
        if len(acks) < len(ordered) and self.repair:
            self.probe_fallbacks += 1
            probe = await self.assemble_live_quorum(trace=trace)
            probes = probe.probes_used
            if probe.found:
                retried = True
                quorum = probe.quorum
                if trace is not None:
                    trace.quorum = sorted(probe.quorum)
                retry_acks = await self._fan_out(
                    sorted(probe.quorum),
                    "write",
                    variable,
                    value,
                    timestamp,
                    signature,
                    trace=trace,
                )
                acks = {**acks, **retry_acks}
            if not acks:
                # Even a successfully probed quorum can lose every retry RPC
                # on a lossy transport; a write nobody stored must not be
                # reported as complete.
                if trace is not None:
                    trace.retried = retried
                    trace.probes_used = probes
                    self.tracer.finish(trace, status="unavailable")
                raise QuorumUnavailableError(
                    f"write of {variable!r}: no server acknowledged "
                    f"({probe.servers_alive} answered the liveness sweep)"
                )
        if trace is not None:
            trace.retried = retried
            trace.probes_used = probes
            self.tracer.finish(trace)
        return WriteRpcResult(
            quorum=quorum,
            acknowledged=frozenset(acks),
            retried=retried,
            probes_used=probes,
            trace=trace,
        )

    def _settleable(self, responses: Dict[ServerId, Any]) -> bool:
        """Whether a partial reply set can already settle a read.

        At least ``read_threshold`` value-bearing replies (one for the
        benign and dissemination protocols, ``⌈k⌉`` for masking) means the
        selection rule has enough votes to pick a winner; chasing the
        missing servers into a probe round buys nothing anti-entropy is
        not already providing in the background.
        """
        threshold = int(getattr(self.system, "read_threshold", 1))
        value_bearing = sum(
            1 for stored in responses.values() if stored is not None
        )
        return value_bearing >= threshold

    async def read(self, variable: str) -> ReadRpcResult:
        """Fan a read out to a strategy-drawn quorum, repairing on failure.

        Never raises: with every reply missing the register layer returns ⊥,
        which is the protocol's own account of an unreachable quorum.
        """
        trace = (
            self.tracer.begin(
                "read", client_id=self.client_id, variable=variable, shard=self.shard
            )
            if self.tracer is not None
            else None
        )
        ordered = self._next_quorum()
        quorum: Quorum = frozenset(ordered)
        if trace is not None:
            trace.quorum = list(ordered)
            trace.selection = {"mode": self.selection}
        responses = await self._fan_out(ordered, "read", variable, trace=trace)
        retried = False
        probes = 0
        if (
            len(responses) < len(ordered)
            and self.repair
            and not (self.lazy_fallback and self._settleable(responses))
        ):
            self.probe_fallbacks += 1
            probe = await self.assemble_live_quorum(trace=trace)
            probes = probe.probes_used
            if probe.found:
                retried = True
                quorum = probe.quorum
                if trace is not None:
                    trace.quorum = sorted(probe.quorum)
                responses = await self._fan_out(
                    sorted(probe.quorum), "read", variable, trace=trace
                )
        replies = {
            server: stored for server, stored in responses.items() if stored is not None
        }
        if trace is not None:
            trace.retried = retried
            trace.probes_used = probes
            self.tracer.finish(trace)
        return ReadRpcResult(
            quorum=quorum,
            replies=replies,
            responders=len(responses),
            retried=retried,
            probes_used=probes,
            trace=trace,
        )
