"""The asynchronous quorum client: concurrent fan-out plus quorum repair.

A client performs one protocol operation (read or write) by sampling a
quorum through the system's access strategy — the paper stresses the
strategy must be followed for the ε guarantee to hold — and issuing every
per-server RPC *concurrently* with a per-RPC deadline.  Under partial
failure (some RPCs time out) the client falls back to the adaptive probing
of :mod:`repro.quorum.probe`: it pings the whole universe concurrently,
feeds the answers to a probe strategy as the liveness oracle, and re-issues
the operation against the live quorum the strategy assembles.  Uniform
constructions use :class:`~repro.quorum.probe.UniformProbeStrategy` (any
``q`` live servers form a quorum, and random-order probing preserves the
load profile); structured systems fall back to
:class:`~repro.quorum.probe.GreedyProbeStrategy`.

The repair pass *replaces* the original quorum rather than merging reply
sets: a merged super-quorum would not be a strategy-drawn quorum, and for
the masking protocol it would inflate ``|Q ∩ B|`` beyond what Lemma 5.7
accounts for.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Union

from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.exceptions import (
    ConfigurationError,
    QuorumUnavailableError,
    RpcTimeoutError,
)
from repro.quorum.probe import (
    GreedyProbeStrategy,
    ProbeResult,
    UniformProbeStrategy,
    oracle_from_alive_set,
)
from repro.rngs import fresh_rng
from repro.service.node import ServiceNode
from repro.service.transport import AsyncTransport
from repro.simulation.server import StoredValue
from repro.types import Quorum, ServerId


@dataclass(frozen=True)
class WriteRpcResult:
    """Outcome of one fanned-out quorum write."""

    quorum: Quorum
    acknowledged: frozenset
    retried: bool
    probes_used: int


@dataclass(frozen=True)
class ReadRpcResult:
    """Outcome of one fanned-out quorum read.

    ``replies`` holds the value-bearing answers; ``responders`` counts every
    server that answered at all (including explicit "I store nothing"), which
    is what distinguishes an empty register from a dead quorum.
    """

    quorum: Quorum
    replies: Dict[ServerId, StoredValue]
    responders: int
    retried: bool
    probes_used: int


class AsyncQuorumClient:
    """Concurrent quorum RPCs over a set of service nodes.

    Parameters
    ----------
    system:
        The probabilistic quorum system; quorums are drawn from its access
        strategy and repair uses its structure.
    nodes:
        The ``n`` replica nodes, indexed by server id.
    transport:
        The shared :class:`~repro.service.transport.AsyncTransport`.
    timeout:
        Per-RPC deadline in event-loop seconds (``None`` disables it).
    rng:
        Random source for quorum sampling and probe order.
    repair:
        Whether partial failures trigger the probe fallback (on by default;
        the load harness counts how often it fires).
    """

    def __init__(
        self,
        system: ProbabilisticQuorumSystem,
        nodes: Sequence[ServiceNode],
        transport: AsyncTransport,
        timeout: Optional[float] = 0.05,
        rng: Optional[random.Random] = None,
        repair: bool = True,
    ) -> None:
        if len(nodes) != system.n:
            raise ConfigurationError(
                f"the system is over {system.n} servers but {len(nodes)} nodes were given"
            )
        if timeout is not None and timeout <= 0.0:
            raise ConfigurationError(f"the RPC timeout must be positive, got {timeout}")
        self.system = system
        self.nodes = list(nodes)
        self.transport = transport
        self.timeout = timeout
        self.rng = rng or fresh_rng()
        self.repair = bool(repair)
        self.probe_fallbacks = 0

    # -- raw RPC fan-out ----------------------------------------------------------

    async def _rpc(self, server: ServerId, method: str, *args: Any) -> Any:
        """One RPC; returns the reply envelope or ``None`` on timeout."""
        try:
            return await self.transport.call(
                self.nodes[server], method, *args, timeout=self.timeout
            )
        except RpcTimeoutError:
            return None

    async def _fan_out(
        self, servers: Sequence[ServerId], method: str, *args: Any
    ) -> Dict[ServerId, Any]:
        """Issue one RPC per server concurrently; map responders to payloads."""
        envelopes = await asyncio.gather(
            *(self._rpc(server, method, *args) for server in servers)
        )
        return {
            server: envelope[1]
            for server, envelope in zip(servers, envelopes)
            if envelope is not None
        }

    # -- liveness probing ---------------------------------------------------------

    def _probe_strategy(self) -> Union[UniformProbeStrategy, GreedyProbeStrategy]:
        if hasattr(self.system, "quorum_size"):
            return UniformProbeStrategy(self.system.n, int(self.system.quorum_size))
        return GreedyProbeStrategy(self.system)

    async def ping_alive(self) -> Set[ServerId]:
        """Ping every node concurrently; return the responders."""
        answers = await self._fan_out(range(self.system.n), "ping")
        return set(answers)

    async def assemble_live_quorum(self) -> ProbeResult:
        """Probe for a quorum of currently-responding servers.

        The concurrent ping sweep plays the role of the probe strategy's
        liveness oracle; the strategy then decides which live servers form
        a quorum (and reports how many probes that inspection cost).
        """
        alive = await self.ping_alive()
        oracle = oracle_from_alive_set(alive)
        strategy = self._probe_strategy()
        if isinstance(strategy, UniformProbeStrategy):
            return strategy.probe(oracle, rng=self.rng)
        return strategy.probe(oracle)

    # -- protocol operations ------------------------------------------------------

    def sample_quorum(self) -> Quorum:
        """Draw a quorum from the access strategy (sorted for stable fan-out)."""
        return self.system.sample_quorum(self.rng)

    async def write(
        self,
        variable: str,
        value: Any,
        timestamp: Any,
        signature: Optional[bytes] = None,
    ) -> WriteRpcResult:
        """Fan a write out to a strategy-drawn quorum, repairing on failure.

        Raises :class:`~repro.exceptions.QuorumUnavailableError` only when no
        server at all acknowledged and no live quorum could be assembled —
        short of that, missed servers are exactly the crash-misses the ε
        analysis accounts for.
        """
        quorum = self.sample_quorum()
        ordered = sorted(quorum)
        acks = await self._fan_out(ordered, "write", variable, value, timestamp, signature)
        retried = False
        probes = 0
        if len(acks) < len(ordered) and self.repair:
            self.probe_fallbacks += 1
            probe = await self.assemble_live_quorum()
            probes = probe.probes_used
            if probe.found:
                retried = True
                quorum = probe.quorum
                retry_acks = await self._fan_out(
                    sorted(probe.quorum), "write", variable, value, timestamp, signature
                )
                acks = {**acks, **retry_acks}
            if not acks:
                # Even a successfully probed quorum can lose every retry RPC
                # on a lossy transport; a write nobody stored must not be
                # reported as complete.
                raise QuorumUnavailableError(
                    f"write of {variable!r}: no server acknowledged "
                    f"({probe.servers_alive} answered the liveness sweep)"
                )
        return WriteRpcResult(
            quorum=quorum,
            acknowledged=frozenset(acks),
            retried=retried,
            probes_used=probes,
        )

    async def read(self, variable: str) -> ReadRpcResult:
        """Fan a read out to a strategy-drawn quorum, repairing on failure.

        Never raises: with every reply missing the register layer returns ⊥,
        which is the protocol's own account of an unreachable quorum.
        """
        quorum = self.sample_quorum()
        ordered = sorted(quorum)
        responses = await self._fan_out(ordered, "read", variable)
        retried = False
        probes = 0
        if len(responses) < len(ordered) and self.repair:
            self.probe_fallbacks += 1
            probe = await self.assemble_live_quorum()
            probes = probe.probes_used
            if probe.found:
                retried = True
                quorum = probe.quorum
                responses = await self._fan_out(sorted(probe.quorum), "read", variable)
        replies = {
            server: stored for server, stored in responses.items() if stored is not None
        }
        return ReadRpcResult(
            quorum=quorum,
            replies=replies,
            responders=len(responses),
            retried=retried,
            probes_used=probes,
        )
