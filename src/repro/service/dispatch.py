"""Batched RPC dispatch: the coalescing fast path of the service layer.

The per-RPC path (:meth:`repro.service.transport.AsyncTransport.call`) costs
one coroutine, one ``asyncio.sleep`` timer and one deadline per RPC.  At
quorum size ``q`` with a thousand concurrent clients that is thousands of
timer handles per scheduling tick — per-*operation* bookkeeping, where the
paper's whole point is that only per-*server* load should grow with traffic.

:class:`BatchedDispatcher` replaces that bookkeeping with per-server
batching:

* every RPC is appended to its destination node's pending bucket; the
  **first** RPC to reach a node in a scheduling window arms one delivery
  event (``call_later`` at the transport delay plus the window, or
  ``call_soon`` when both are zero) and every later RPC to the same node
  rides along — one timer per *(node, tick)*, not per RPC;
* a fanned-out operation is one :class:`_PendingOp`: a single future the
  caller awaits, resolved when every constituent RPC's fate is known.  An
  operation with missed RPCs (drops, crashes, silent servers) resolves at
  its *operation* deadline — at most one ``call_later`` per operation, armed
  lazily and only when a miss actually happened — so the loss-free fast path
  runs with **zero** deadline timers.

The transport still decides each message's fate: drops are sampled per
message from the transport's RNG and all failure counters
(``calls``/``dropped``/``timed_out``) live on the transport, so a report
reads identically in both modes.  What coalescing does change is jitter
granularity: the delivery delay is drawn once per (node, tick) rather than
per RPC, and RPCs joining an already-armed window are delivered with it.
Observable semantics are preserved — a missing reply still costs the caller
its deadline, and with no deadline the caller learns of the loss after the
transport delay.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.service.node import NO_REPLY, ServiceNode
from repro.service.stats import EwmaLatencyTracker
from repro.service.transport import AsyncTransport
from repro.types import ServerId

#: The two dispatch modes the service layer exposes.
DISPATCH_MODES = ("batched", "per-rpc")


class _PendingOp:
    """One fanned-out operation: shared reply dict, shared deadline.

    The caller awaits :attr:`future`, which resolves to the
    ``{server: payload}`` map of every RPC that answered.  ``deliver`` and
    ``miss`` are called from flush callbacks as each constituent RPC's fate
    becomes known; the op resolves immediately when everything answered, and
    otherwise at ``start + timeout`` (one lazily armed timer), mirroring the
    per-RPC path where a missing reply costs the caller its whole deadline.
    """

    __slots__ = (
        "loop", "future", "replies", "timeout", "start", "remaining", "misses",
        "trace",
    )

    def __init__(
        self, loop: asyncio.AbstractEventLoop, timeout: Optional[float], total: int
    ) -> None:
        self.loop = loop
        self.future = loop.create_future()
        self.replies: Dict[ServerId, Any] = {}
        self.timeout = timeout
        self.start = loop.time()
        self.remaining = total
        self.misses = 0
        self.trace: Any = None

    def deliver(self, server: ServerId, payload: Any) -> None:
        self.replies[server] = payload
        self.remaining -= 1
        if self.remaining == 0:
            self._finish()

    def miss(self, server: ServerId) -> None:
        self.misses += 1
        self.remaining -= 1
        if self.remaining == 0:
            self._finish()

    def _finish(self) -> None:
        if self.misses == 0 or self.timeout is None:
            self._resolve()
            return
        remaining = self.start + self.timeout - self.loop.time()
        if remaining <= 0.0:
            self._resolve()
        else:
            self.loop.call_later(remaining, self._resolve)

    def _resolve(self) -> None:
        if not self.future.done():
            self.future.set_result(self.replies)


class BatchedDispatcher:
    """Coalescing RPC dispatch shared by every client of one deployment.

    Parameters
    ----------
    nodes:
        The replica nodes, indexed by server id.
    transport:
        The shared transport: source of delays, drop sampling and the
        ``calls``/``dropped``/``timed_out`` counters.
    window:
        Extra coalescing time (event-loop seconds) added to the transport
        delay before a node's bucket is flushed.  ``0.0`` (the default)
        flushes on the next loop iteration at zero latency, which already
        coalesces everything enqueued by the currently runnable tasks.
    tracker:
        Optional :class:`~repro.service.stats.EwmaLatencyTracker` fed with
        per-server delivery latencies and miss penalties.
    """

    def __init__(
        self,
        nodes: Sequence[ServiceNode],
        transport: AsyncTransport,
        window: float = 0.0,
        tracker: Optional[EwmaLatencyTracker] = None,
    ) -> None:
        if window < 0.0:
            raise ConfigurationError(
                f"the dispatch window must be non-negative, got {window}"
            )
        self.nodes = list(nodes)
        self.transport = transport
        self.window = float(window)
        self.tracker = tracker
        self._pending: List[List[Tuple[_PendingOp, str, tuple]]] = [
            [] for _ in self.nodes
        ]
        self._armed: List[bool] = [False] * len(self.nodes)
        #: Delivery events fired so far (tests assert coalescing through it:
        #: with batching this is far below the RPC count).
        self.flushes = 0
        #: Fire-and-forget repair payloads awaiting each node's next flush.
        self._repairs: List[List[tuple]] = [[] for _ in self.nodes]
        #: Repair payloads delivered so far (piggybacked, never counted as
        #: transport calls: they ride delivery events that already happened).
        self.repairs_piggybacked = 0

    async def fan_out(
        self,
        servers: Sequence[ServerId],
        method: str,
        args: tuple,
        timeout: Optional[float],
        trace: Optional[Any] = None,
    ) -> Dict[ServerId, Any]:
        """Issue one logical operation: ``method`` to every listed server.

        Returns the ``{server: payload}`` map of the replies that arrived
        within the operation deadline (the batched equivalent of the per-RPC
        path's gather-over-:meth:`~AsyncTransport.call`).  A ``trace``
        collects one span per constituent RPC as its fate is flushed.
        """
        if not servers:
            # Mirror the per-RPC oracle: an empty fan-out answers instantly.
            return {}
        loop = asyncio.get_running_loop()
        op = _PendingOp(loop, timeout, len(servers))
        if trace is not None:
            op.trace = trace
        transport = self.transport
        transport.calls += len(servers)
        pending = self._pending
        armed = self._armed
        for server in servers:
            pending[server].append((op, method, args))
            if not armed[server]:
                armed[server] = True
                delay = transport.draw_delay() + self.window
                if delay > 0.0:
                    loop.call_later(delay, self._flush, server, loop.time() + delay)
                else:
                    loop.call_soon(self._flush, server, op.start)
        return await op.future

    def enqueue_repair(
        self,
        server: ServerId,
        variable: str,
        value: Any,
        timestamp: Any,
        signature: Optional[bytes],
    ) -> None:
        """Attach one read-repair payload to ``server``'s next flush.

        The repair rides the next coalesced delivery event — piggybacked, so
        it costs no RPC round and no transport call.  If nothing is armed
        for the node yet, a delivery event is armed exactly as an RPC would
        arm one, so repairs cannot starve on an idle node.
        """
        self._repairs[server].append((variable, value, timestamp, signature))
        if not self._armed[server]:
            self._armed[server] = True
            loop = asyncio.get_running_loop()
            delay = self.transport.draw_delay() + self.window
            if delay > 0.0:
                loop.call_later(delay, self._flush, server, loop.time() + delay)
            else:
                loop.call_soon(self._flush, server, loop.time())

    def _flush(self, server: ServerId, flush_at: float) -> None:
        """Deliver a node's whole pending bucket: one event per (node, tick)."""
        self._armed[server] = False
        bucket = self._pending[server]
        repairs = self._repairs[server]
        if repairs:
            # Piggybacked read-repair: delivered with the tick (the delivery
            # event has already happened, so no extra drop sampling) and
            # absorbed by the replica's merge rule — crashed and Byzantine
            # nodes refuse, exactly as in the gossip engine.
            node_handle = self.nodes[server].handle
            for variable, value, timestamp, signature in repairs:
                node_handle("repair", variable, value, timestamp, signature)
            self.repairs_piggybacked += len(repairs)
            repairs.clear()
        if not bucket:
            return
        self.flushes += 1
        node = self.nodes[server]
        transport = self.transport
        rng_draw = transport.rng.random
        drop_p = transport.drop_probability
        handle = node.handle
        tracker = self.tracker
        now = bucket[0][0].loop.time() if tracker is not None else 0.0
        for op, method, args in bucket:
            if drop_p and rng_draw() < drop_p:
                transport.dropped += 1
                if op.trace is not None:
                    op.trace.record(server, method, op.start, flush_at, "dropped")
            elif op.timeout is not None and flush_at - op.start > op.timeout:
                # Deadlines are judged per *operation* in simulated time: an
                # RPC that rode an already-armed window was enqueued after
                # the op that armed it, so its own delivery delay
                # (scheduled flush time minus its start) can be inside its
                # deadline even when the window's drawn delay is not.  Using
                # the *scheduled* flush time (not the wall clock at which
                # this callback actually ran) keeps event-loop lag from
                # counting against the transport's deadline, exactly as in
                # the per-RPC path where fates follow drawn delays.
                transport.timed_out += 1
                if op.trace is not None:
                    op.trace.record(server, method, op.start, flush_at, "timeout")
            else:
                reply = handle(method, *args)
                if reply is not NO_REPLY:
                    if tracker is not None:
                        tracker.observe(server, now - op.start)
                    if op.trace is not None:
                        op.trace.record(server, method, op.start, flush_at, "ok")
                    op.deliver(server, reply[1])
                    continue
                transport.timed_out += 1
                if op.trace is not None:
                    op.trace.record(server, method, op.start, flush_at, "silent")
            if tracker is not None:
                tracker.penalize(
                    server, op.timeout if op.timeout is not None else now - op.start
                )
            op.miss(server)
        # Reuse the bucket list across ticks instead of reallocating it.
        bucket.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"BatchedDispatcher(nodes={len(self.nodes)}, window={self.window}, "
            f"flushes={self.flushes})"
        )
