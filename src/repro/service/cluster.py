"""Process-per-shard serving: real OS processes behind the sharded client API.

:class:`~repro.service.sharding.ShardedDeployment` hosts every shard's
socket server on the *caller's* event loop — fine for conformance runs, but
the whole deployment then shares one core with the load that drives it.
This module moves each shard into its own OS process:

* :class:`ShardServerConfig` — the picklable description one shard server
  needs (scenario, sampled failure plan, bind host, codecs); it crosses the
  ``multiprocessing`` *spawn* boundary, so child processes never inherit
  the parent's interpreter state.
* :func:`_shard_server_main` — the child entry point: build the replica
  group, apply the static failure plan, serve one
  :class:`~repro.service.net.TcpServiceServer` until SIGTERM/SIGINT.
* :class:`ClusterDeployment` — spawn one server process per shard, wait
  for the readiness handshake (each child reports its ephemeral port on a
  queue), build client-side transports/dispatchers, expose the same
  :class:`~repro.service.sharding.ShardedClientAPI` surface as the in-loop
  deployment, probe shard health, and tear everything down without
  orphans (terminate → join → kill).
* :class:`ClusterClientPool` — a client-side-only view of an already
  running cluster (addresses known), used by load worker processes.
* :func:`run_cluster_load` — the multi-process load generator: partition a
  :class:`~repro.service.load.ServiceLoadSpec` across worker processes
  (each running the ordinary async client harness against the shared
  cluster) and merge the partial results into one
  :class:`~repro.service.load.ServiceLoadReport`.

The load partition is by *register key*: worker ``w`` owns the keys whose
index satisfies ``index % workers == w``, and runs both the writers and
the readers of those keys.  Readers classify against per-key issued
histories and settled-write snapshots, which are only sound when observed
in the same process that tracks them — co-locating each key's readers and
writers keeps the zero-fabrication accounting exact with no cross-process
coordination.  (This is also why live fault injection and write
``contention`` are refused in cluster mode: the first needs in-process
node objects, the second would collide writers across partitions.)

Live fault injection aside, the cluster path runs the same scenario
semantics as every other layer — the conformance suite holds its
classification rates against the Monte-Carlo engines and the in-loop
services.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import queue as queue_module
import random
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, QuorumUnavailableError, ServiceError
from repro.protocol.classification import OUTCOME_LABELS
from repro.protocol.variable import WriteOutcome
from repro.service.dispatch import DISPATCH_MODES
from repro.service.gossip import GOSSIP_SEED_SALT, GossipService, scenario_verifier
from repro.service.net import (
    TcpDispatcher,
    TcpServiceServer,
    TcpTransport,
    remote_nodes,
)
from repro.service.node import ServiceNode
from repro.service.sharding import ShardedClientAPI, _Shard, shard_for_key
from repro.service.stats import EwmaLatencyTracker
from repro.service.wire import WIRE_CODECS
from repro.simulation.failures import FailurePlan
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

#: How long :meth:`ClusterDeployment.start` waits for every shard process
#: to report readiness before tearing the partial cluster down.
DEFAULT_START_TIMEOUT = 30.0

#: Patience per process during teardown before escalating SIGTERM → SIGKILL.
_JOIN_TIMEOUT = 5.0


@dataclass(frozen=True)
class ShardServerConfig:
    """Everything one shard server process needs; crosses the spawn boundary."""

    index: int
    scenario: ScenarioSpec
    plan: FailurePlan
    host: str = "127.0.0.1"
    codecs: Tuple[str, ...] = WIRE_CODECS
    #: Optional :class:`~repro.simulation.scenario.AntiEntropySpec`: a
    #: gossiping spec arms a background gossip task next to the server.
    anti_entropy: Any = None
    #: Seed of the gossip task's peer-selection RNG.
    gossip_seed: int = 0


async def _serve_shard(config: ShardServerConfig, ready) -> None:
    nodes = [ServiceNode(server) for server in range(config.scenario.n)]
    for server in config.plan.crashed:
        nodes[server].crash()
    for server, behavior in config.plan.byzantine.items():
        nodes[server].set_behavior(behavior)
    server = TcpServiceServer(nodes, host=config.host, codecs=tuple(config.codecs))
    address = await server.start()
    gossip = None
    if config.anti_entropy is not None and config.anti_entropy.gossips:
        # Background anti-entropy runs where the replicas live: in this
        # shard's process, alongside the socket server, with the same
        # verifiability rule the scenario's register kind implies.
        gossip = GossipService(
            nodes,
            config.anti_entropy,
            rng=random.Random(config.gossip_seed),
            verify=scenario_verifier(config.scenario),
        )
        gossip.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            signal.signal(signum, lambda *_args: stop.set())
    # The readiness handshake: the parent learns the ephemeral port (and
    # that the interpreter, imports and bind all succeeded) from this one
    # message — only then does it build transports.
    ready.put((config.index, address))
    await stop.wait()
    if gossip is not None:
        await gossip.aclose()
    # Server-side metrics ride the same pipe home at shutdown: put before
    # closing the server (counters are final once stop is signalled) and
    # tagged so the parent's readiness loop can never confuse the shapes.
    ready.put(
        (
            "metrics",
            config.index,
            server.metrics_snapshot({"shard": config.index, "role": "shard-server"}),
        )
    )
    if gossip is not None:
        ready.put(
            (
                "metrics",
                config.index,
                gossip.metrics_snapshot(
                    {"shard": config.index, "role": "shard-server"}
                ),
            )
        )
    await server.aclose()


def _shard_server_main(config: ShardServerConfig, ready) -> None:
    """Child-process entry point: serve one shard until told to stop."""
    try:
        asyncio.run(_serve_shard(config, ready))
    except KeyboardInterrupt:  # SIGINT before/while the loop winds down
        pass


class ClusterDeployment(ShardedClientAPI):
    """``shards`` independent replica-group *processes*, routed by key.

    The client-facing surface (``client_for_shard``, ``new_register_client``,
    the RPC counters) is the shared :class:`ShardedClientAPI`; what differs
    from :class:`~repro.service.sharding.ShardedDeployment` is only where
    the servers live.  Per-shard failure plans, transport seeds and pool
    generators are sampled from ``rng`` in the same shard order as the
    in-loop deployment, so one seed describes the same cluster in both
    shapes.

    Parameters mirror ``ShardedDeployment`` (transport is always TCP here)
    plus ``codec`` — the wire codec client transports prefer (negotiated
    per connection; the shard servers accept every codec).  A gossiping
    ``anti_entropy`` spec (explicit, or inherited from the scenario) arms a
    background gossip task *inside each shard server process*; its counters
    ride the readiness pipe home at shutdown as extra metric snapshots.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        shards: int = 1,
        codec: str = "json",
        latency: float = 0.0,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        dispatch: str = "batched",
        latency_tracking: bool = False,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        host: str = "127.0.0.1",
        start_timeout: float = DEFAULT_START_TIMEOUT,
        anti_entropy: Optional[AntiEntropySpec] = None,
    ) -> None:
        if not isinstance(scenario, ScenarioSpec):
            raise ConfigurationError(
                f"a deployment is described over a ScenarioSpec, "
                f"got {type(scenario).__name__}"
            )
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if codec not in WIRE_CODECS:
            raise ConfigurationError(
                f"unknown wire codec {codec!r}; choose from {WIRE_CODECS}"
            )
        if dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown dispatch mode {dispatch!r}; choose from {DISPATCH_MODES}"
            )
        if rng is None:
            rng = random.Random(seed) if seed is not None else random.Random()
        if anti_entropy is None:
            anti_entropy = scenario.anti_entropy
        elif not isinstance(anti_entropy, AntiEntropySpec):
            raise ConfigurationError(
                f"anti_entropy is described by an AntiEntropySpec, "
                f"got {type(anti_entropy).__name__}"
            )
        if anti_entropy is not None and anti_entropy.fanout >= scenario.n:
            raise ConfigurationError(
                f"anti-entropy fanout {anti_entropy.fanout} must be smaller "
                f"than the replica group size {scenario.n}"
            )
        self.anti_entropy = anti_entropy
        self.scenario = scenario
        self.codec = codec
        self.transport_mode = "tcp"
        self.latency_tracking = bool(latency_tracking)
        self._knobs = (latency, jitter, drop_probability, dispatch)
        self._host = host
        self._start_timeout = float(start_timeout)
        self._started = False
        self._processes: List[Any] = []
        self._ready_queue: Optional[Any] = None
        #: ``(host, port)`` per shard, known after :meth:`start`.
        self.addresses: List[Tuple[str, int]] = []
        #: Per-shard server metric snapshots, drained from the readiness
        #: pipe during :meth:`aclose` (each child reports once at SIGTERM).
        self.server_metrics: List[dict] = []
        n = scenario.n
        self.shards: List[_Shard] = []
        for index in range(shards):
            shard = _Shard()
            shard.index = index
            shard.plan = scenario.failure_model.sample_plan_for(n, rng)
            shard.transport_seed = rng.randrange(2**63)
            shard.tracker = EwmaLatencyTracker(n) if latency_tracking else None
            shard.client_nodes = remote_nodes(n)
            shard.pool_generator = np.random.default_rng(rng.randrange(2**63))
            self.shards.append(shard)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def processes_alive(self) -> int:
        """Shard server processes currently running."""
        return sum(1 for process in self._processes if process.is_alive())

    @property
    def pids(self) -> List[int]:
        """OS pids of the shard server processes, in shard order."""
        return [process.pid for process in self._processes]

    def process_health(self) -> List[bool]:
        """Liveness of each shard's server process, in shard order."""
        return [process.is_alive() for process in self._processes]

    async def start(self) -> None:
        """Spawn the shard servers; returns once every shard reported ready."""
        if self._started:
            return
        context = multiprocessing.get_context("spawn")
        self._ready_queue = context.Queue()
        for shard in self.shards:
            config = ShardServerConfig(
                index=shard.index,
                scenario=self.scenario,
                plan=shard.plan,
                host=self._host,
                anti_entropy=self.anti_entropy,
                gossip_seed=shard.transport_seed ^ GOSSIP_SEED_SALT,
            )
            process = context.Process(
                target=_shard_server_main,
                args=(config, self._ready_queue),
                name=f"repro-shard-{shard.index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        try:
            addresses = await self._await_ready()
        except BaseException:
            await self.aclose()
            raise
        self.addresses = [addresses[index] for index in range(len(self.shards))]
        latency, jitter, drop_probability, dispatch = self._knobs
        for shard, address in zip(self.shards, self.addresses):
            shard.transport = TcpTransport(
                address,
                latency=latency,
                jitter=jitter,
                drop_probability=drop_probability,
                seed=shard.transport_seed,
                codec=self.codec,
                trace=self.tracer is not None,
            )
            await shard.transport.connect()
            if dispatch == "batched":
                shard.dispatcher = TcpDispatcher(shard.transport, tracker=shard.tracker)
        self._started = True

    async def _await_ready(self) -> Dict[int, Tuple[str, int]]:
        loop = asyncio.get_running_loop()
        addresses: Dict[int, Tuple[str, int]] = {}
        deadline = time.monotonic() + self._start_timeout
        while len(addresses) < len(self.shards):
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {self._start_timeout}s waiting for "
                    f"{len(self.shards) - len(addresses)} shard server(s) to start"
                )
            for index, process in enumerate(self._processes):
                # A child that died before reporting will never report.
                if process.exitcode is not None and index not in addresses:
                    raise ServiceError(
                        f"shard server {process.name} exited with code "
                        f"{process.exitcode} before reporting readiness"
                    )
            try:
                index, address = await loop.run_in_executor(
                    None, self._ready_queue.get, True, 0.25
                )
            except queue_module.Empty:
                continue
            addresses[index] = address
        return addresses

    async def aclose(self) -> None:
        """Close transports and reap every shard process (idempotent).

        Escalates per process: SIGTERM (the child closes its server and
        exits its loop), then SIGKILL after :data:`_JOIN_TIMEOUT`.  After
        this returns no child of the deployment is left running.
        """
        for shard in self.shards:
            if shard.transport is not None:
                await shard.transport.aclose()
                shard.transport = None
            shard.dispatcher = None
        loop = asyncio.get_running_loop()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            await loop.run_in_executor(None, process.join, _JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - SIGTERM is normally enough
                process.kill()
                await loop.run_in_executor(None, process.join, _JOIN_TIMEOUT)
        for process in self._processes:
            try:
                process.close()
            except ValueError:  # pragma: no cover - still-running after SIGKILL
                pass
        self._processes = []
        if self._ready_queue is not None:
            # Every child reported its server metrics on this pipe right
            # after SIGTERM; with all processes joined, whatever is queued
            # is all there will ever be.
            while True:
                try:
                    message = self._ready_queue.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    break
                if (
                    isinstance(message, tuple)
                    and len(message) == 3
                    and message[0] == "metrics"
                ):
                    self.server_metrics.append(message[2])
            self._ready_queue.close()
            self._ready_queue.cancel_join_thread()
            self._ready_queue = None
        self._started = False

    def metrics_snapshots(self, labels: Optional[Dict[str, Any]] = None) -> List[dict]:
        """Client-side snapshots plus whatever the shard servers reported."""
        return super().metrics_snapshots(labels) + list(self.server_metrics)

    async def __aenter__(self) -> "ClusterDeployment":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- health -------------------------------------------------------------------

    async def probe(self, timeout: float = 1.0) -> List[bool]:
        """Ping one correct replica per shard; ``True`` where the shard serves.

        Complements :meth:`process_health` (a live process whose server
        wedged still fails the probe).  Probes a replica the failure plan
        left correct — a statically crashed replica is *supposed* to stay
        silent and would fail the probe of a perfectly healthy shard.
        """
        results = []
        for shard in self.shards:
            target = next(
                (
                    node
                    for node in shard.client_nodes
                    if node.server_id not in shard.plan.faulty_servers
                ),
                shard.client_nodes[0],
            )
            try:
                reply = await shard.transport.call(target, "ping", timeout=timeout)
                results.append(isinstance(reply, tuple) and reply[0] == "ok")
            except Exception:
                results.append(False)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ClusterDeployment({self.scenario.describe()}, "
            f"shards={len(self.shards)}, codec={self.codec!r}, "
            f"alive={self.processes_alive})"
        )


class ClusterClientPool(ShardedClientAPI):
    """Client-side view of a cluster that is already serving.

    Load worker processes construct one of these from the parent's shard
    addresses: same routing, same client API, no server ownership — closing
    the pool closes sockets, never processes.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        addresses: Sequence[Tuple[str, int]],
        codec: str = "json",
        latency: float = 0.0,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        dispatch: str = "batched",
        transport_seeds: Optional[Sequence[int]] = None,
        pool_seeds: Optional[Sequence[int]] = None,
    ) -> None:
        self.scenario = scenario
        self.codec = codec
        self.transport_mode = "tcp"
        self._started = False
        self._knobs = (latency, jitter, drop_probability, dispatch)
        self.addresses = [(str(host), int(port)) for host, port in addresses]
        n = scenario.n
        self.shards: List[_Shard] = []
        for index, _address in enumerate(self.addresses):
            shard = _Shard()
            shard.index = index
            shard.transport_seed = (
                transport_seeds[index] if transport_seeds is not None else index
            )
            shard.client_nodes = remote_nodes(n)
            shard.pool_generator = np.random.default_rng(
                pool_seeds[index] if pool_seeds is not None else index
            )
            self.shards.append(shard)

    async def start(self) -> None:
        if self._started:
            return
        latency, jitter, drop_probability, dispatch = self._knobs
        for shard, address in zip(self.shards, self.addresses):
            shard.transport = TcpTransport(
                address,
                latency=latency,
                jitter=jitter,
                drop_probability=drop_probability,
                seed=shard.transport_seed,
                codec=self.codec,
                trace=self.tracer is not None,
            )
            await shard.transport.connect()
            if dispatch == "batched":
                shard.dispatcher = TcpDispatcher(shard.transport)
        self._started = True

    async def aclose(self) -> None:
        for shard in self.shards:
            if shard.transport is not None:
                await shard.transport.aclose()
                shard.transport = None
            shard.dispatcher = None
        self._started = False

    async def __aenter__(self) -> "ClusterClientPool":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


# -- the multi-process load generator ----------------------------------------------


@dataclass(frozen=True)
class LoadWorkerConfig:
    """One load worker's slice of a cluster workload (fully picklable).

    The partition is by key: ``keys``/``key_ranks`` are the worker's subset
    of the global key list (global zipf ranks preserved, so the merged key
    distribution matches the single-process workload), ``versions`` the
    global write version numbers that land on those keys, ``readers`` how
    many reader clients this worker runs, and ``writer_id_base`` the first
    of its ``spec.resolved_writers`` globally unique writer identities.
    """

    worker: int
    spec: Any  # ServiceLoadSpec (typed loosely to avoid the import cycle)
    addresses: Tuple[Tuple[str, int], ...]
    keys: Tuple[str, ...]
    key_ranks: Tuple[int, ...]
    versions: Tuple[int, ...]
    readers: int
    writer_id_base: int
    seed: int
    transport_seeds: Tuple[int, ...]
    pool_seeds: Tuple[int, ...]


def merge_worker_provenance(values: Sequence[Any]) -> Any:
    """Merge per-worker provenance fields (``loop_driver``, ``codec``).

    Returns the single shared value when every worker agrees and the
    per-worker list (worker order preserved) when they differ — never
    silently the first worker's value.
    """
    merged = list(values)
    if merged and all(value == merged[0] for value in merged[1:]):
        return merged[0]
    return merged


def _worker_key_cdf(ranks: Sequence[int], skew: float) -> List[float]:
    """Cumulative weights over a worker's keys, from their *global* ranks."""
    weights = [1.0 / float(rank + 1) ** skew for rank in ranks]
    total = sum(weights)
    cdf: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cdf.append(running)
    cdf[-1] = 1.0
    return cdf


async def _drive_worker(config: LoadWorkerConfig) -> Dict[str, Any]:
    """Run one worker's share of the load; return a picklable partial report."""
    # Imported lazily: this runs inside worker processes too, and the load
    # module imports this one's runner (cycle broken at call time).
    from repro.obs.monitor import EpsilonMonitor
    from repro.obs.trace import Tracer
    from repro.service.load import classify_service_read, key_names

    spec = config.spec
    scenario = spec.scenario
    rng = random.Random(config.seed)
    pool = ClusterClientPool(
        scenario,
        config.addresses,
        codec=spec.codec,
        latency=spec.latency,
        jitter=spec.jitter,
        drop_probability=spec.drop_probability,
        dispatch=spec.dispatch,
        transport_seeds=config.transport_seeds,
        pool_seeds=config.pool_seeds,
    )
    # Installed before start(): the pool's transports offer the trace
    # extension in their handshakes only when a tracer exists.  Disjoint
    # id bases keep trace ids globally unique across workers.
    tracer = (
        Tracer(
            sample_rate=spec.trace_sample,
            seed=config.seed,
            id_base=config.worker << 40,
        )
        if getattr(spec, "trace_sample", 0.0) > 0.0
        else None
    )
    pool.tracer = tracer
    # Clients opened by this pool piggyback read-repair within the spec's
    # budget; the gossip half of anti-entropy runs server-side.
    pool.anti_entropy = getattr(spec, "resolved_anti_entropy", None)
    monitor = (
        EpsilonMonitor.for_scenario(scenario)
        if getattr(spec, "monitor_epsilon", False)
        else None
    )
    await pool.start()
    try:
        writer_count = spec.resolved_writers
        writers = [
            pool.new_register_client(
                rng,
                deadline=spec.deadline,
                selection=spec.selection,
                quorum_pool=spec.quorum_pool,
                writer_id=config.writer_id_base + index,
            )
            for index in range(writer_count)
        ]
        readers = [
            pool.new_register_client(
                rng,
                deadline=spec.deadline,
                selection=spec.selection,
                quorum_pool=spec.quorum_pool,
            )
            for _ in range(config.readers)
        ]
        global_names = key_names(spec.keys)
        names = list(config.keys)
        shard_of = {name: shard_for_key(name, spec.shards) for name in names}
        cdf = _worker_key_cdf(config.key_ranks, spec.key_skew) if len(names) > 1 else None
        reader_rngs = [
            random.Random(rng.randrange(2**63)) for _ in range(config.readers)
        ]

        history: Dict[str, Dict[Any, Any]] = {name: {} for name in names}
        settled: Dict[str, Optional[WriteOutcome]] = {name: None for name in names}
        outcomes: Dict[str, int] = {label: 0 for label in OUTCOME_LABELS}
        read_latencies: List[float] = []
        write_latencies: List[float] = []
        shard_ops = [0] * spec.shards
        counters = {"reads": 0, "writes": 0, "write_failures": 0}

        for writer in writers:
            writer.on_issued = (
                lambda key, timestamp, value: history[key].__setitem__(timestamp, value)
            )

        def settle(key: str, outcome: WriteOutcome) -> None:
            current = settled[key]
            if current is None or current.timestamp < outcome.timestamp:
                settled[key] = outcome

        async def run_writer(writer_index: int) -> None:
            writer = writers[writer_index]
            for version in config.versions:
                if version % writer_count != writer_index:
                    continue
                key = global_names[version % spec.keys]
                if writer_count == 1:
                    value = (scenario.workload.written_value, version)
                else:
                    value = (scenario.workload.written_value, writer_index, version)
                started = time.perf_counter()
                try:
                    outcome = await writer.write(key, value)
                except QuorumUnavailableError:
                    counters["write_failures"] += 1
                else:
                    write_latencies.append(time.perf_counter() - started)
                    settle(key, outcome)
                    counters["writes"] += 1
                    shard_ops[shard_of[key]] += 1
                if spec.write_interval:
                    await asyncio.sleep(spec.write_interval)

        async def run_reader(reader, index: int) -> None:
            for _ in range(spec.reads_per_client):
                if len(names) == 1:
                    key = names[0]
                else:
                    key = reader_rngs[index].choices(names, cum_weights=cdf)[0]
                snapshot = settled[key]
                started = time.perf_counter()
                outcome = await reader.read(key)
                read_latencies.append(time.perf_counter() - started)
                label = classify_service_read(outcome, snapshot, history[key])
                outcomes[label] += 1
                if tracer is not None and reader.last_trace is not None:
                    reader.last_trace.classification = label
                if monitor is not None:
                    monitor.observe(label)
                counters["reads"] += 1
                shard_ops[shard_of[key]] += 1

        started = time.perf_counter()
        await asyncio.gather(
            *(run_writer(index) for index in range(writer_count)),
            *(run_reader(reader, index) for index, reader in enumerate(readers)),
        )
        elapsed = time.perf_counter() - started
        negotiated = {
            (shard.transport.negotiated_codec or "json") for shard in pool.shards
        }
        return {
            "elapsed": elapsed,
            "reads": counters["reads"],
            "writes": counters["writes"],
            "write_failures": counters["write_failures"],
            "outcomes": outcomes,
            "read_latencies": read_latencies,
            "write_latencies": write_latencies,
            "rpc_calls": pool.rpc_calls,
            "rpc_dropped": pool.rpc_dropped,
            "rpc_timeouts": pool.rpc_timeouts,
            "probe_fallbacks": sum(client.probe_fallbacks for client in writers)
            + sum(client.probe_fallbacks for client in readers),
            "repairs_piggybacked": pool.repairs_piggybacked,
            "shard_ops": shard_ops,
            # Provenance the merge must not flatten to the first worker's
            # values: each worker reports what actually drove and carried
            # *its* slice of the load.
            "loop_driver": "asyncio",
            "codec": (
                negotiated.pop() if len(negotiated) == 1 else sorted(negotiated)
            ),
            "traces": tracer.to_dicts() if tracer is not None else [],
            "metrics": pool.metrics_snapshots({"worker": config.worker}),
            "epsilon_alerts": list(monitor.alerts) if monitor is not None else [],
            "epsilon_monitor": monitor.to_dict() if monitor is not None else None,
        }
    finally:
        await pool.aclose()


def _load_worker_main(config: LoadWorkerConfig) -> Dict[str, Any]:
    """Worker-process entry point (also runnable in the parent for 1 worker)."""
    return asyncio.run(_drive_worker(config))


def _warm_worker() -> None:
    """Pre-import the harness in a pool worker (keeps spawn cost untimed)."""
    import repro.service.load  # noqa: F401  (the heavy transitive imports)


def partition_load(
    spec: Any, addresses: Sequence[Tuple[str, int]], rng: random.Random
) -> List[LoadWorkerConfig]:
    """Split one load spec into per-worker configs (keys, clients, writes)."""
    from repro.service.load import key_names

    workers = spec.processes
    names = key_names(spec.keys)
    configs: List[LoadWorkerConfig] = []
    base_clients, extra_clients = divmod(spec.clients, workers)
    for worker in range(workers):
        ranks = tuple(range(worker, spec.keys, workers))
        keys = tuple(names[rank] for rank in ranks)
        versions = tuple(
            version
            for version in range(spec.writes)
            if (version % spec.keys) % workers == worker
        )
        configs.append(
            LoadWorkerConfig(
                worker=worker,
                spec=spec,
                addresses=tuple(addresses),
                keys=keys,
                key_ranks=ranks,
                versions=versions,
                readers=base_clients + (1 if worker < extra_clients else 0),
                writer_id_base=spec.scenario.writer_id
                + worker * spec.resolved_writers,
                seed=rng.randrange(2**63),
                transport_seeds=tuple(
                    rng.randrange(2**63) for _ in range(len(addresses))
                ),
                pool_seeds=tuple(rng.randrange(2**63) for _ in range(len(addresses))),
            )
        )
    return configs


async def _cluster_load(spec: Any):
    from repro.service.load import ServiceLoadReport

    rng = random.Random(spec.seed)
    cluster = ClusterDeployment(
        spec.scenario,
        shards=spec.shards,
        codec=spec.codec,
        latency=spec.latency,
        jitter=spec.jitter,
        drop_probability=spec.drop_probability,
        dispatch=spec.dispatch,
        latency_tracking=spec.selection == "latency-aware",
        rng=rng,
        anti_entropy=spec.resolved_anti_entropy,
    )
    try:
        await cluster.start()
        configs = partition_load(spec, cluster.addresses, rng)
        if len(configs) == 1:
            # One worker: drive it on this loop, skipping a process hop.
            started = time.perf_counter()
            results = [await _drive_worker(configs[0])]
            elapsed = time.perf_counter() - started
        else:
            loop = asyncio.get_running_loop()
            context = multiprocessing.get_context("spawn")
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=len(configs), mp_context=context
            ) as executor:
                # Spawn + import every pool worker before the clock starts:
                # interpreter startup is deployment cost, not workload cost.
                await asyncio.gather(
                    *(
                        loop.run_in_executor(executor, _warm_worker)
                        for _ in configs
                    )
                )
                started = time.perf_counter()
                results = list(
                    await asyncio.gather(
                        *(
                            loop.run_in_executor(executor, _load_worker_main, config)
                            for config in configs
                        )
                    )
                )
                elapsed = time.perf_counter() - started
        outcomes = {label: 0 for label in OUTCOME_LABELS}
        shard_ops = [0] * spec.shards
        read_latencies: List[float] = []
        write_latencies: List[float] = []
        traces: List[dict] = []
        metrics: List[dict] = []
        epsilon_alerts: List[dict] = []
        for result in results:
            for label, count in result["outcomes"].items():
                outcomes[label] = outcomes.get(label, 0) + count
            for index, ops in enumerate(result["shard_ops"]):
                shard_ops[index] += ops
            read_latencies.extend(result["read_latencies"])
            write_latencies.extend(result["write_latencies"])
            traces.extend(result["traces"])
            metrics.extend(result["metrics"])
            epsilon_alerts.extend(result["epsilon_alerts"])
        monitors = [
            result["epsilon_monitor"]
            for result in results
            if result["epsilon_monitor"] is not None
        ]
        epsilon_monitor = None
        if monitors:
            observed = sum(monitor["observed"] for monitor in monitors)
            errors = sum(monitor["errors"] for monitor in monitors)
            epsilon_monitor = {
                "epsilon": monitors[0]["epsilon"],
                "slack": monitors[0]["slack"],
                "window": monitors[0]["window"],
                "min_samples": monitors[0]["min_samples"],
                "observed": observed,
                "errors": errors,
                # The most alarming worker window: windows do not compose
                # across processes, so report the worst one seen.
                "window_rate": max(monitor["window_rate"] for monitor in monitors),
                "total_rate": errors / observed if observed else 0.0,
                "alerts": epsilon_alerts,
            }
        report = ServiceLoadReport(
            spec=spec,
            elapsed=elapsed,
            reads_completed=sum(result["reads"] for result in results),
            writes_completed=sum(result["writes"] for result in results),
            write_failures=sum(result["write_failures"] for result in results),
            outcomes=outcomes,
            read_latencies=read_latencies,
            write_latencies=write_latencies,
            rpc_calls=sum(result["rpc_calls"] for result in results),
            rpc_dropped=sum(result["rpc_dropped"] for result in results),
            rpc_timeouts=sum(result["rpc_timeouts"] for result in results),
            probe_fallbacks=sum(result["probe_fallbacks"] for result in results),
            repairs_piggybacked=sum(
                result.get("repairs_piggybacked", 0) for result in results
            ),
            injected_crashes=0,
            dispatch_flushes=0,
            transport="tcp",
            shard_ops=shard_ops,
            loop_driver=merge_worker_provenance(
                [result["loop_driver"] for result in results]
            ),
            codec=merge_worker_provenance([result["codec"] for result in results]),
            traces=traces,
            metrics=metrics,
            epsilon_alerts=epsilon_alerts,
            epsilon_monitor=epsilon_monitor,
        )
    finally:
        await cluster.aclose()
    # The shard servers report their metric snapshots on the readiness pipe
    # at SIGTERM, so they only exist once aclose() has drained it — and the
    # gossip-round tally the report carries comes from those snapshots too.
    report.metrics.extend(cluster.server_metrics)
    report.gossip_rounds = sum(
        snapshot.get("counters", {}).get("gossip_rounds", 0)
        for snapshot in cluster.server_metrics
    )
    return report


def run_cluster_load(spec: Any):
    """Run one cluster load experiment (sync entry; parent of all workers)."""
    return asyncio.run(_cluster_load(spec))
