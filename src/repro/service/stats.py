"""Per-server latency statistics for the service layer.

:class:`EwmaLatencyTracker` keeps one exponentially weighted moving average
of observed RPC latency per replica server.  The batched dispatcher (and the
per-RPC client path) feed it two kinds of observations:

* :meth:`observe` — a reply arrived after ``seconds`` of event-loop time;
* :meth:`penalize` — the server missed (drop, crash, silence): the caller
  paid its whole deadline, which is exactly the cost the tracker records.

The tracker powers the service layer's **opt-in** latency-aware quorum
selection (:meth:`biased_quorum`): servers with lower latency estimates are
preferred via exact weighted sampling without replacement (Gumbel top-``k``
over ``log``-weights ``w ∝ 1/(ewma + floor)``).

.. warning::
   Latency-aware selection *deviates from the access strategy*.  The paper's
   ε guarantee — and in particular the ``|Q ∩ B|`` accounting of Lemma 5.7
   that the masking read threshold relies on — holds only for
   strategy-drawn quorums, so this mode trades the probabilistic guarantee
   for tail latency.  The service layer refuses it outright when the
   deployed scenario contains Byzantine servers and warns everywhere else;
   the strategy-faithful path stays the default.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Additive floor (seconds) under the inverse-latency weights, so a server
#: with a ~zero estimate cannot absorb the whole distribution.
WEIGHT_FLOOR = 1e-6


class EwmaLatencyTracker:
    """Per-server EWMA latency estimates over ``n`` replica servers.

    Parameters
    ----------
    n:
        Universe size (one estimate per server).
    alpha:
        EWMA smoothing factor in ``(0, 1]``: the weight of the newest
        observation.
    initial:
        Starting estimate for every server, in seconds.  A small optimistic
        value keeps unobserved servers attractive enough to be explored.
    """

    __slots__ = ("_n", "_alpha", "_ewma", "observations", "penalties")

    def __init__(self, n: int, alpha: float = 0.2, initial: float = 0.001) -> None:
        if n < 1:
            raise ConfigurationError(f"the tracker needs at least one server, got n={n}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must lie in (0, 1], got {alpha}")
        if initial <= 0.0:
            raise ConfigurationError(
                f"the initial latency estimate must be positive, got {initial}"
            )
        self._n = int(n)
        self._alpha = float(alpha)
        self._ewma = np.full(self._n, float(initial), dtype=np.float64)
        self.observations = 0
        self.penalties = 0

    @property
    def n(self) -> int:
        """Number of tracked servers."""
        return self._n

    @property
    def alpha(self) -> float:
        """The EWMA smoothing factor."""
        return self._alpha

    def estimate(self, server: int) -> float:
        """The current latency estimate of one server, in seconds."""
        return float(self._ewma[server])

    def estimates(self) -> List[float]:
        """A copy of all per-server estimates (report/debug use)."""
        return self._ewma.tolist()

    def _update(self, server: int, seconds: float) -> None:
        self._ewma[server] += self._alpha * (seconds - self._ewma[server])

    def observe(self, server: int, seconds: float) -> None:
        """Fold one successful RPC's observed latency into the estimate."""
        self.observations += 1
        self._update(server, seconds)

    def penalize(self, server: int, seconds: float) -> None:
        """Fold one missed RPC in: the caller paid ``seconds`` for nothing."""
        self.penalties += 1
        self._update(server, seconds)

    def biased_quorum(
        self,
        size: int,
        generator: Optional[np.random.Generator] = None,
        rng: Optional[random.Random] = None,
    ) -> Tuple[int, ...]:
        """Draw ``size`` distinct servers biased toward low latency.

        Exact weighted sampling without replacement with weights
        ``w_u ∝ 1 / (ewma_u + floor)`` via the Gumbel top-``k`` trick:
        perturb each server's ``log w_u`` with i.i.d. Gumbel noise and keep
        the ``size`` largest keys.  Returns a sorted tuple of server ids.
        """
        if not 0 < size <= self._n:
            raise ConfigurationError(
                f"quorum size must lie in (0, {self._n}], got {size}"
            )
        if generator is None:
            seed = rng.randrange(2**63) if rng is not None else None
            generator = np.random.default_rng(seed)
        keys = generator.gumbel(size=self._n) - np.log(self._ewma + WEIGHT_FLOOR)
        if size == self._n:
            chosen = np.arange(self._n)
        else:
            chosen = np.argpartition(-keys, size - 1)[:size]
            chosen.sort()
        return tuple(int(server) for server in chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"EwmaLatencyTracker(n={self._n}, alpha={self._alpha}, "
            f"observations={self.observations}, penalties={self.penalties})"
        )
