"""The deployment facade: one front door to the live service layer.

The service stack is deliberately layered — scenario specs, sharded
deployments, per-shard quorum clients, register frontends, lock handles —
and wiring them by hand takes half a dozen imports.  This module is the
single entry point that composes them:

>>> from repro.api import Deployment
>>> deployment = (
...     Deployment.builder(scenario)
...     .transport("inproc")
...     .shards(2)
...     .deadline(0.05)
...     .seed(7)
...     .build()
... )
>>> async with deployment:                       # doctest: +SKIP
...     registers = deployment.connect()         # register client
...     await registers.write("x", "hello")
...     outcome = await registers.read("x")
...     lock = deployment.lock_client("leader", client_id=1)
...     grant = await lock.acquire()
...     await lock.release()

Everything the facade hands out runs the same code paths the conformance
suite pins down: registers route through
:class:`~repro.service.sharding.ShardedAsyncRegisterClient` (the scenario's
protocol per key, shared deterministic selection), and lock handles are
:class:`~repro.apps.mutex.AsyncQuorumMutex` over the same quorum clients.
The builder's knob names (``deadline``, ``seed``, ``dispatch``,
``selection``, ``codec``, ``processes``, ``anti_entropy``) are the
canonical spellings used across
:class:`~repro.service.client.AsyncQuorumClient`,
:class:`~repro.service.sharding.ShardedDeployment` and
:class:`~repro.service.load.ServiceLoadSpec`; the pre-facade aliases
(``timeout``, ``rpc_timeout``) keep working with a ``DeprecationWarning``.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.exceptions import ConfigurationError
from repro.service.client import DEFAULT_QUORUM_POOL, SELECTION_MODES
from repro.service.dispatch import DISPATCH_MODES
from repro.service.sharding import (
    TRANSPORT_MODES,
    ShardedAsyncRegisterClient,
    ShardedDeployment,
)
from repro.service.wire import WIRE_CODECS
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

__all__ = ["Deployment", "DeploymentBuilder"]


class DeploymentBuilder:
    """Fluent configuration for a :class:`Deployment`.

    Every setter returns the builder; :meth:`build` materialises the
    deployment (servers are not started until ``await deployment.start()``
    or ``async with deployment:``).
    """

    def __init__(self, scenario: ScenarioSpec) -> None:
        if not isinstance(scenario, ScenarioSpec):
            raise ConfigurationError(
                f"a deployment is described over a ScenarioSpec, "
                f"got {type(scenario).__name__}"
            )
        self._scenario = scenario
        self._transport = "inproc"
        self._shards = 1
        self._deadline: Optional[float] = 0.05
        self._seed: Optional[int] = None
        self._dispatch = "batched"
        self._selection = "strategy"
        self._latency = 0.0
        self._jitter = 0.0
        self._drop_probability = 0.0
        self._quorum_pool = DEFAULT_QUORUM_POOL
        self._codec = "json"
        self._processes = 0
        self._trace_sample = 0.0
        self._anti_entropy: Optional[AntiEntropySpec] = None

    def transport(self, mode: str) -> "DeploymentBuilder":
        """``"inproc"`` (simulated message passing) or ``"tcp"`` (localhost sockets)."""
        if mode not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"unknown transport {mode!r}; choose from {TRANSPORT_MODES}"
            )
        self._transport = mode
        return self

    def shards(self, count: int) -> "DeploymentBuilder":
        """Independent replica groups register keys are hashed across."""
        if count < 1:
            raise ConfigurationError(f"need at least one shard, got {count}")
        self._shards = int(count)
        return self

    def deadline(self, seconds: Optional[float]) -> "DeploymentBuilder":
        """Per-RPC deadline for every client built by this deployment."""
        if seconds is not None and seconds <= 0:
            raise ConfigurationError(f"the deadline must be positive, got {seconds}")
        self._deadline = seconds
        return self

    def seed(self, seed: int) -> "DeploymentBuilder":
        """Root seed: failure sampling, transport noise and client RNGs."""
        self._seed = int(seed)
        return self

    def dispatch(self, mode: str) -> "DeploymentBuilder":
        """``"batched"`` (coalescing fast path) or ``"per-rpc"`` (the oracle)."""
        if mode not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown dispatch mode {mode!r}; choose from {DISPATCH_MODES}"
            )
        self._dispatch = mode
        return self

    def selection(self, mode: str) -> "DeploymentBuilder":
        """``"strategy"`` (ε-faithful) or ``"latency-aware"`` (benign only)."""
        if mode not in SELECTION_MODES:
            raise ConfigurationError(
                f"unknown selection mode {mode!r}; choose from {SELECTION_MODES}"
            )
        self._selection = mode
        return self

    def conditions(
        self,
        latency: float = 0.0,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
    ) -> "DeploymentBuilder":
        """Transport conditions (added to the real socket cost over TCP)."""
        self._latency = latency
        self._jitter = jitter
        self._drop_probability = drop_probability
        return self

    def codec(self, name: str) -> "DeploymentBuilder":
        """Wire codec the TCP clients prefer: ``"json"`` or ``"binary"``.

        Negotiated per connection via a hello frame, so a ``"binary"``
        deployment still interoperates with JSON-only peers.  Only
        meaningful over ``transport("tcp")`` — the in-process transport
        passes payloads by reference.
        """
        if name not in WIRE_CODECS:
            raise ConfigurationError(
                f"unknown wire codec {name!r}; choose from {WIRE_CODECS}"
            )
        self._codec = name
        return self

    def processes(self, count: int) -> "DeploymentBuilder":
        """Process-backed serving: one server process per shard.

        ``count > 0`` turns the deployment into a
        :class:`~repro.service.cluster.ClusterDeployment` — every shard's
        ``TcpServiceServer`` runs in its own spawned process with a
        readiness handshake, health probes and clean teardown.  Implies
        ``transport("tcp")`` (real sockets are the only way across a
        process boundary).  ``count`` beyond 1 is a hint for load
        harnesses (worker processes); the server side always runs one
        process per shard.
        """
        if count < 0:
            raise ConfigurationError(
                f"the process count must be non-negative, got {count}"
            )
        self._processes = int(count)
        return self

    def trace_sample(self, rate: float) -> "DeploymentBuilder":
        """Fraction of quorum operations traced end to end, in ``[0, 1]``.

        0 (the default) keeps the hot path entirely instrumentation-free;
        above 0 a :class:`~repro.obs.trace.Tracer` is shared by every client
        the deployment hands out, and over TCP the trace id is negotiated
        into the wire envelope so server processes can attribute requests.
        Collected traces come back from :meth:`Deployment.traces`.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"the trace sample rate must lie in [0, 1], got {rate}"
            )
        self._trace_sample = float(rate)
        return self

    def anti_entropy(
        self,
        spec: Optional[AntiEntropySpec] = None,
        *,
        fanout: int = 2,
        rounds: int = 1,
        interval: float = 0.002,
        repair_budget: int = 4,
    ) -> "DeploymentBuilder":
        """Arm background freshness (§1.1 diffusion) for the deployment.

        Pass an explicit :class:`~repro.simulation.scenario.AntiEntropySpec`
        or use the keyword knobs to build one.  Clients the deployment
        hands out then piggyback up to ``repair_budget`` read-repairs onto
        their coalesced deliveries and skip the probe-fallback round when a
        partial reply set can already settle a value; a gossiping spec
        (``fanout > 0``) additionally runs one background push-gossip task
        per shard.  Without this call the deployment inherits the
        scenario's own ``anti_entropy`` axis (off by default).
        """
        if spec is None:
            spec = AntiEntropySpec(
                fanout=fanout,
                rounds=rounds,
                interval=interval,
                repair_budget=repair_budget,
            )
        elif not isinstance(spec, AntiEntropySpec):
            raise ConfigurationError(
                f"anti_entropy is described by an AntiEntropySpec, "
                f"got {type(spec).__name__}"
            )
        self._anti_entropy = spec
        return self

    def quorum_pool(self, size: int) -> "DeploymentBuilder":
        """Strategy quorums pre-sampled per client (0 disables pooling)."""
        if size < 0:
            raise ConfigurationError(
                f"the quorum pool size must be non-negative, got {size}"
            )
        self._quorum_pool = int(size)
        return self

    def build(self) -> "Deployment":
        """Materialise the deployment (servers start on ``start()``)."""
        if self._processes > 0:
            self._transport = "tcp"  # process boundaries need real sockets
        if self._transport == "tcp" and self._deadline is None:
            raise ConfigurationError(
                "deadline=None is refused over transport='tcp' (a silent "
                "replica would block the caller forever)"
            )
        return Deployment(self)


class Deployment:
    """A deployed scenario handing out register and lock clients.

    Build with :meth:`builder`; bring up with ``async with`` (or explicit
    :meth:`start` / :meth:`aclose` — in-process deployments are usable
    immediately, TCP ones bind their sockets on start).
    """

    def __init__(self, builder: DeploymentBuilder) -> None:
        if not isinstance(builder, DeploymentBuilder):
            raise ConfigurationError(
                "construct deployments through Deployment.builder(scenario)"
            )
        self._rng = random.Random(builder._seed)
        self.scenario = builder._scenario
        self.deadline = builder._deadline
        self.dispatch = builder._dispatch
        self.selection = builder._selection
        self.quorum_pool = builder._quorum_pool
        self.processes = builder._processes
        self.trace_sample = builder._trace_sample
        if builder._processes > 0:
            # Imported here: the cluster module drags multiprocessing along,
            # which in-loop deployments never need.
            from repro.service.cluster import ClusterDeployment

            self.sharded = ClusterDeployment(
                builder._scenario,
                shards=builder._shards,
                codec=builder._codec,
                latency=builder._latency,
                jitter=builder._jitter,
                drop_probability=builder._drop_probability,
                dispatch=builder._dispatch,
                latency_tracking=builder._selection == "latency-aware",
                rng=self._rng,
                anti_entropy=builder._anti_entropy,
            )
        else:
            self.sharded = ShardedDeployment(
                builder._scenario,
                shards=builder._shards,
                transport=builder._transport,
                codec=builder._codec,
                latency=builder._latency,
                jitter=builder._jitter,
                drop_probability=builder._drop_probability,
                dispatch=builder._dispatch,
                latency_tracking=builder._selection == "latency-aware",
                rng=self._rng,
                anti_entropy=builder._anti_entropy,
            )
        self.tracer = None
        if builder._trace_sample > 0.0:
            # Imported lazily so untraced deployments never touch repro.obs.
            from repro.obs.trace import Tracer

            self.tracer = Tracer(
                sample_rate=builder._trace_sample,
                seed=0 if builder._seed is None else builder._seed,
            )
            # Must be set before start(): TCP transports decide whether to
            # offer the trace extension when they negotiate their hello.
            self.sharded.tracer = self.tracer

    @classmethod
    def builder(cls, scenario: ScenarioSpec) -> DeploymentBuilder:
        """Start configuring a deployment of ``scenario``."""
        return DeploymentBuilder(scenario)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def transport(self) -> str:
        """Which transport carries the RPCs ("inproc" or "tcp")."""
        return self.sharded.transport_mode

    @property
    def shard_count(self) -> int:
        """How many independent replica groups the deployment runs."""
        return self.sharded.shard_count

    async def start(self) -> "Deployment":
        """Bring the deployment up (binds socket servers in TCP mode)."""
        await self.sharded.start()
        return self

    async def aclose(self) -> None:
        """Tear the deployment down (idempotent)."""
        await self.sharded.aclose()

    async def __aenter__(self) -> "Deployment":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- observability ------------------------------------------------------------

    def metrics(self) -> dict:
        """One merged metrics snapshot for the whole deployment.

        Folds the per-component snapshots (client-side RPC counters, every
        in-loop shard server, and — after ``aclose()`` on a cluster — the
        per-process server snapshots shipped back over the readiness pipe)
        with :func:`repro.obs.metrics.merge_snapshots`.
        """
        from repro.obs.metrics import merge_snapshots

        return merge_snapshots(self.sharded.metrics_snapshots())

    def traces(self) -> list:
        """Every quorum trace collected so far, in JSON-ready dict form.

        Empty unless the deployment was built with a positive
        :meth:`DeploymentBuilder.trace_sample` rate.
        """
        return [] if self.tracer is None else self.tracer.to_dicts()

    # -- clients ------------------------------------------------------------------

    def connect(
        self,
        writer_id: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> ShardedAsyncRegisterClient:
        """A register client: ``read(key)`` / ``write(key, value)`` by shard.

        Each call builds an independent client (own RNG stream, own
        register frontends).  ``writer_id`` overrides the scenario's writer
        identity — concurrent writers must each connect with their own.
        """
        if rng is None:
            rng = random.Random(self._rng.randrange(2**63))
        return self.sharded.new_register_client(
            rng,
            deadline=self.deadline,
            selection=self.selection,
            quorum_pool=self.quorum_pool,
            writer_id=writer_id,
        )

    def lock_client(
        self,
        name: str = "lock",
        client_id: int = 0,
        verify_rounds: int = 2,
        verify_delay: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ):
        """A distributed-lock handle on lock ``name`` for ``client_id``.

        Returns an :class:`~repro.apps.mutex.AsyncQuorumMutex` speaking
        REQUEST / GRANT / RELEASE through a quorum client bound to the
        shard that owns the lock's register key.  Contending clients must
        each use a distinct ``client_id`` (it is both the holder identity
        and the timestamp tie-break).

        ``verify_delay`` defaults per deployment: 0 (a bare event-loop
        yield between verify reads) when every replica shares this process's
        event loop — any ``await`` fully applies a competitor's in-flight
        write there — and 20ms on a multi-process
        :class:`~repro.service.cluster.ClusterDeployment`, where a racing
        write genuinely in flight to another process needs wall-clock time
        to land before the verify read can be trusted to see it.
        """
        # Imported here: repro.api is importable without pulling the apps
        # package (and its load-harness dependencies) along.
        from repro.apps.mutex import lock_variable, mutex_for

        if rng is None:
            rng = random.Random(self._rng.randrange(2**63))
        shard = self.sharded.shard_for(lock_variable(name))
        client = self.sharded.client_for_shard(
            shard,
            rng=random.Random(rng.randrange(2**63)),
            deadline=self.deadline,
            selection=self.selection,
            quorum_pool=self.quorum_pool,
            client_id=f"lock:{name}:{client_id}",
        )
        if verify_delay is None:
            verify_delay = 0.02 if self.processes > 0 else 0.0
        return mutex_for(
            self.scenario,
            client,
            name=name,
            client_id=client_id,
            verify_rounds=verify_rounds,
            verify_delay=verify_delay,
            rng=rng,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Deployment({self.scenario.describe()}, shards={self.shard_count}, "
            f"transport={self.transport!r})"
        )
