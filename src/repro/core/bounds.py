"""Load lower bounds and resilience ceilings (Theorems 3.9, 5.5; Table 1).

The paper proves that relaxing intersection probabilistically cannot reduce
the load below (essentially) the strict lower bound, but *can* escape the
load/fault-tolerance trade-off and the strict resilience ceilings.  This
module collects:

* the strict bounds summarised in Table 1 — ``L(Q) >= √(1/n)``,
  ``√((b+1)/n)`` and ``√((2b+1)/n)`` for plain, dissemination and masking
  systems, with resilience ceilings ``⌊(n-1)/3⌋`` and ``⌊(n-1)/4⌋`` for the
  Byzantine variants;
* Theorem 3.9 / Corollary 3.12 — the ε-intersecting load lower bound
  ``max{E|Q|/n, (1-√ε)²/E|Q|} >= (1-√ε)/√n``;
* Theorem 5.5 — the (b,ε)-masking load lower bound
  ``((1-2ε)/(1-ε)) · b/n``;
* helpers asserting where the paper's constructions sit relative to these
  bounds (used by the Table 1 benchmark and by tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ConfigurationError


def _validate_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")


def _validate_epsilon(epsilon: float) -> None:
    if not 0.0 <= epsilon < 1.0:
        raise ConfigurationError(f"epsilon must lie in [0, 1), got {epsilon}")


# ---------------------------------------------------------------------------
# Strict bounds (Table 1)
# ---------------------------------------------------------------------------


def strict_load_lower_bound(n: int, b: int = 0, kind: str = "strict") -> float:
    """Load lower bound of strict systems (first row of Table 1).

    ``kind`` is one of ``"strict"`` (``√(1/n)``), ``"dissemination"``
    (``√((b+1)/n)``) or ``"masking"`` (``√((2b+1)/n)``).
    """
    _validate_n(n)
    if b < 0:
        raise ConfigurationError(f"Byzantine threshold must be non-negative, got {b}")
    if kind == "strict":
        return math.sqrt(1.0 / n)
    if kind == "dissemination":
        return math.sqrt((b + 1) / n)
    if kind == "masking":
        return math.sqrt((2 * b + 1) / n)
    raise ConfigurationError(f"unknown system kind {kind!r}")


def strict_resilience_bound(n: int, kind: str) -> Optional[int]:
    """Resilience ceiling of strict systems (second row of Table 1).

    ``⌊(n-1)/3⌋`` for dissemination systems, ``⌊(n-1)/4⌋`` for masking
    systems; ``None`` for plain strict systems (crash fault tolerance is
    bounded by quorum size, not by a Byzantine ceiling).
    """
    _validate_n(n)
    if kind == "strict":
        return None
    if kind == "dissemination":
        return (n - 1) // 3
    if kind == "masking":
        return (n - 1) // 4
    raise ConfigurationError(f"unknown system kind {kind!r}")


def naor_wool_load_bound(n: int, smallest_quorum: int) -> float:
    """The Naor-Wool bound ``L(Q) >= max{1/c(Q), c(Q)/n}`` for strict systems."""
    _validate_n(n)
    if not 0 < smallest_quorum <= n:
        raise ConfigurationError(
            f"smallest quorum size must lie in (0, {n}], got {smallest_quorum}"
        )
    return max(1.0 / smallest_quorum, smallest_quorum / n)


# ---------------------------------------------------------------------------
# Probabilistic bounds (Theorems 3.9 and 5.5)
# ---------------------------------------------------------------------------


def probabilistic_load_lower_bound(
    n: int, epsilon: float, expected_quorum_size: float
) -> float:
    """Theorem 3.9: ``L(⟨Q,w⟩) >= max{E|Q|/n, (1-√ε)²/E|Q|}``."""
    _validate_n(n)
    _validate_epsilon(epsilon)
    if expected_quorum_size <= 0:
        raise ConfigurationError(
            f"expected quorum size must be positive, got {expected_quorum_size}"
        )
    margin = 1.0 - math.sqrt(epsilon)
    return max(expected_quorum_size / n, margin * margin / expected_quorum_size)


def corollary_3_12_load_bound(n: int, epsilon: float) -> float:
    """Corollary 3.12: ``L(⟨Q,w⟩) >= (1-√ε)/√n`` for every ε-intersecting system."""
    _validate_n(n)
    _validate_epsilon(epsilon)
    return (1.0 - math.sqrt(epsilon)) / math.sqrt(n)


def masking_load_lower_bound(n: int, b: int, epsilon: float) -> float:
    """Theorem 5.5: ``L(⟨Q,w,k⟩) >= ((1-2ε)/(1-ε)) · b/n`` for (b,ε)-masking systems."""
    _validate_n(n)
    _validate_epsilon(epsilon)
    if b < 1:
        raise ConfigurationError(f"Byzantine threshold must be at least 1, got {b}")
    if epsilon >= 0.5:
        # The bound degenerates to zero (or below); report zero.
        return 0.0
    return ((1.0 - 2.0 * epsilon) / (1.0 - epsilon)) * b / n


def lemma_5_4_quorum_size_probability(epsilon: float) -> float:
    """Lemma 5.4: ``P(|Q| > b) >= (1 - 2ε)/(1 - ε)`` in any (b,ε)-masking system."""
    _validate_epsilon(epsilon)
    if epsilon >= 0.5:
        return 0.0
    return (1.0 - 2.0 * epsilon) / (1.0 - epsilon)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1, evaluated for concrete ``n`` and ``b``."""

    kind: str
    load_lower_bound: float
    max_resilience: Optional[int]


def table1_bounds(n: int, b: int) -> Dict[str, Table1Row]:
    """Evaluate Table 1 for a concrete universe size and Byzantine threshold.

    Returns a mapping from system kind (``"strict"``, ``"dissemination"``,
    ``"masking"``) to its load lower bound and resilience ceiling.
    """
    _validate_n(n)
    if b < 0:
        raise ConfigurationError(f"Byzantine threshold must be non-negative, got {b}")
    rows: Dict[str, Table1Row] = {}
    for kind in ("strict", "dissemination", "masking"):
        rows[kind] = Table1Row(
            kind=kind,
            load_lower_bound=strict_load_lower_bound(n, b, kind),
            max_resilience=strict_resilience_bound(n, kind),
        )
    return rows


def construction_beats_strict_masking_load(n: int, b: int, load: float) -> bool:
    """Whether a measured load beats the strict masking lower bound ``√((2b+1)/n)``.

    Section 5.5's headline example: for ``b = √n`` and ``ℓ = n^{1/5}`` the
    probabilistic construction's load ``O(n^{-0.3})`` beats the strict bound
    ``Ω(n^{-0.25})``.
    """
    return load < strict_load_lower_bound(n, b, "masking")


def construction_beats_strict_dissemination_load(n: int, b: int, load: float) -> bool:
    """Whether a measured load beats the strict dissemination bound ``√((b+1)/n)``."""
    return load < strict_load_lower_bound(n, b, "dissemination")
