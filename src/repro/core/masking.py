"""(b, ε)-masking quorum systems ``Rk(n, q)`` (Section 5).

With data that is *not* self-verifying, a reader cannot recognise the
correct value; it must be returned by enough servers to out-vote the
Byzantine ones.  Definition 5.1 therefore adds a read threshold ``k`` to the
system: ``⟨Q, w, k⟩`` is a (b, ε)-masking quorum system if, for every
Byzantine set ``B`` of size ``b`` and two strategy-drawn quorums ``Q`` (read)
and ``Q'`` (previous write),

``P(|Q ∩ B| < k   and   |Q ∩ Q' \\ B| >= k)  >=  1 - ε``.

The construction ``Rk(n, q)`` (Definition 5.6) again uses all subsets of
size ``q`` with the uniform strategy, and the paper's threshold choice is
``k = q²/(2n)`` — strictly between the expected number of faulty servers in
a quorum, ``E[|Q ∩ B|] = qb/n``, and the expected number of correct
up-to-date servers, ``E[|Q ∩ Q' \\ B|] = (n-b)q²/n²`` (Section 5.3), provided
``ℓ = q/b > 2``.  Theorem 5.10 bounds ε by
``2 exp(-(q²/n)·min{ψ₁(ℓ), ψ₂(ℓ)})``.

The headline consequence (Section 5.5): choosing ``ℓ`` constant when
``b = ω(√n)`` gives load ``O(b/n)``, beating the ``Ω(√(b/n))`` load lower
bound of every *strict* masking system, and the construction tolerates any
``b < n/2`` Byzantine failures while strict masking systems stop at
``⌊(n-1)/4⌋``.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.analysis.chernoff import crash_failure_bound, lemma_5_7_bound, lemma_5_9_bound
from repro.analysis.failure_probability import crash_failure_probability_uniform
from repro.analysis.intersection import (
    MaskingErrorDecomposition,
    default_masking_threshold,
    masking_epsilon_bound,
    masking_epsilon_exact,
    masking_error_decomposition,
    masking_expectations,
)
from repro.core.calibration import (
    ell_for_quorum_size,
    minimal_quorum_size_for_masking,
    quorum_size_for_ell,
)
from repro.core.probabilistic import ProbabilisticQuorumSystem, ReadSemantics
from repro.core.strategy import UniformSubsetStrategy
from repro.exceptions import ConfigurationError
from repro.types import Quorum, ServerId


class ProbabilisticMaskingSystem(ProbabilisticQuorumSystem):
    """The ``Rk(n, q)`` construction: uniform size-``q`` quorums plus a read threshold.

    Parameters
    ----------
    n:
        Universe size.
    quorum_size:
        Quorum size ``q``; must satisfy ``q <= n - b`` (fault tolerance
        condition of Definition 5.1).
    b:
        Number of Byzantine failures masked; any ``b < n/2`` is admissible
        for suitable ``q`` (Section 5), far beyond the strict ``(n-1)/4``.
    threshold:
        The real-valued threshold ``k``.  Defaults to the paper's
        ``q²/(2n)``.  A reader accepts a value only if at least ``⌈k⌉``
        servers of its quorum returned it (see
        :attr:`read_threshold`).
    """

    def __init__(
        self,
        n: int,
        quorum_size: int,
        b: int,
        threshold: Optional[float] = None,
    ) -> None:
        strategy = UniformSubsetStrategy(n, quorum_size)
        super().__init__(n, strategy)
        if not 1 <= b < n:
            raise ConfigurationError(f"Byzantine threshold must lie in [1, {n}), got {b}")
        if quorum_size > n - b:
            raise ConfigurationError(
                f"Definition 5.1 requires fault tolerance > b: need q <= n - b "
                f"({n - b}), got q={quorum_size}"
            )
        self._q = int(quorum_size)
        self._b = int(b)
        self._k = default_masking_threshold(n, quorum_size) if threshold is None else float(threshold)
        if self._k <= 0:
            raise ConfigurationError(f"threshold k must be positive, got {self._k}")

    # -- alternative constructors ------------------------------------------------

    @classmethod
    def from_ell_times_b(cls, n: int, ell: float, b: int) -> "ProbabilisticMaskingSystem":
        """Build ``Rk(n, ℓ·b)`` — the parameterisation of Theorem 5.10 (``ℓ = q/b``)."""
        if ell <= 2.0:
            raise ConfigurationError(f"Theorem 5.10 requires q/b > 2, got {ell}")
        quorum_size = math.ceil(ell * b)
        return cls(n, quorum_size, b)

    @classmethod
    def from_ell(cls, n: int, ell: float, b: int) -> "ProbabilisticMaskingSystem":
        """Build ``Rk(n, ⌈ℓ√n⌉)`` — the ``ℓ`` convention used in Table 4."""
        return cls(n, quorum_size_for_ell(n, ell), b)

    @classmethod
    def for_epsilon(cls, n: int, b: int, epsilon: float) -> "ProbabilisticMaskingSystem":
        """Smallest construction (with ``k = q²/2n``) meeting a target ε."""
        q = minimal_quorum_size_for_masking(n, b, epsilon)
        if q is None:
            raise ConfigurationError(
                f"no quorum size achieves epsilon={epsilon} for n={n}, b={b}"
            )
        return cls(n, q, b)

    # -- structure ----------------------------------------------------------------

    @property
    def quorum_size(self) -> int:
        """The common quorum size ``q``."""
        return self._q

    @property
    def byzantine_threshold(self) -> int:
        """The Byzantine threshold ``b``."""
        return self._b

    @property
    def threshold(self) -> float:
        """The real-valued threshold ``k`` (``q²/2n`` by default)."""
        return self._k

    @property
    def read_threshold(self) -> int:
        """The integer vote count a reader requires: ``⌈k⌉``."""
        return math.ceil(self._k)

    def read_semantics(self) -> ReadSemantics:
        """Section 5 reads: ``⌈k⌉`` vouching votes per value/timestamp pair."""
        return ReadSemantics(threshold=self.read_threshold, byzantine_tolerance=self._b)

    @property
    def ell_over_b(self) -> float:
        """The ratio ``ℓ = q/b`` used by the Section 5 analysis."""
        return self._q / self._b

    @property
    def ell_over_sqrt_n(self) -> float:
        """The ratio ``q/√n`` — the ``ℓ`` convention of Table 4."""
        return ell_for_quorum_size(self.n, self._q)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        live = sorted(s for s in alive if 0 <= s < self.n)
        if len(live) < self._q:
            return None
        return frozenset(live[: self._q])

    def expectations(self) -> tuple:
        """``(E[|Q ∩ B|], E[|Q ∩ Q' \\ B|])`` — Eqs. (13) and (14)."""
        return masking_expectations(self.n, self._q, self._b)

    def threshold_is_separating(self) -> bool:
        """Whether ``k`` lies strictly between the two expectations (Section 5.3)."""
        e_faulty, e_correct = self.expectations()
        return e_faulty < self._k < e_correct

    # -- the probabilistic guarantee ----------------------------------------------

    @property
    def epsilon(self) -> float:
        """Exact masking error probability for a worst-case Byzantine set."""
        return masking_epsilon_exact(self.n, self._q, self._b, self._k)

    def epsilon_bound(self) -> float:
        """Theorem 5.10 bound (requires ``q/b > 2``); falls back to the exact value.

        The theorem's closed form only applies to the paper's default
        threshold ``k = q²/2n`` and ratio ``ℓ = q/b > 2``; outside that
        regime the exact value is returned so that callers always get a
        valid upper bound.
        """
        uses_default_threshold = abs(self._k - default_masking_threshold(self.n, self._q)) < 1e-12
        if self._q / self._b > 2.0 and uses_default_threshold:
            return masking_epsilon_bound(self.n, self._q, self._b)
        return self.epsilon

    def error_decomposition(self) -> MaskingErrorDecomposition:
        """The two failure modes (too many faulty / too few correct) and their sizes."""
        return masking_error_decomposition(self.n, self._q, self._b, self._k)

    def lemma_bounds(self) -> tuple:
        """The individual bounds of Lemmas 5.7 and 5.9 (requires ``q/b > 2``)."""
        ell = self._q / self._b
        return (
            lemma_5_7_bound(self.n, self._q, ell),
            lemma_5_9_bound(self.n, self._q, ell),
        )

    # -- quality measures ------------------------------------------------------------

    def load(self) -> float:
        """Load ``q/n`` (Definition 5.3 inherits Definition 3.3)."""
        return self._q / self.n

    def fault_tolerance(self) -> int:
        """Probabilistic (crash) fault tolerance ``n - q + 1``."""
        return self.n - self._q + 1

    def failure_probability(self, p: float) -> float:
        """Exact crash failure probability ``P(Bin(n, p) > n - q)``."""
        return crash_failure_probability_uniform(self.n, self._q, p)

    def failure_probability_bound(self, p: float) -> float:
        """The Chernoff bound ``e^{-2n(1 - q/n - p)²}`` of Section 5.5."""
        return crash_failure_bound(self.n, self._q, p)

    def describe(self) -> str:
        return (
            f"Rk(n={self.n}, q={self._q}, b={self._b}, k={self.read_threshold})"
        )
