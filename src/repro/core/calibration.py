"""Sizing the constructions: smallest quorum achieving a target ε.

Section 6 of the paper fixes a consistency target (ε ≤ 0.001) and chooses
"ℓ as small as possible subject to this restriction" for every universe
size.  This module performs that calibration against the *exact* event
probabilities of :mod:`repro.analysis.intersection` (not the looser
closed-form bounds), for each of the three system classes:

* :func:`minimal_quorum_size_for_epsilon` — ε-intersecting systems
  (Table 2);
* :func:`minimal_quorum_size_for_dissemination` — (b,ε)-dissemination
  systems (Table 3), additionally requiring ``q <= n - b`` so that the
  fault-tolerance condition ``A(⟨Q,w⟩) > b`` of Definition 4.1 holds;
* :func:`minimal_quorum_size_for_masking` — (b,ε)-masking systems
  (Table 4), using the paper's threshold ``k = q²/(2n)`` unless another is
  supplied.

The exact non-intersection probability is strictly decreasing in the quorum
size, so a binary search suffices for the first two; the masking error is
searched linearly because the discrete threshold ``⌈q²/2n⌉`` makes it only
piecewise monotone.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.analysis.combinatorics import log_binomial_grid
from repro.analysis.intersection import (
    dissemination_epsilon_exact,
    intersection_epsilon_exact,
    masking_epsilon_exact,
)
from repro.exceptions import ConfigurationError


def _validate_epsilon(epsilon: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")


def ell_for_quorum_size(n: int, quorum_size: int) -> float:
    """The paper's ``ℓ`` parameter for a quorum of size ``q``: ``ℓ = q / √n``."""
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 0 < quorum_size <= n:
        raise ConfigurationError(f"quorum size must lie in (0, {n}], got {quorum_size}")
    return quorum_size / math.sqrt(n)


def quorum_size_for_ell(n: int, ell: float) -> int:
    """Quorum size ``⌈ℓ √n⌉`` for a given ``ℓ`` (rounded up to an integer)."""
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if ell <= 0:
        raise ConfigurationError(f"ell must be positive, got {ell}")
    size = math.ceil(ell * math.sqrt(n) - 1e-9)
    if size > n:
        raise ConfigurationError(
            f"ell={ell} gives quorum size {size} larger than the universe ({n})"
        )
    return max(1, size)


def minimal_quorum_size_for_epsilon(n: int, epsilon: float) -> int:
    """Smallest ``q`` with ``P(Q ∩ Q' = ∅) <= ε`` for uniform size-``q`` quorums.

    The probability ``C(n-q, q)/C(n, q)`` is strictly decreasing in ``q``
    (adding a server to both quorums only helps), so binary search applies.
    Returns at most ``⌈(n+1)/2⌉`` — beyond that quorums intersect surely.
    """
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    _validate_epsilon(epsilon)
    lo, hi = 1, n // 2 + 1  # at hi, 2q > n so quorums always intersect
    if intersection_epsilon_exact(n, hi) > epsilon:  # pragma: no cover - impossible
        return hi
    while lo < hi:
        mid = (lo + hi) // 2
        if intersection_epsilon_exact(n, mid) <= epsilon:
            hi = mid
        else:
            lo = mid + 1
    return lo


def minimal_quorum_size_for_dissemination(n: int, b: int, epsilon: float) -> Optional[int]:
    """Smallest ``q`` making ``R(n, q)`` a (b, ε)-dissemination system.

    The search is over ``q <= n - b`` (so that the probabilistic fault
    tolerance ``n - q + 1`` exceeds ``b``, as Definition 4.1 requires).
    Returns ``None`` when no quorum size within that range achieves the
    target — which happens for small ``n`` combined with large ``b`` and
    tiny ε, exactly the regime the paper's remark after Theorem 4.6 warns
    about.
    """
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 0 <= b < n:
        raise ConfigurationError(f"Byzantine threshold must lie in [0, {n}), got {b}")
    _validate_epsilon(epsilon)
    hi = n - b
    if hi < 1:
        return None
    if dissemination_epsilon_exact(n, hi, b) > epsilon:
        return None
    lo = 1
    while lo < hi:
        mid = (lo + hi) // 2
        if dissemination_epsilon_exact(n, mid, b) <= epsilon:
            hi = mid
        else:
            lo = mid + 1
    return lo


def minimal_quorum_size_for_masking(
    n: int,
    b: int,
    epsilon: float,
    threshold: Optional[float] = None,
) -> Optional[int]:
    """Smallest ``q`` making ``Rk(n, q)`` a (b, ε)-masking system.

    Uses the paper's threshold ``k = q²/(2n)`` when ``threshold`` is ``None``
    (so the threshold changes with the candidate ``q``); a fixed numeric
    threshold is used as-is for every candidate.  The exact masking error is
    not perfectly monotone in ``q`` because the integer read threshold
    ``⌈k⌉`` jumps, so candidates are scanned in increasing order.

    The scan is limited to ``q <= n - b`` for the same fault-tolerance reason
    as the dissemination case.  Returns ``None`` if no admissible ``q``
    reaches the target ε.

    Two vectorised necessary conditions prune the scan before the exact
    ``O(q·b)`` error decomposition runs: the exact error is bounded below
    both by ``P(|Q ∩ B| >= k)`` (Lemma 5.7's event) and by
    ``P(Hypergeom(n, q, q) < k)`` (``Y | X = x`` is stochastically dominated
    by the ``x = 0`` case), so any ``q`` failing either bound cannot meet ε.
    """
    if n < 1:
        raise ConfigurationError(f"universe size must be positive, got {n}")
    if not 1 <= b < n:
        raise ConfigurationError(f"Byzantine threshold must lie in [1, {n}), got {b}")
    _validate_epsilon(epsilon)
    qs = np.arange(1, n - b + 1, dtype=np.int64)
    if qs.size == 0:
        return None
    ks = np.full(qs.shape, float(threshold)) if threshold is not None else qs * qs / (2.0 * n)
    admissible = ks > 0
    if not admissible.any():
        return None
    k_int = np.where(admissible, np.ceil(ks).astype(np.int64), 1)
    # Tiny slack so floating-point noise in the vectorised bounds can never
    # exclude a candidate whose exact error sits right at epsilon.
    cutoff = epsilon * (1.0 + 1e-9) + 1e-15
    feasible = admissible & (_faulty_overlap_sf(n, b, qs, k_int) <= cutoff)
    feasible[feasible] &= _self_overlap_cdf(n, qs[feasible], k_int[feasible] - 1) <= cutoff
    for q, k in zip(qs[feasible], ks[feasible]):
        if masking_epsilon_exact(n, int(q), b, float(k)) <= epsilon:
            return int(q)
    return None


def _faulty_overlap_sf(n: int, b: int, qs: np.ndarray, k_int: np.ndarray) -> np.ndarray:
    """``P(|Q ∩ B| >= k)`` for each quorum size, in one vectorised pass.

    ``|Q ∩ B| ~ Hypergeom(n, b, q)``; the pmf grid over (q, x) comes from
    :func:`log_binomial_grid` (whose ``-inf`` outside the support makes the
    boundary handling free) and is summed cumulatively so the tail at each
    candidate's own threshold is a single gather.
    """
    q = qs[:, None]
    x = np.arange(min(b, int(qs.max())) + 1, dtype=np.int64)[None, :]
    log_pmf = (
        log_binomial_grid(b, x) + log_binomial_grid(n - b, q - x) - log_binomial_grid(n, q)
    )
    cdf = np.cumsum(np.exp(log_pmf), axis=1)
    # P(X >= k) = 1 - P(X <= k - 1); k - 1 may fall outside the tabulated
    # range, in which case the tail is empty.
    idx = np.clip(k_int - 1, -1, x.size - 1)
    below = np.where(idx >= 0, np.take_along_axis(cdf, np.maximum(idx, 0)[:, None], 1)[:, 0], 0.0)
    tail = np.where(k_int - 1 >= x.size, 0.0, 1.0 - below)
    return np.clip(tail, 0.0, 1.0)


def _self_overlap_cdf(n: int, qs: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """``P(Hypergeom(n, q, q) <= upper)`` for each quorum size, vectorised."""
    if qs.size == 0:
        return np.zeros(0)
    q = qs[:, None]
    y = np.arange(int(upper.max()) + 1 if upper.size else 1, dtype=np.int64)[None, :]
    log_pmf = (
        log_binomial_grid(q, y) + log_binomial_grid(n - q, q - y) - log_binomial_grid(n, q)
    )
    cdf = np.cumsum(np.exp(log_pmf), axis=1)
    idx = np.clip(upper, -1, y.size - 1)
    out = np.where(idx >= 0, np.take_along_axis(cdf, np.maximum(idx, 0)[:, None], 1)[:, 0], 0.0)
    return np.clip(out, 0.0, 1.0)


def minimal_ell_for_epsilon(n: int, epsilon: float) -> float:
    """The ``ℓ`` corresponding to :func:`minimal_quorum_size_for_epsilon`."""
    return ell_for_quorum_size(n, minimal_quorum_size_for_epsilon(n, epsilon))


def minimal_ell_for_dissemination(n: int, b: int, epsilon: float) -> Optional[float]:
    """The ``ℓ`` corresponding to :func:`minimal_quorum_size_for_dissemination`."""
    q = minimal_quorum_size_for_dissemination(n, b, epsilon)
    return None if q is None else ell_for_quorum_size(n, q)


def minimal_ell_for_masking(
    n: int, b: int, epsilon: float, threshold: Optional[float] = None
) -> Optional[float]:
    """The ``ℓ`` corresponding to :func:`minimal_quorum_size_for_masking`."""
    q = minimal_quorum_size_for_masking(n, b, epsilon, threshold)
    return None if q is None else ell_for_quorum_size(n, q)
