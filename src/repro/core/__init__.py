"""Probabilistic quorum systems — the paper's primary contribution.

This subpackage implements the three system classes the paper introduces,
their quality measures, the lower bounds, and the calibration logic used to
size the constructions in Section 6:

* :mod:`repro.core.strategy` — access strategies (Definition 2.3);
* :mod:`repro.core.probabilistic` — the common ``⟨Q, w⟩`` machinery;
* :mod:`repro.core.epsilon_intersecting` — ε-intersecting systems and the
  ``R(n, ℓ√n)`` construction (Section 3);
* :mod:`repro.core.dissemination` — (b,ε)-dissemination systems (Section 4);
* :mod:`repro.core.masking` — (b,ε)-masking systems ``Rk(n, q)`` (Section 5);
* :mod:`repro.core.measures` — δ-high-quality quorums and the probabilistic
  fault tolerance / failure probability (Definitions 3.4-3.8);
* :mod:`repro.core.bounds` — the load lower bounds (Theorems 3.9 and 5.5)
  and the strict bounds of Table 1;
* :mod:`repro.core.calibration` — smallest quorum size achieving a target ε
  (how Tables 2-4 choose ``ℓ``).
"""

from repro.core.strategy import (
    AccessStrategy,
    ExplicitStrategy,
    UniformSubsetStrategy,
)
from repro.core.probabilistic import ProbabilisticQuorumSystem, ReadSemantics
from repro.core.epsilon_intersecting import (
    EpsilonIntersectingSystem,
    UniformEpsilonIntersectingSystem,
)
from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.core.measures import (
    high_quality_quorums,
    pairwise_intersection_probability,
    probabilistic_fault_tolerance,
    probabilistic_failure_probability,
)
from repro.core.bounds import (
    corollary_3_12_load_bound,
    masking_load_lower_bound,
    probabilistic_load_lower_bound,
    strict_load_lower_bound,
    strict_resilience_bound,
    table1_bounds,
)
from repro.core.calibration import (
    ell_for_quorum_size,
    minimal_quorum_size_for_dissemination,
    minimal_quorum_size_for_epsilon,
    minimal_quorum_size_for_masking,
)

__all__ = [
    "AccessStrategy",
    "UniformSubsetStrategy",
    "ExplicitStrategy",
    "ProbabilisticQuorumSystem",
    "ReadSemantics",
    "EpsilonIntersectingSystem",
    "UniformEpsilonIntersectingSystem",
    "ProbabilisticDisseminationSystem",
    "ProbabilisticMaskingSystem",
    "high_quality_quorums",
    "pairwise_intersection_probability",
    "probabilistic_fault_tolerance",
    "probabilistic_failure_probability",
    "probabilistic_load_lower_bound",
    "corollary_3_12_load_bound",
    "masking_load_lower_bound",
    "strict_load_lower_bound",
    "strict_resilience_bound",
    "table1_bounds",
    "minimal_quorum_size_for_epsilon",
    "minimal_quorum_size_for_dissemination",
    "minimal_quorum_size_for_masking",
    "ell_for_quorum_size",
]
