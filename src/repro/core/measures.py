"""Probabilistic quality measures (Definitions 3.3-3.8).

The strict definitions of fault tolerance and failure probability break down
for probabilistic systems: Section 3.2 of the paper shows how adding
never-used singleton quorums can inflate the strict fault tolerance to ``n``
without changing the consistency guarantee.  The fix is to measure only the
*δ-high-quality quorums* — those that intersect a strategy-drawn quorum with
probability at least ``1 - δ`` — with ``δ = √ε`` by convention
(Definition 3.6).  Lemma 3.5 guarantees that these quorums carry at least
``1 - ε/δ`` of the strategy's weight, so they are both well-connected and
frequently used.

This module implements that machinery for explicit systems:

* :func:`pairwise_intersection_probability` — ``P(Q ∩ Q' ≠ ∅)`` under two
  independent draws;
* :func:`high_quality_quorums` — the δ-high-quality subfamily;
* :func:`probabilistic_fault_tolerance` — Definition 3.7 (minimum hitting
  set of the high-quality quorums);
* :func:`probabilistic_failure_probability` — Definition 3.8 (probability
  that every high-quality quorum is hit by independent crashes).

The paper's uniform constructions are fully symmetric, so *all* of their
quorums are high quality and the closed forms in
:mod:`repro.core.epsilon_intersecting` et al. apply; these functions matter
for hand-built or adversarial systems.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, StrategyError
from repro.quorum.measures import minimum_hitting_set
from repro.types import Quorum


def _validate(quorums: Sequence[Quorum], weights: Sequence[float]) -> None:
    if not quorums:
        raise ConfigurationError("the system must contain at least one quorum")
    if len(quorums) != len(weights):
        raise StrategyError(
            f"{len(weights)} weights supplied for {len(quorums)} quorums"
        )
    if any(w < -1e-12 for w in weights):
        raise StrategyError("strategy weights must be non-negative")
    total = sum(weights)
    if abs(total - 1.0) > 1e-9:
        raise StrategyError(f"strategy weights must sum to 1, got {total}")


def pairwise_intersection_probability(
    quorums: Sequence[Quorum], weights: Sequence[float]
) -> float:
    """``P(Q ∩ Q' ≠ ∅)`` for two independent draws from the strategy."""
    _validate(quorums, weights)
    total = 0.0
    for first, w_first in zip(quorums, weights):
        if w_first == 0.0:
            continue
        for second, w_second in zip(quorums, weights):
            if w_second == 0.0:
                continue
            if first & second:
                total += w_first * w_second
    return min(1.0, total)


def per_quorum_intersection_probability(
    quorums: Sequence[Quorum], weights: Sequence[float]
) -> List[float]:
    """For each quorum ``Q``, the probability ``P(Q ∩ Q' ≠ ∅)`` over ``Q' ~ w``."""
    _validate(quorums, weights)
    results: List[float] = []
    for first in quorums:
        prob = sum(w for second, w in zip(quorums, weights) if first & second)
        results.append(min(1.0, prob))
    return results


def high_quality_quorums(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    delta: Optional[float] = None,
) -> Tuple[Quorum, ...]:
    """The δ-high-quality quorums of Definition 3.4.

    ``R = {Q : P(Q ∩ Q' ≠ ∅) >= 1 - δ}``.  When ``delta`` is ``None`` the
    paper's convention ``δ = √ε`` (Definition 3.6) is used, where ε is the
    system's exact non-intersection probability.
    """
    _validate(quorums, weights)
    per_quorum = per_quorum_intersection_probability(quorums, weights)
    if delta is None:
        epsilon = 1.0 - pairwise_intersection_probability(quorums, weights)
        delta = math.sqrt(max(0.0, epsilon))
    if delta < 0 or delta > 1:
        raise ConfigurationError(f"delta must lie in [0, 1], got {delta}")
    selected = tuple(
        quorum
        for quorum, prob in zip(quorums, per_quorum)
        if prob >= 1.0 - delta - 1e-12
    )
    return selected


def high_quality_weight(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    delta: Optional[float] = None,
) -> float:
    """Total strategy weight carried by the δ-high-quality quorums.

    Lemma 3.5 guarantees this is at least ``1 - ε/δ``.
    """
    selected = set(high_quality_quorums(quorums, weights, delta))
    return sum(w for quorum, w in zip(quorums, weights) if quorum in selected)


def probabilistic_fault_tolerance(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    n: int,
    delta: Optional[float] = None,
) -> int:
    """Probabilistic fault tolerance ``A(⟨Q, w⟩)`` of Definition 3.7.

    The size of a minimum set of servers hitting *every* high-quality
    quorum.  Unlike the strict Definition 2.5, rarely used quorums cannot
    inflate the result because they are excluded from the high-quality
    family.
    """
    selected = high_quality_quorums(quorums, weights, delta)
    if not selected:
        # No quorum intersects others reliably enough; the system offers no
        # meaningful resilience.
        return 0
    for quorum in selected:
        if not quorum <= frozenset(range(n)):
            raise ConfigurationError(
                f"quorum {sorted(quorum)} is not contained in the universe of size {n}"
            )
    return len(minimum_hitting_set(list(selected)))


def probabilistic_failure_probability(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    n: int,
    p: float,
    delta: Optional[float] = None,
    trials: int = 20_000,
    seed: int = 0,
) -> float:
    """Probabilistic failure probability ``Fp(⟨Q, w⟩)`` of Definition 3.8.

    Monte-Carlo estimate of the probability that every δ-high-quality quorum
    contains at least one crashed server, when servers crash independently
    with probability ``p``.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"crash probability must lie in [0, 1], got {p}")
    if trials <= 0:
        raise ConfigurationError(f"trial count must be positive, got {trials}")
    selected = high_quality_quorums(quorums, weights, delta)
    if not selected:
        return 1.0
    rng = random.Random(seed)
    quorum_list = [tuple(sorted(q)) for q in selected]
    failures = 0
    for _ in range(trials):
        alive = [rng.random() >= p for _ in range(n)]
        if not any(all(alive[s] for s in q) for q in quorum_list):
            failures += 1
    return failures / trials


def inflate_with_singletons(
    quorums: Sequence[Quorum],
    weights: Sequence[float],
    n: int,
    gamma: float = 1e-6,
) -> Tuple[Tuple[Quorum, ...], Tuple[float, ...]]:
    """The adversarial transformation of Section 3.2.

    Adds every singleton ``{u}`` as a quorum with total weight ``γ`` spread
    evenly, scaling the original weights by ``1 - γ``.  Under the *strict*
    Definitions 2.5/2.6 the resulting system has fault tolerance ``n`` and
    failure probability ``pⁿ`` — absurdly optimistic — while its consistency
    guarantee is essentially unchanged.  The probabilistic Definitions
    3.7/3.8 are immune: the singletons are not high quality, so the measured
    fault tolerance and failure probability barely move.  This helper exists
    so that tests and examples can reproduce that argument.
    """
    _validate(quorums, weights)
    if not 0.0 < gamma < 1.0:
        raise ConfigurationError(f"gamma must lie in (0, 1), got {gamma}")
    inflated_quorums = list(quorums) + [frozenset({u}) for u in range(n)]
    inflated_weights = [w * (1.0 - gamma) for w in weights] + [gamma / n] * n
    return tuple(inflated_quorums), tuple(inflated_weights)
