"""Common machinery for probabilistic quorum systems ``⟨Q, w⟩``.

A probabilistic quorum system pairs a set system with an access strategy and
guarantees an intersection-style property only *with high probability* over
the strategy.  The three concrete classes —
:class:`~repro.core.epsilon_intersecting.EpsilonIntersectingSystem`,
:class:`~repro.core.dissemination.ProbabilisticDisseminationSystem` and
:class:`~repro.core.masking.ProbabilisticMaskingSystem` — share the
interface defined here: sampling, the ε guarantee (exact and closed-form
bound), and the three probabilistic quality measures of Section 3.2.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

from repro.core.strategy import AccessStrategy
from repro.exceptions import ConfigurationError
from repro.types import Quorum, ServerId, SystemProfile


@dataclass(frozen=True)
class ReadSemantics:
    """Declarative read-side semantics of the protocol a system is meant for.

    The three access protocols of the paper differ only in how a reader
    filters replies before the highest timestamp wins:

    * the benign Section 3.1 read believes any single reply
      (``threshold=1``, ``self_verifying=False``);
    * the Section 4 dissemination read verifies signatures and discards
      forgeries (``self_verifying=True``);
    * the Section 5 masking read requires each value/timestamp pair to be
      vouched for by at least ``threshold`` servers of the quorum.

    Exposing these two knobs declaratively (via
    :meth:`ProbabilisticQuorumSystem.read_semantics`) is what lets the
    batched Monte-Carlo engine classify Byzantine reads without driving
    register objects, while the sequential engine builds the matching
    register class from the same description.

    ``byzantine_tolerance`` is the ``b`` the protocol's guarantee is stated
    for (Theorems 4.2 and 5.2 assume *at most* ``b`` Byzantine failures);
    ``None`` means the protocol makes no Byzantine claim at all (the benign
    Section 3.1 read).  The field is informational for equality purposes
    (``compare=False``) but :class:`~repro.simulation.scenario.ScenarioSpec`
    enforces it: a failure model injecting more Byzantine servers than the
    declared tolerance voids the theorem the scenario is meant to measure
    and used to silently produce all-stale runs.
    """

    threshold: int = 1
    self_verifying: bool = False
    byzantine_tolerance: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError(
                f"a read needs at least one vouching server, got threshold={self.threshold}"
            )
        if self.self_verifying and self.threshold != 1:
            raise ConfigurationError(
                "self-verifying data needs no vote threshold (Section 4 reads "
                f"believe any verified reply); got threshold={self.threshold}"
            )
        if self.byzantine_tolerance is not None and self.byzantine_tolerance < 0:
            raise ConfigurationError(
                f"a Byzantine tolerance must be non-negative, "
                f"got {self.byzantine_tolerance}"
            )

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        if self.self_verifying:
            return "ReadSemantics(self-verifying)"
        if self.threshold > 1:
            return f"ReadSemantics(threshold k={self.threshold})"
        return "ReadSemantics(benign)"


class ProbabilisticQuorumSystem(abc.ABC):
    """Base class for ``⟨Q, w⟩`` pairs with a probabilistic guarantee.

    Subclasses define what "the guarantee" means (non-empty intersection,
    intersection outside a Byzantine set, or the masking threshold event) and
    provide its probability of failure ε, both exactly and via the paper's
    closed-form bounds.
    """

    def __init__(self, n: int, strategy: AccessStrategy) -> None:
        if n < 1:
            raise ConfigurationError(f"universe size must be positive, got {n}")
        self._n = int(n)
        self._strategy = strategy

    # -- structure -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of servers in the universe."""
        return self._n

    @property
    def strategy(self) -> AccessStrategy:
        """The access strategy ``w`` — clients must sample through it."""
        return self._strategy

    @property
    def name(self) -> str:
        """Name of the construction."""
        return type(self).__name__

    def sample_quorum(self, rng: Optional[random.Random] = None) -> Quorum:
        """Draw a quorum according to the access strategy."""
        return self._strategy.sample(rng)

    def sample_quorum_block(
        self,
        rng: Optional[random.Random] = None,
        count: int = 1,
        generator: Optional["np.random.Generator"] = None,
    ) -> List[Tuple[int, ...]]:
        """Draw ``count`` i.i.d. strategy quorums at once (sorted id tuples).

        The vectorised counterpart of calling :meth:`sample_quorum` in a
        loop: each returned tuple is an independent draw from the access
        strategy, so consumers that *pool* quorums (the service layer's
        :class:`~repro.service.client.AsyncQuorumClient`) keep the exact load
        profile and ε guarantee of per-operation sampling while amortising
        the sampling cost.  The uniform and explicit strategies vectorise the
        draw through the same kernels the batched Monte-Carlo engine uses.
        A persistent NumPy ``generator`` (when given) skips the per-call
        bit-generator construction the ``rng``-seeded path pays.
        """
        return self._strategy.sample_block(count, rng, generator=generator)

    def read_semantics(self) -> ReadSemantics:
        """The read-side semantics of the protocol this system was built for.

        The base class describes the benign Section 3.1 read (any single
        reply is believed); the dissemination and masking constructions
        override this to declare signature verification and the vote
        threshold ``k`` respectively.
        """
        return ReadSemantics()

    @abc.abstractmethod
    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        """A quorum fully contained in ``alive``, or ``None`` if none exists."""

    # -- the probabilistic guarantee --------------------------------------------

    @property
    @abc.abstractmethod
    def epsilon(self) -> float:
        """The exact probability that the system's guarantee fails for one pair.

        For ε-intersecting systems this is ``P(Q ∩ Q' = ∅)``; for
        dissemination systems ``P(Q ∩ Q' ⊆ B)`` for a worst-case ``B``; for
        masking systems the complement of the Definition 5.1 event.
        """

    @abc.abstractmethod
    def epsilon_bound(self) -> float:
        """The paper's closed-form upper bound on :attr:`epsilon`."""

    # -- quality measures --------------------------------------------------------

    @abc.abstractmethod
    def load(self) -> float:
        """Load under the system's strategy (Definition 3.3)."""

    @abc.abstractmethod
    def fault_tolerance(self) -> int:
        """Probabilistic fault tolerance (Definition 3.7)."""

    @abc.abstractmethod
    def failure_probability(self, p: float) -> float:
        """Probabilistic failure probability (Definition 3.8)."""

    @property
    def byzantine_threshold(self) -> int:
        """Number of Byzantine failures the guarantee accounts for (0 if none)."""
        return 0

    def profile(self) -> SystemProfile:
        """Summarise the system in a :class:`~repro.types.SystemProfile`."""
        return SystemProfile(
            name=self.describe(),
            n=self.n,
            quorum_size=round(self._strategy.expected_quorum_size()),
            load=self.load(),
            fault_tolerance=self.fault_tolerance(),
            epsilon=self.epsilon,
            byzantine_threshold=self.byzantine_threshold,
        )

    def describe(self) -> str:
        """Short parameterised description of the construction."""
        return f"{self.name}(n={self.n})"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return self.describe()
