"""ε-intersecting quorum systems (Section 3).

Definition 3.1: ``⟨Q, w⟩`` is an *ε-intersecting quorum system* if two
quorums drawn independently according to ``w`` intersect with probability at
least ``1 - ε``.

Two classes are provided:

* :class:`UniformEpsilonIntersectingSystem` — the paper's construction
  ``R(n, q)`` (Definition 3.13): the quorums are *all* subsets of size ``q``
  and the strategy is uniform.  With ``q = ℓ√n`` this system is
  ``e^{-ℓ²}``-intersecting (Theorem 3.16), has optimal load ``ℓ/√n``, fault
  tolerance ``n - ℓ√n + 1 = Θ(n)`` and failure probability ``e^{-Ω(n)}``
  even for crash probabilities well above 1/2.
* :class:`EpsilonIntersectingSystem` — an arbitrary explicit set system with
  an explicit strategy; ε is computed exactly by summing
  ``w(Q) w(Q')`` over non-intersecting pairs.  This is the class used to
  reproduce the paper's discussion of *why* Definitions 2.5 and 2.6 must be
  replaced in the probabilistic setting (the artificially inflated system of
  Section 3.2).
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence, Set

from repro.analysis.chernoff import crash_failure_bound
from repro.analysis.failure_probability import crash_failure_probability_uniform
from repro.analysis.intersection import (
    expected_overlap,
    intersection_epsilon_bound,
    intersection_epsilon_exact,
)
from repro.core.calibration import (
    ell_for_quorum_size,
    minimal_quorum_size_for_epsilon,
    quorum_size_for_ell,
)
from repro.core.probabilistic import ProbabilisticQuorumSystem
from repro.core.strategy import ExplicitStrategy, UniformSubsetStrategy
from repro.exceptions import ConfigurationError
from repro.types import Quorum, ServerId


class UniformEpsilonIntersectingSystem(ProbabilisticQuorumSystem):
    """The paper's ``R(n, q)`` construction under the uniform strategy.

    Parameters
    ----------
    n:
        Universe size.
    quorum_size:
        Quorum size ``q``.  The classmethods :meth:`from_ell` and
        :meth:`for_epsilon` construct the system from the paper's ``ℓ``
        parameter or from a target ε instead.
    """

    def __init__(self, n: int, quorum_size: int) -> None:
        strategy = UniformSubsetStrategy(n, quorum_size)
        super().__init__(n, strategy)
        self._q = int(quorum_size)

    # -- alternative constructors ------------------------------------------------

    @classmethod
    def from_ell(cls, n: int, ell: float) -> "UniformEpsilonIntersectingSystem":
        """Build ``R(n, ⌈ℓ√n⌉)`` from the paper's ``ℓ`` parameter."""
        return cls(n, quorum_size_for_ell(n, ell))

    @classmethod
    def for_epsilon(cls, n: int, epsilon: float) -> "UniformEpsilonIntersectingSystem":
        """Build the smallest ``R(n, q)`` whose exact ε meets the target."""
        return cls(n, minimal_quorum_size_for_epsilon(n, epsilon))

    # -- structure ----------------------------------------------------------------

    @property
    def quorum_size(self) -> int:
        """The common quorum size ``q``."""
        return self._q

    @property
    def ell(self) -> float:
        """The paper's ``ℓ = q / √n``."""
        return ell_for_quorum_size(self.n, self._q)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        live = sorted(s for s in alive if 0 <= s < self.n)
        if len(live) < self._q:
            return None
        return frozenset(live[: self._q])

    def expected_overlap(self) -> float:
        """``E[|Q ∩ Q'|] = q²/n = ℓ²`` — the birthday-paradox intuition of §3.4."""
        return expected_overlap(self.n, self._q)

    # -- the probabilistic guarantee ----------------------------------------------

    @property
    def epsilon(self) -> float:
        """Exact ``P(Q ∩ Q' = ∅) = C(n-q, q)/C(n, q)``."""
        return intersection_epsilon_exact(self.n, self._q)

    def epsilon_bound(self) -> float:
        """Lemma 3.15 / Theorem 3.16 bound ``e^{-ℓ²}``."""
        return intersection_epsilon_bound(self.n, self._q)

    # -- quality measures ------------------------------------------------------------

    def load(self) -> float:
        """Load ``q/n = ℓ/√n`` (Definition 3.3; optimal by Corollary 3.12).

        Every server lies in the same number of size-``q`` subsets, so the
        uniform strategy induces load exactly ``q/n`` on each server.
        """
        return self._q / self.n

    def fault_tolerance(self) -> int:
        """Probabilistic fault tolerance ``n - q + 1`` (Definition 3.7).

        The construction is symmetric, so every quorum is a high-quality
        quorum; as long as ``q`` servers survive, some (high-quality) quorum
        survives.
        """
        return self.n - self._q + 1

    def failure_probability(self, p: float) -> float:
        """Exact ``Fp = P(Bin(n, p) > n - q)`` (Definition 3.8)."""
        return crash_failure_probability_uniform(self.n, self._q, p)

    def failure_probability_bound(self, p: float) -> float:
        """The paper's Chernoff bound ``e^{-2n(1 - q/n - p)²}`` on ``Fp``."""
        return crash_failure_bound(self.n, self._q, p)

    def describe(self) -> str:
        return f"R(n={self.n}, q={self._q})"


class EpsilonIntersectingSystem(ProbabilisticQuorumSystem):
    """An arbitrary explicit set system with an explicit access strategy.

    ε is the exact total probability, under two independent draws from the
    strategy, of picking a non-intersecting pair (Definition 3.1).  The
    probabilistic fault tolerance and failure probability follow
    Definitions 3.7 and 3.8 via the δ-high-quality quorums machinery in
    :mod:`repro.core.measures`.
    """

    def __init__(
        self,
        n: int,
        quorums: Iterable[Iterable[int]],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        strategy = ExplicitStrategy(quorums, weights)
        super().__init__(n, strategy)
        for quorum in strategy.quorums:
            if not quorum <= frozenset(range(n)):
                raise ConfigurationError(
                    f"quorum {sorted(quorum)} is not contained in the universe of size {n}"
                )

    # -- structure ----------------------------------------------------------------

    @property
    def explicit_strategy(self) -> ExplicitStrategy:
        """The strategy, typed as :class:`ExplicitStrategy` for convenience."""
        strategy = self.strategy
        assert isinstance(strategy, ExplicitStrategy)
        return strategy

    @property
    def quorums(self):
        """The explicit quorum tuple (the support of the strategy)."""
        return self.explicit_strategy.quorums

    @property
    def weights(self):
        """The normalised strategy weights."""
        return self.explicit_strategy.weights

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        alive_set = frozenset(alive)
        for quorum in self.quorums:
            if quorum <= alive_set:
                return quorum
        return None

    # -- the probabilistic guarantee ----------------------------------------------

    @property
    def epsilon(self) -> float:
        """Exact ``P(Q ∩ Q' = ∅) = Σ_{Q ∩ Q' = ∅} w(Q) w(Q')``."""
        from repro.core.measures import pairwise_intersection_probability

        return 1.0 - pairwise_intersection_probability(self.quorums, self.weights)

    def epsilon_bound(self) -> float:
        """No closed form exists for arbitrary systems; the exact value is returned."""
        return self.epsilon

    # -- quality measures ------------------------------------------------------------

    def load(self) -> float:
        """Load induced by the given strategy (Definition 3.3)."""
        return self.explicit_strategy.load(self.n)

    def high_quality_quorums(self, delta: Optional[float] = None):
        """The δ-high-quality quorums (Definition 3.4; δ = √ε by default)."""
        from repro.core.measures import high_quality_quorums

        return high_quality_quorums(self.quorums, self.weights, delta=delta)

    def fault_tolerance(self) -> int:
        """Probabilistic fault tolerance (Definition 3.7): transversal of the HQ quorums."""
        from repro.core.measures import probabilistic_fault_tolerance

        return probabilistic_fault_tolerance(self.quorums, self.weights, self.n)

    def failure_probability(self, p: float, trials: int = 20_000, seed: int = 0) -> float:
        """Probabilistic failure probability (Definition 3.8), Monte-Carlo estimate."""
        from repro.core.measures import probabilistic_failure_probability

        return probabilistic_failure_probability(
            self.quorums, self.weights, self.n, p, trials=trials, seed=seed
        )

    def describe(self) -> str:
        return f"EpsilonIntersecting(n={self.n}, |Q|={len(self.quorums)})"
