"""Access strategies (Definition 2.3).

An access strategy ``w`` is a probability distribution over the quorums of a
set system; clients draw the quorum for each operation according to ``w``.
The paper emphasises (remark after Theorem 3.2) that the advertised
intersection probability of a probabilistic quorum system holds only when
clients actually follow the specified strategy, so the strategy is a
first-class object in this library: the protocol layer samples quorums
exclusively through it.

Two strategies cover everything the paper needs:

* :class:`UniformSubsetStrategy` — the uniform distribution over *all*
  subsets of a fixed size ``q``, which is the strategy of the ``R(n, q)``
  and ``Rk(n, q)`` constructions;
* :class:`ExplicitStrategy` — arbitrary weights over an explicit quorum
  list, used for hand-built systems and for the counterexamples of
  Section 3.2 (e.g. the artificially inflated system).
"""

from __future__ import annotations

import abc
import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, StrategyError
from repro.quorum.base import membership_matrix, sample_subset, sample_subset_batch
from repro.types import Quorum, make_quorum


class AccessStrategy(abc.ABC):
    """A probability distribution over quorums that clients sample from."""

    @abc.abstractmethod
    def sample(self, rng: Optional[random.Random] = None) -> Quorum:
        """Draw one quorum according to the strategy."""

    @abc.abstractmethod
    def expected_quorum_size(self) -> float:
        """``E[|Q|]`` under the strategy (used by the load bound of Theorem 3.9)."""

    def sample_block(
        self,
        count: int,
        rng: Optional[random.Random] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> List[Tuple[int, ...]]:
        """Draw ``count`` i.i.d. quorums at once, as sorted server-id tuples.

        This is the block-sampling entry point of the service layer's quorum
        pool: a client refills its pool with one call instead of paying the
        per-operation sampling cost, and every pooled quorum is still an
        independent draw from the strategy — so the ε guarantee is untouched.
        The base implementation loops over :meth:`sample`; the two concrete
        strategies override it with vectorised draws sharing the same kernels
        as the batched Monte-Carlo engine.  Callers that refill repeatedly
        should pass a persistent NumPy ``generator`` so each refill skips the
        bit-generator construction cost.
        """
        if count < 0:
            raise ConfigurationError(f"block size must be non-negative, got {count}")
        if rng is None and generator is not None:
            # Keep seeded determinism for custom strategies driven through a
            # NumPy generator (mirrors sample_batch_membership's fallback).
            rng = random.Random(int(generator.integers(2**63)))
        return [tuple(sorted(self.sample(rng))) for _ in range(count)]

    def sample_batch_membership(
        self,
        n: int,
        trials: int,
        generator: np.random.Generator,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw ``trials`` quorums at once as a boolean ``(trials, n)`` matrix.

        Row ``t`` marks the servers of the ``t``-th sampled quorum.  This is
        the entry point of the batched Monte-Carlo engine; the base
        implementation falls back to one :meth:`sample` call per trial (so
        any custom strategy stays batch-compatible), while the two concrete
        strategies override it with fully vectorised draws.  ``out`` may name
        a previously returned ``(trials, n)`` boolean array to fill in place,
        letting chunked callers reuse one buffer across blocks instead of
        allocating per chunk.
        """
        if trials < 0:
            raise ConfigurationError(f"trial count must be non-negative, got {trials}")
        rng = random.Random(int(generator.integers(2**63)))
        member = membership_matrix([self.sample(rng) for _ in range(trials)], n)
        if out is not None and out.shape == member.shape and out.dtype == np.bool_:
            out[:] = member
            return out
        return member

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable description."""

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return self.describe()


class UniformSubsetStrategy(AccessStrategy):
    """Uniform distribution over all subsets of size ``q`` of ``{0..n-1}``.

    This is the access strategy ``w(Q) = 1 / C(n, q)`` of the paper's
    ``R(n, q)`` construction (Definition 3.13).
    """

    def __init__(self, n: int, quorum_size: int) -> None:
        if n < 1:
            raise ConfigurationError(f"universe size must be positive, got {n}")
        if not 0 < quorum_size <= n:
            raise ConfigurationError(
                f"quorum size must lie in (0, {n}], got {quorum_size}"
            )
        self._n = int(n)
        self._q = int(quorum_size)

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @property
    def quorum_size(self) -> int:
        """The fixed quorum size ``q``."""
        return self._q

    def sample(self, rng: Optional[random.Random] = None) -> Quorum:
        return sample_subset(self._n, self._q, rng)

    def sample_block(
        self,
        count: int,
        rng: Optional[random.Random] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> List[Tuple[int, ...]]:
        """Vectorised block draw: rank one ``(count, n)`` uniform matrix.

        Shares :func:`repro.quorum.base.sample_subset_batch` with the batched
        Monte-Carlo engine, so the service client's quorum pool and the trial
        engine draw from literally the same kernel.
        """
        if count < 0:
            raise ConfigurationError(f"block size must be non-negative, got {count}")
        if count == 0:
            return []
        if generator is None:
            rng = rng or random.Random()
            generator = np.random.default_rng(rng.randrange(2**63))
        indices = sample_subset_batch(self._n, self._q, count, generator)
        indices.sort(axis=1)
        return [tuple(row) for row in indices.tolist()]

    def sample_batch_indices(
        self, trials: int, generator: np.random.Generator
    ) -> np.ndarray:
        """``trials`` uniform access sets as a ``(trials, q)`` index matrix."""
        return sample_subset_batch(self._n, self._q, trials, generator)

    def sample_batch_membership(
        self,
        n: int,
        trials: int,
        generator: np.random.Generator,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if n != self._n:
            raise ConfigurationError(
                f"strategy is over {self._n} servers but the batch asked for {n}"
            )
        if out is not None and out.shape == (trials, n) and out.dtype == np.bool_:
            member = out
            member[:] = False
        else:
            member = np.zeros((trials, n), dtype=bool)
        np.put_along_axis(member, self.sample_batch_indices(trials, generator), True, axis=1)
        return member

    def expected_quorum_size(self) -> float:
        return float(self._q)

    def weight_of(self, quorum: Quorum) -> float:
        """``w(Q)``: ``1/C(n, q)`` if ``|Q| = q``, else 0."""
        if len(quorum) != self._q or not quorum <= frozenset(range(self._n)):
            return 0.0
        return 1.0 / math.comb(self._n, self._q)

    def per_server_load(self) -> float:
        """Load induced on every server: ``q / n`` (all servers are symmetric)."""
        return self._q / self._n

    def describe(self) -> str:
        return f"UniformSubsets(n={self._n}, q={self._q})"


class ExplicitStrategy(AccessStrategy):
    """Arbitrary weights over an explicit list of quorums.

    Parameters
    ----------
    quorums:
        The support of the strategy.
    weights:
        Non-negative weights, one per quorum.  They are normalised to sum to
        one; a zero total raises :class:`StrategyError`.  Omit to get the
        uniform distribution over the given quorums.
    """

    def __init__(
        self,
        quorums: Iterable[Iterable[int]],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        quorum_list = [make_quorum(q) for q in quorums]
        if not quorum_list:
            raise StrategyError("a strategy needs at least one quorum in its support")
        if any(not q for q in quorum_list):
            raise StrategyError("quorums must be non-empty")
        if weights is None:
            weight_list = [1.0] * len(quorum_list)
        else:
            weight_list = [float(w) for w in weights]
        if len(weight_list) != len(quorum_list):
            raise StrategyError(
                f"{len(weight_list)} weights supplied for {len(quorum_list)} quorums"
            )
        if any(w < 0 for w in weight_list):
            raise StrategyError("strategy weights must be non-negative")
        total = sum(weight_list)
        if total <= 0:
            raise StrategyError("strategy weights must not all be zero")
        self._quorums: Tuple[Quorum, ...] = tuple(quorum_list)
        self._weights: Tuple[float, ...] = tuple(w / total for w in weight_list)
        # Sorted-tuple view of the support, built lazily by sample_block.
        self._ordered_support: Optional[List[Tuple[int, ...]]] = None

    @property
    def quorums(self) -> Tuple[Quorum, ...]:
        """The support of the strategy."""
        return self._quorums

    @property
    def weights(self) -> Tuple[float, ...]:
        """The normalised weights (summing to one)."""
        return self._weights

    def sample(self, rng: Optional[random.Random] = None) -> Quorum:
        rng = rng or random.Random()
        return rng.choices(self._quorums, weights=self._weights, k=1)[0]

    def sample_block(
        self,
        count: int,
        rng: Optional[random.Random] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> List[Tuple[int, ...]]:
        """Vectorised block draw over the explicit support."""
        if count < 0:
            raise ConfigurationError(f"block size must be non-negative, got {count}")
        if count == 0:
            return []
        if generator is not None:
            chosen = generator.choice(
                len(self._quorums), size=count, p=np.asarray(self._weights)
            ).tolist()
        else:
            rng = rng or random.Random()
            chosen = rng.choices(
                range(len(self._quorums)), weights=self._weights, k=count
            )
        if self._ordered_support is None:
            self._ordered_support = [tuple(sorted(q)) for q in self._quorums]
        ordered = self._ordered_support
        return [ordered[index] for index in chosen]

    def sample_batch_membership(
        self,
        n: int,
        trials: int,
        generator: np.random.Generator,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorised draw: pick support indices, then gather membership rows."""
        if trials < 0:
            raise ConfigurationError(f"trial count must be non-negative, got {trials}")
        support = membership_matrix(self._quorums, n)
        chosen = generator.choice(len(self._quorums), size=trials, p=np.asarray(self._weights))
        if out is not None and out.shape == (trials, n) and out.dtype == np.bool_:
            np.take(support, chosen, axis=0, out=out)
            return out
        return support[chosen]

    def expected_quorum_size(self) -> float:
        return sum(len(q) * w for q, w in zip(self._quorums, self._weights))

    def weight_of(self, quorum: Quorum) -> float:
        """Total weight assigned to a quorum (0 if outside the support)."""
        target = frozenset(quorum)
        return sum(w for q, w in zip(self._quorums, self._weights) if q == target)

    def per_server_load(self, n: int) -> List[float]:
        """Load induced on each of the ``n`` servers (Definition 2.4)."""
        loads = [0.0] * n
        for quorum, weight in zip(self._quorums, self._weights):
            for server in quorum:
                if not 0 <= server < n:
                    raise ConfigurationError(
                        f"server {server} outside the universe of size {n}"
                    )
                loads[server] += weight
        return loads

    def load(self, n: int) -> float:
        """``L_w(Q) = max_u l_w(u)``."""
        loads = self.per_server_load(n)
        return max(loads) if loads else 0.0

    def restrict_to(self, quorums: Iterable[Quorum]) -> "ExplicitStrategy":
        """The restricted strategy ``w_r`` of Lemma 3.11 (renormalised on a subset)."""
        keep = set(frozenset(q) for q in quorums)
        kept = [(q, w) for q, w in zip(self._quorums, self._weights) if q in keep]
        if not kept:
            raise StrategyError("restriction would leave an empty support")
        return ExplicitStrategy([q for q, _ in kept], [w for _, w in kept])

    def describe(self) -> str:
        return f"Explicit(|support|={len(self._quorums)})"
