"""(b, ε)-dissemination quorum systems (Section 4).

Definition 4.1: ``⟨Q, w⟩`` is a *(b, ε)-dissemination quorum system* if its
probabilistic fault tolerance exceeds ``b`` and, for every set ``B`` of ``b``
servers, two strategy-drawn quorums intersect *outside* ``B`` with
probability at least ``1 - ε``.  With self-verifying data this is exactly
what a reader needs: at least one correct server in the overlap holds (and
can prove) the latest written value.

The paper's construction is the same ``R(n, ℓ√n)`` as in Section 3; only the
analysis changes.  For ``b = n/3`` Lemma 4.3 gives ``ε <= 2 e^{-ℓ²/6}``
(Theorem 4.4), and for any constant fraction ``b = αn`` Lemma 4.5 /
Theorem 4.6 gives a (larger, but still vanishing for appropriate ``ℓ``)
closed-form bound — breaking the ``b <= ⌊(n-1)/3⌋`` resilience ceiling and
the ``Ω(√(b/n))`` load lower bound of strict dissemination systems.

Two practical remarks from the paper are reflected in the API:

* the requirement ``n - q > b`` (otherwise the fault-tolerance condition of
  Definition 4.1 fails) limits the achievable ε for a given ``n`` and ``b``;
* the construction does not depend on ``b``, so :meth:`epsilon_for` reports
  the *graceful degradation* guarantee for any smaller number of actual
  faults.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.analysis.chernoff import crash_failure_bound
from repro.analysis.failure_probability import crash_failure_probability_uniform
from repro.analysis.intersection import (
    dissemination_epsilon_bound,
    dissemination_epsilon_exact,
)
from repro.core.calibration import (
    ell_for_quorum_size,
    minimal_quorum_size_for_dissemination,
    quorum_size_for_ell,
)
from repro.core.probabilistic import ProbabilisticQuorumSystem, ReadSemantics
from repro.core.strategy import UniformSubsetStrategy
from repro.exceptions import ConfigurationError
from repro.types import Quorum, ServerId


class ProbabilisticDisseminationSystem(ProbabilisticQuorumSystem):
    """``R(n, q)`` analysed as a (b, ε)-dissemination quorum system.

    Parameters
    ----------
    n:
        Universe size.
    quorum_size:
        Quorum size ``q``; must satisfy ``q <= n - b`` so that the
        probabilistic fault tolerance ``n - q + 1`` exceeds ``b``.
    b:
        Number of Byzantine server failures tolerated.  Unlike strict
        dissemination systems, ``b`` may be any constant fraction of ``n``
        (Theorem 4.6).
    """

    def __init__(self, n: int, quorum_size: int, b: int) -> None:
        strategy = UniformSubsetStrategy(n, quorum_size)
        super().__init__(n, strategy)
        if not 1 <= b < n:
            raise ConfigurationError(f"Byzantine threshold must lie in [1, {n}), got {b}")
        if quorum_size > n - b:
            raise ConfigurationError(
                f"Definition 4.1 requires fault tolerance > b: need q <= n - b "
                f"({n - b}), got q={quorum_size}"
            )
        self._q = int(quorum_size)
        self._b = int(b)

    # -- alternative constructors ------------------------------------------------

    @classmethod
    def from_ell(cls, n: int, ell: float, b: int) -> "ProbabilisticDisseminationSystem":
        """Build ``R(n, ⌈ℓ√n⌉)`` for the given Byzantine threshold."""
        return cls(n, quorum_size_for_ell(n, ell), b)

    @classmethod
    def for_epsilon(
        cls, n: int, b: int, epsilon: float
    ) -> "ProbabilisticDisseminationSystem":
        """Smallest construction meeting a target ε for the given ``b``.

        Raises :class:`ConfigurationError` if no quorum size ``q <= n - b``
        achieves the target (the regime flagged in the remark after
        Theorem 4.6).
        """
        q = minimal_quorum_size_for_dissemination(n, b, epsilon)
        if q is None:
            raise ConfigurationError(
                f"no quorum size achieves epsilon={epsilon} for n={n}, b={b}"
            )
        return cls(n, q, b)

    # -- structure ----------------------------------------------------------------

    @property
    def quorum_size(self) -> int:
        """The common quorum size ``q``."""
        return self._q

    @property
    def ell(self) -> float:
        """The paper's ``ℓ = q / √n``."""
        return ell_for_quorum_size(self.n, self._q)

    @property
    def byzantine_threshold(self) -> int:
        """The Byzantine threshold ``b`` the guarantee is stated for."""
        return self._b

    @property
    def byzantine_fraction(self) -> float:
        """``α = b / n`` — the fraction of servers that may be Byzantine."""
        return self._b / self.n

    def read_semantics(self) -> ReadSemantics:
        """Section 4 reads: signatures are verified, forgeries discarded."""
        return ReadSemantics(self_verifying=True, byzantine_tolerance=self._b)

    def find_live_quorum(self, alive: Set[ServerId]) -> Optional[Quorum]:
        live = sorted(s for s in alive if 0 <= s < self.n)
        if len(live) < self._q:
            return None
        return frozenset(live[: self._q])

    # -- the probabilistic guarantee ----------------------------------------------

    @property
    def epsilon(self) -> float:
        """Exact worst-case ``P(Q ∩ Q' ⊆ B)`` over sets ``B`` of size ``b``."""
        return dissemination_epsilon_exact(self.n, self._q, self._b)

    def epsilon_bound(self) -> float:
        """The closed-form bound of Lemma 4.3 (b <= n/3) or Lemma 4.5 (b = αn)."""
        return dissemination_epsilon_bound(self.n, self._q, self._b)

    def epsilon_for(self, actual_faults: int) -> float:
        """Graceful degradation: the exact ε when only ``actual_faults`` occur.

        The construction does not depend on ``b`` (remark after Theorem 4.6),
        so if fewer servers actually misbehave the intersection guarantee is
        strictly better.
        """
        if not 0 <= actual_faults <= self._b:
            raise ConfigurationError(
                f"actual fault count must lie in [0, {self._b}], got {actual_faults}"
            )
        if actual_faults == 0:
            from repro.analysis.intersection import intersection_epsilon_exact

            return intersection_epsilon_exact(self.n, self._q)
        return dissemination_epsilon_exact(self.n, self._q, actual_faults)

    # -- quality measures ------------------------------------------------------------

    def load(self) -> float:
        """Load ``q/n = ℓ/√n`` — below the strict ``Ω(√(b/n))`` bound for large b."""
        return self._q / self.n

    def fault_tolerance(self) -> int:
        """Probabilistic (crash) fault tolerance ``n - q + 1``."""
        return self.n - self._q + 1

    def failure_probability(self, p: float) -> float:
        """Exact crash failure probability ``P(Bin(n, p) > n - q)``."""
        return crash_failure_probability_uniform(self.n, self._q, p)

    def failure_probability_bound(self, p: float) -> float:
        """The Chernoff bound ``e^{-2n(1 - q/n - p)²}`` quoted after Theorem 4.4."""
        return crash_failure_bound(self.n, self._q, p)

    def describe(self) -> str:
        return f"DisseminationR(n={self.n}, q={self._q}, b={self._b})"
