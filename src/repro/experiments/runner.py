"""Command line entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner all
    python -m repro.experiments.runner table2
    python -m repro.experiments.runner figure3 --points 21
    python -m repro.experiments.runner consistency --engine batch --seed 7
    python -m repro.experiments.runner serve --clients 500

(The experiment can also be named with ``--experiment``, the original
spelling.)  Each experiment regenerates the corresponding table or figure
of the paper and prints it in plain text (see
:mod:`repro.experiments.report`).  Two experiments go beyond the tables:

* ``consistency`` runs the Monte-Carlo validation of Theorems 3.2/4.2/5.2
  on the engine selected with ``--engine`` (``batch`` is the vectorised
  fast path, ``sequential`` the protocol-stack oracle);
* ``serve`` deploys the masking scenario as a live asyncio service
  (:mod:`repro.service`) — ``--clients`` concurrent readers, Byzantine
  forgers, message drops and live crash churn — and reports throughput,
  latency percentiles and the zero-fabrication safety verdict.

``--seed`` seeds the chosen experiment *and* installs the shared sequential
RNG root (:func:`repro.rngs.seed_sequential`), so a run is reproducible end
to end from that one number.  The benchmark suite wraps the same
generators; this runner exists so that a user can reproduce the paper's
evaluation without pytest.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.consistency import (
    render_consistency,
    run_consistency_scenarios,
    theorem_scenarios,
)
from repro.experiments.figures import (
    default_probability_grid,
    figure1_curves,
    figure2_curves,
    figure3_curves,
)
from repro.experiments.report import (
    render_figure,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.experiments.tables import (
    paper_byzantine_threshold,
    table1_entries,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.experiments.contention import DEFAULT_WRITERS, run_contention
from repro.experiments.serve import (
    DEFAULT_CLIENTS,
    DEFAULT_READS_PER_CLIENT,
    run_serve,
)
from repro.rngs import seed_sequential
from repro.service.client import SELECTION_MODES
from repro.service.dispatch import DISPATCH_MODES
from repro.service.sharding import TRANSPORT_MODES
from repro.service.wire import WIRE_CODECS
from repro.simulation.scenario import REGISTER_KINDS

EXPERIMENT_NAMES = (
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "consistency",
    "contention",
    "serve",
    "explore",
    "all",
)

ENGINE_NAMES = ("sequential", "batch")

#: Default trial counts per engine for the consistency experiment: the batch
#: engine is ~two orders of magnitude faster, so it gets the tight estimate.
DEFAULT_TRIALS = {"sequential": 300, "batch": 20_000}


def run_table1(n: int = 100) -> str:
    """Regenerate Table 1 for a representative universe size."""
    b = paper_byzantine_threshold(n)
    return render_table1(table1_entries(n, b), n, b)


def run_table2() -> str:
    """Regenerate Table 2."""
    return render_table2(table2_rows())


def run_table3() -> str:
    """Regenerate Table 3."""
    return render_table3(table3_rows())


def run_table4() -> str:
    """Regenerate Table 4."""
    return render_table4(table4_rows())


def run_figure1(points: int = 41) -> str:
    """Regenerate Figure 1."""
    return render_figure(figure1_curves(ps=default_probability_grid(points)))


def run_figure2(points: int = 41) -> str:
    """Regenerate Figure 2."""
    return render_figure(figure2_curves(ps=default_probability_grid(points)))


def run_figure3(points: int = 41) -> str:
    """Regenerate Figure 3."""
    return render_figure(figure3_curves(ps=default_probability_grid(points)))


def run_consistency(
    engine: str = "batch",
    seed: int = 0,
    trials: int = None,
    register_kind: str = "auto",
) -> str:
    """Run the three theorem scenarios on the chosen Monte-Carlo engine.

    ``register_kind`` overrides the protocol every scenario deploys —
    e.g. ``"write-back"`` runs the read-repair oracle declaratively, and
    ``"plain"`` models a reader that ignores the protocol's filter (under
    the forger scenario both then measure the unprotected regime, where
    fabricated reads dominate).  A scenario that cannot host the forced
    kind (e.g. the masking protocol forced onto a thresholdless system)
    is skipped rather than mis-measured, and forcing a kind that no
    scenario survives is an error.
    """
    if engine not in ENGINE_NAMES:
        raise ExperimentError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINE_NAMES)}"
        )
    if register_kind not in REGISTER_KINDS:
        raise ExperimentError(
            f"unknown register kind {register_kind!r}; "
            f"choose from {', '.join(REGISTER_KINDS)}"
        )
    if trials is None:
        trials = DEFAULT_TRIALS[engine]
    if trials < 1:
        raise ExperimentError(f"trial count must be positive, got {trials}")
    scenarios = theorem_scenarios()
    if register_kind != "auto":
        forced = {}
        for label, spec in scenarios.items():
            try:
                forced[label] = dataclasses.replace(spec, register_kind=register_kind)
            except ConfigurationError:
                continue  # this scenario cannot host the forced protocol
        if not forced:
            raise ExperimentError(
                f"register kind {register_kind!r} fits none of the theorem "
                f"scenarios ({', '.join(scenarios)})"
            )
        scenarios = forced
    reports = run_consistency_scenarios(scenarios, trials=trials, seed=seed, engine=engine)
    return render_consistency(scenarios, reports, engine=engine, seed=seed)


def run_explore() -> str:
    """Exhaustively check the pinned small-config grid; fail on any violation.

    This is the CI ``explore-smoke`` entry point: every cell of
    :func:`repro.simulation.explore.small_config_grid` is enumerated
    completely, and a single violating schedule (a fabricated value
    accepted, or an evidence-regularity breach) fails the run with the
    minimised counterexample trace.
    """
    from repro.simulation.explore import explore_grid

    lines = [
        "Exhaustive small-config exploration (all delivery orders / crash points)",
        f"{'cell':<24} {'states':>8} {'schedules':>10}  verdict",
    ]
    failures = []
    for name, result in explore_grid().items():
        verdict = "SAFE" if result.safe else f"VIOLATION[{result.violation.property}]"
        lines.append(
            f"{name:<24} {result.states_explored:>8} {result.schedules:>10}  {verdict}"
        )
        if not result.safe:
            failures.append((name, result.violation))
    for name, violation in failures:
        lines.append("")
        lines.append(f"--- {name} ---")
        lines.append(violation.render())
    if failures:
        raise ExperimentError("\n".join(lines))
    return "\n".join(lines)


def run_experiment(
    name: str,
    points: int = 41,
    engine: str = "batch",
    seed: int = 0,
    trials: int = None,
    register_kind: str = "auto",
    clients: int = DEFAULT_CLIENTS,
    ops: int = DEFAULT_READS_PER_CLIENT,
    dispatch: str = "batched",
    selection: str = "strategy",
    transport: str = "inproc",
    shards: int = 1,
    keys: int = 1,
    key_skew: float = 0.0,
    writers: int = None,
    contention: float = 0.0,
    codec: str = "json",
    processes: int = None,
    trace_sample: float = 0.0,
    trace_out: str = None,
    metrics_out: str = None,
    monitor_epsilon: bool = False,
    anti_entropy: bool = False,
    ae_fanout: int = 2,
    ae_interval: float = 0.002,
    ae_repair_budget: int = 4,
) -> List[str]:
    """Run one named experiment (or ``all``) and return the rendered reports.

    ``all`` covers the paper's tables and figures; the Monte-Carlo
    ``consistency`` experiment and the live-service ``serve`` experiment are
    run by name (their cost depends on the engine / client configuration).
    """
    runners: Dict[str, Callable[[], str]] = {
        "table1": run_table1,
        "table2": run_table2,
        "table3": run_table3,
        "table4": run_table4,
        "figure1": lambda: run_figure1(points),
        "figure2": lambda: run_figure2(points),
        "figure3": lambda: run_figure3(points),
    }
    if name == "consistency":
        return [
            run_consistency(
                engine=engine, seed=seed, trials=trials, register_kind=register_kind
            )
        ]
    if name == "contention":
        if engine not in ENGINE_NAMES:
            raise ExperimentError(
                f"unknown engine {engine!r}; choose from {', '.join(ENGINE_NAMES)}"
            )
        return [
            run_contention(
                writers=DEFAULT_WRITERS if writers is None else writers,
                trials=DEFAULT_TRIALS[engine] if trials is None else trials,
                seed=seed,
                engine=engine,
            )
        ]
    if name == "serve":
        return [
            run_serve(
                clients=clients,
                reads_per_client=ops,
                seed=seed,
                dispatch=dispatch,
                selection=selection,
                transport=transport,
                shards=shards,
                keys=keys,
                key_skew=key_skew,
                writers=writers,
                contention=contention,
                codec=codec,
                processes=processes,
                trace_sample=trace_sample,
                trace_out=trace_out,
                metrics_out=metrics_out,
                monitor_epsilon=monitor_epsilon,
                anti_entropy=anti_entropy,
                ae_fanout=ae_fanout,
                ae_interval=ae_interval,
                ae_repair_budget=ae_repair_budget,
            )
        ]
    if name == "explore":
        return [run_explore()]
    if name == "all":
        return [runners[key]() for key in sorted(runners)]
    if name not in runners:
        raise ExperimentError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENT_NAMES)}"
        )
    return [runners[name]()]


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the tables and figures of 'Probabilistic Quorum Systems'.",
    )
    parser.add_argument(
        "experiment_name",
        nargs="?",
        default=None,
        metavar="experiment",
        choices=EXPERIMENT_NAMES,
        help="which experiment to run (positional spelling of --experiment)",
    )
    parser.add_argument(
        "--experiment",
        default=None,
        choices=EXPERIMENT_NAMES,
        help="which table/figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=41,
        help="number of crash-probability grid points for the figures (default: 41)",
    )
    parser.add_argument(
        "--engine",
        default="batch",
        choices=ENGINE_NAMES,
        help="Monte-Carlo engine for the consistency experiment (default: batch)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed: seeds the chosen engine and the shared sequential "
        "RNG streams (default: 0)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trial count for the consistency experiment "
        f"(default: {DEFAULT_TRIALS['batch']} batch / "
        f"{DEFAULT_TRIALS['sequential']} sequential)",
    )
    parser.add_argument(
        "--register-kind",
        default="auto",
        choices=REGISTER_KINDS,
        help="force every consistency scenario onto this read protocol "
        "('write-back' runs the read-repair oracle declaratively; scenarios "
        "that cannot host the forced kind are skipped; default: auto)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=DEFAULT_CLIENTS,
        help="concurrent reader clients for the serve experiment "
        f"(default: {DEFAULT_CLIENTS})",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=DEFAULT_READS_PER_CLIENT,
        help="reads each serve client issues "
        f"(default: {DEFAULT_READS_PER_CLIENT})",
    )
    parser.add_argument(
        "--dispatch",
        default="batched",
        choices=DISPATCH_MODES,
        help="serve RPC path: coalesced 'batched' fast path or the original "
        "'per-rpc' oracle (default: batched)",
    )
    parser.add_argument(
        "--selection",
        default="strategy",
        choices=SELECTION_MODES,
        help="serve quorum selection: 'strategy' is ε-faithful; "
        "'latency-aware' biases toward fast replicas and voids the ε "
        "guarantee, so serve then deploys the Byzantine-free crash variant "
        "of its scenario (default: strategy)",
    )
    parser.add_argument(
        "--transport",
        default="inproc",
        choices=TRANSPORT_MODES,
        help="serve transport: simulated in-process message passing, or "
        "real localhost TCP sockets with wall-clock deadlines "
        "(default: inproc)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent replica groups serve hashes register keys across "
        "(default: 1)",
    )
    parser.add_argument(
        "--keys",
        type=int,
        default=1,
        help="register keys the serve workload spreads over "
        "(default: 1, or one per shard when --shards > 1)",
    )
    parser.add_argument(
        "--key-skew",
        type=float,
        default=0.0,
        help="zipf exponent of the serve readers' key distribution "
        "(0 = uniform; default: 0)",
    )
    parser.add_argument(
        "--writers",
        type=int,
        default=None,
        help="concurrent writers: serve splits its writes across this many "
        "writer clients (each under its own writer identity), and the "
        "contention experiment races this many writers per trial "
        "(defaults: the scenario's writer count / "
        f"{DEFAULT_WRITERS})",
    )
    parser.add_argument(
        "--contention",
        type=float,
        default=0.0,
        help="probability a multi-key serve write is redirected to the "
        "hottest key, colliding the writers on one register "
        "(default: 0)",
    )
    parser.add_argument(
        "--codec",
        choices=WIRE_CODECS,
        default="json",
        help="serve wire codec over TCP: debug-friendly 'json' or the "
        "struct-packed 'binary' (negotiated per connection; implies "
        "--transport tcp; default: json)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        nargs="?",
        const=0,
        default=None,
        help="serve multi-process mode: one server process per shard plus "
        "N load-worker processes (bare --processes auto-scales N to the "
        "machine's cores; implies --transport tcp and disables live "
        "churn; default: classic in-loop harness)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="serve observability: trace this fraction of quorum operations "
        "end to end (0 disables tracing and keeps the hot path untouched; "
        "default: 0)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write sampled serve traces to FILE as JSON lines (implies "
        "--trace-sample 1.0 when no rate is given)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="dump the serve run's metrics registry snapshots (per "
        "component plus a cluster-wide merge) to FILE as JSON",
    )
    parser.add_argument(
        "--monitor-epsilon",
        action="store_true",
        help="arm the online ε-monitor: compare the sliding-window "
        "stale/fabricated-accepted rate against the scenario's predicted ε "
        "and record structured alerts on the serve report",
    )
    parser.add_argument(
        "--anti-entropy",
        action="store_true",
        help="serve anti-entropy: piggyback read-repair on client deliveries "
        "and run background gossip per shard, moving freshness off the read "
        "path (the probe-fallback round all but disappears under churn)",
    )
    parser.add_argument(
        "--ae-fanout",
        type=int,
        default=2,
        help="peers each fresh server pushes to per gossip round "
        "(0 disables gossip, keeping only piggybacked repair; default: 2)",
    )
    parser.add_argument(
        "--ae-interval",
        type=float,
        default=0.002,
        help="event-loop seconds between background gossip ticks "
        "(default: 0.002)",
    )
    parser.add_argument(
        "--ae-repair-budget",
        type=int,
        default=4,
        help="lagging replicas one settled read may repair by piggybacking "
        "payloads onto the next coalesced delivery (default: 4)",
    )
    args = parser.parse_args(argv)
    if args.experiment_name is not None and args.experiment is not None:
        parser.error("name the experiment positionally or with --experiment, not both")
    experiment = args.experiment_name or args.experiment or "all"
    seed_sequential(args.seed)
    try:
        reports = run_experiment(
            experiment,
            points=args.points,
            engine=args.engine,
            seed=args.seed,
            trials=args.trials,
            register_kind=args.register_kind,
            clients=args.clients,
            ops=args.ops,
            dispatch=args.dispatch,
            selection=args.selection,
            transport=args.transport,
            shards=args.shards,
            keys=args.keys,
            key_skew=args.key_skew,
            writers=args.writers,
            contention=args.contention,
            codec=args.codec,
            processes=args.processes,
            trace_sample=args.trace_sample,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            monitor_epsilon=args.monitor_epsilon,
            anti_entropy=args.anti_entropy,
            ae_fanout=args.ae_fanout,
            ae_interval=args.ae_interval,
            ae_repair_budget=args.ae_repair_budget,
        )
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Do not leak the root into programmatic callers (tests, notebooks).
        seed_sequential(None)
    print("\n\n".join(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
