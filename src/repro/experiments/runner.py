"""Command line entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner --experiment all
    python -m repro.experiments.runner --experiment table2
    python -m repro.experiments.runner --experiment figure3 --points 21

Each experiment regenerates the corresponding table or figure of the paper
and prints it in plain text (see :mod:`repro.experiments.report`).  The
benchmark suite wraps the same generators; this runner exists so that a user
can reproduce the paper's evaluation without pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.exceptions import ExperimentError
from repro.experiments.figures import (
    default_probability_grid,
    figure1_curves,
    figure2_curves,
    figure3_curves,
)
from repro.experiments.report import (
    render_figure,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.experiments.tables import (
    paper_byzantine_threshold,
    table1_entries,
    table2_rows,
    table3_rows,
    table4_rows,
)

EXPERIMENT_NAMES = (
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "all",
)


def run_table1(n: int = 100) -> str:
    """Regenerate Table 1 for a representative universe size."""
    b = paper_byzantine_threshold(n)
    return render_table1(table1_entries(n, b), n, b)


def run_table2() -> str:
    """Regenerate Table 2."""
    return render_table2(table2_rows())


def run_table3() -> str:
    """Regenerate Table 3."""
    return render_table3(table3_rows())


def run_table4() -> str:
    """Regenerate Table 4."""
    return render_table4(table4_rows())


def run_figure1(points: int = 41) -> str:
    """Regenerate Figure 1."""
    return render_figure(figure1_curves(ps=default_probability_grid(points)))


def run_figure2(points: int = 41) -> str:
    """Regenerate Figure 2."""
    return render_figure(figure2_curves(ps=default_probability_grid(points)))


def run_figure3(points: int = 41) -> str:
    """Regenerate Figure 3."""
    return render_figure(figure3_curves(ps=default_probability_grid(points)))


def run_experiment(name: str, points: int = 41) -> List[str]:
    """Run one named experiment (or ``all``) and return the rendered reports."""
    runners: Dict[str, Callable[[], str]] = {
        "table1": run_table1,
        "table2": run_table2,
        "table3": run_table3,
        "table4": run_table4,
        "figure1": lambda: run_figure1(points),
        "figure2": lambda: run_figure2(points),
        "figure3": lambda: run_figure3(points),
    }
    if name == "all":
        return [runners[key]() for key in sorted(runners)]
    if name not in runners:
        raise ExperimentError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENT_NAMES)}"
        )
    return [runners[name]()]


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the tables and figures of 'Probabilistic Quorum Systems'.",
    )
    parser.add_argument(
        "--experiment",
        default="all",
        choices=EXPERIMENT_NAMES,
        help="which table/figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=41,
        help="number of crash-probability grid points for the figures (default: 41)",
    )
    args = parser.parse_args(argv)
    try:
        reports = run_experiment(args.experiment, points=args.points)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("\n\n".join(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
